//! # distcommit
//!
//! A complete Rust reproduction of *"Revisiting Commit Processing in
//! Distributed Database Systems"* (Gupta, Haritsa & Ramamritham,
//! SIGMOD 1997).
//!
//! The paper studies the transaction-throughput cost of distributed
//! commit protocols with a detailed closed queueing model, and proposes
//! **OPT**: a commit protocol in which transactions may *optimistically
//! borrow* data held by cohorts in the prepared state, with the abort
//! chain provably bounded at length one.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`sim`] — the discrete-event simulation kernel (calendar,
//!   resource stations, statistics, deterministic RNG),
//! * [`locks`] — the strict-2PL lock manager with prepared-data lending
//!   and immediate global deadlock detection,
//! * [`proto`] — the commit-protocol taxonomy and its analytic
//!   overhead model (Tables 3 and 4 of the paper),
//! * [`db`] — the distributed-DBMS simulator itself: configuration,
//!   workload generator, master/cohort state machines, metrics, and the
//!   experiment presets that regenerate every figure and table.
//!
//! ## Quickstart
//!
//! ```
//! use distcommit::db::{config::SystemConfig, engine::Simulation, protocol::ProtocolSpec};
//!
//! // Paper baseline (Table 2), 2PC vs OPT at MPL 4.
//! let cfg = SystemConfig::paper_baseline()
//!     .with_mpl(4)
//!     .with_run_length(50, 500); // short demo run
//!
//! let two_pc = Simulation::run(&cfg, ProtocolSpec::TWO_PC, 1).unwrap();
//! let opt = Simulation::run(&cfg, ProtocolSpec::OPT_2PC, 1).unwrap();
//! assert!(opt.throughput() > 0.0 && two_pc.throughput() > 0.0);
//! ```

pub mod cli;

pub use commitproto as proto;
pub use distdb as db;
pub use distlocks as locks;
pub use simkernel as sim;
