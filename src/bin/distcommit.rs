//! The `distcommit` command-line tool — see `distcommit help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match distcommit::cli::parse(&args) {
        Ok(cmd) => distcommit::cli::execute(cmd),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", *distcommit::cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
