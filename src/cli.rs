//! Command-line interface: run single simulations, protocol sweeps, or
//! the paper's experiment presets from the shell.
//!
//! ```sh
//! distcommit run --protocol OPT --mpl 5 --seed 7
//! distcommit sweep --protocols 2PC,OPT,3PC --mpls 1,2,4,6,8,10
//! distcommit experiment fig1
//! distcommit tables
//! ```
//!
//! Argument parsing is hand-rolled (the repository's only dependencies
//! are the simulation crates); [`parse`] is pure and unit-tested.

use commitproto::ProtocolSpec;
use distdb::config::{
    FailureConfig, ResourceMode, RestartPolicy, SystemConfig, Topology, TransType,
};
use distdb::engine::{ChromeStreamSink, FoldSink, SeriesConfig, SeriesFormat, Simulation};
use distdb::experiments::{self, Scale};
use distdb::metrics::ReportFormat;
use distdb::output::{
    render_ascii_chart, render_csv, render_peaks, render_ranking, render_sweep_csv,
    render_sweep_json, render_sweep_series_csv, render_sweep_series_json, render_table,
    render_table_ci, Metric,
};
use simkernel::SimDuration;
use std::fmt;
use std::sync::LazyLock;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// One simulation run, full report.
    Run {
        cfg: SystemConfig,
        protocol: ProtocolSpec,
        seed: u64,
        format: ReportFormat,
        /// Stream every trace event to this file as Chrome trace-event
        /// JSON while the run executes (bounded memory; no in-memory
        /// event buffer).
        trace_out: Option<String>,
        /// Stream the windowed metric series to this file while the
        /// run executes (CSV, or JSON when the path ends in `.json`).
        series_out: Option<String>,
        /// Window width / per-site breakdown for `--series-out`.
        series_cfg: SeriesConfig,
    },
    /// One run's windowed metric time series (the report summary goes
    /// to the other stream so the series stays machine-readable).
    Series {
        cfg: SystemConfig,
        protocol: ProtocolSpec,
        seed: u64,
        series_cfg: SeriesConfig,
        format: SeriesFormat,
        /// Stream windows to this file as the run executes instead of
        /// printing the buffered series to stdout.
        out: Option<String>,
    },
    /// Per-transaction commit choreography: readable timelines plus an
    /// optional Chrome trace-event JSON export.
    Trace {
        cfg: SystemConfig,
        protocol: ProtocolSpec,
        seed: u64,
        txns: u64,
        out: Option<String>,
    },
    /// Fold traced transactions into weighted collapsed stacks
    /// (`root;phase;station;activity weight`) for flamegraph tools.
    Fold {
        cfg: SystemConfig,
        protocol: ProtocolSpec,
        seed: u64,
        txns: u64,
        out: Option<String>,
    },
    /// Protocols × MPLs sweep with tables and a chart, CSV, or JSON.
    Sweep {
        cfg: SystemConfig,
        protocols: Vec<ProtocolSpec>,
        mpls: Vec<u32>,
        seed: u64,
        reps: u32,
        jobs: Option<usize>,
        format: ReportFormat,
        /// Record every grid cell's windowed series to this file (CSV,
        /// or JSON when the path ends in `.json`).
        series_out: Option<String>,
        /// Window width / per-site breakdown for `--series-out`.
        series_cfg: SeriesConfig,
    },
    /// A named paper experiment (`fig1`, `fig2`, `expt3`, `fig3`,
    /// `fig4`, `fig5`, `seq`).
    Experiment {
        id: String,
        full: bool,
        reps: u32,
        jobs: Option<usize>,
        /// Emit per-metric CSV blocks instead of tables/charts.
        csv: bool,
    },
    /// The canonical engine benchmark: run the fixed seed/protocol
    /// grid, print events per core-second, optionally append the entry
    /// to a `BENCH_*.json` trajectory and gate against a committed
    /// baseline.
    Bench {
        quick: bool,
        label: String,
        seed: u64,
        out: Option<String>,
        baseline: Option<String>,
        tolerance: f64,
        /// Run the grid twice (series sink off/on) and gate the sink's
        /// off-path cost at 3%.
        series: bool,
    },
    /// Tables 2–4.
    Tables,
    /// Usage text.
    Help,
}

/// A CLI parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Usage text printed by `help` and on errors. Built lazily so the
/// `--faults` key table renders straight from
/// [`FailureConfig::CLI_KEYS`] — the parser and the help text share
/// one vocabulary by construction.
pub static USAGE: LazyLock<String> = LazyLock::new(|| {
    let fault_keys: String = FailureConfig::CLI_KEYS
        .iter()
        .map(|(key, desc)| format!("                             {key:<20} {desc}\n"))
        .collect();
    let topology_keys: String = Topology::CLI_KEYS
        .iter()
        .map(|(key, desc)| format!("                             {key:<20} {desc}\n"))
        .collect();
    // The protocol vocabulary renders straight from the spec table, so
    // adding a ProtocolSpec::ALL entry updates the help screen too.
    let protocol_names: String = ProtocolSpec::valid_names().collect::<Vec<_>>().join(" ");
    format!(
        "\
distcommit — the SIGMOD'97 commit-processing simulator

USAGE:
  distcommit run    [OPTIONS]                one simulation run
  distcommit series [OPTIONS]                windowed metric time series
  distcommit trace  [OPTIONS]                per-txn commit choreography
  distcommit fold   [OPTIONS]                collapsed-stack flamegraph fold
  distcommit sweep  [OPTIONS]                protocols x MPLs sweep
  distcommit experiment <fig1|fig2|expt3|fig3|fig4|fig5|seq|failures|faults|replication|scale>
                        [--full] [--reps N] [--jobs N] [--csv]
                        (--csv emits plottable per-metric CSV; the
                        faults preset adds a blocked-time-on-crash
                        table/CSV block — its headline curve)
  distcommit bench [OPTIONS]                 canonical engine benchmark
  distcommit tables                          Tables 2-4
  distcommit help

BENCH:
  --quick                  short grid (CI smoke) instead of the full
                           canonical grid
  --label <S>              label recorded with the trajectory entry
  --out <FILE>             append the entry to this BENCH_*.json
                           trajectory (created if missing)
  --baseline <FILE>        validate FILE's schema and fail if this
                           run's events/sec regresses beyond tolerance
                           vs its most recent comparable entry
  --tolerance <P>          allowed fractional regression (default 0.25)
  --seed <N>               grid seed (default 42)
  --series                 run the grid twice (series sink off, then
                           on) and fail if the sink's off-path cost
                           exceeds 3% of events/sec; both entries are
                           appended to --out

RUN OUTPUT:
  --format <F>             report format: table (default), csv
                           (long-form section,key,value) or json
  --trace-out <FILE>       stream Chrome trace-event JSON to FILE while
                           the run executes — bounded memory, so it
                           works for arbitrarily long runs; loadable in
                           chrome://tracing or https://ui.perfetto.dev
  --series-out <FILE>      also stream the windowed metric series to
                           FILE (CSV, or JSON when FILE ends in .json);
                           accepts --window/--per-site; incompatible
                           with --trace-out

SERIES:
  --format <F>             series format: csv (default, one row per
                           window) or json (one document with a
                           `windows` array)
  --window <SECS>          window width in simulated seconds
                           (default 5)
  --per-site               add a per-site breakdown (per-site commits
                           and instantaneous queue depths) to every
                           window
  --out <FILE>             stream windows to FILE as the run executes
                           (bounded memory) and print the report
                           summary to stdout; without --out the series
                           goes to stdout and the summary to stderr

TRACE:
  --txns <N>               transactions to trace from the start of the
                           run (default 3)
  --out <FILE>             also write Chrome trace-event JSON, loadable
                           in chrome://tracing or Perfetto

FOLD:
  --txns <N>               transactions to fold (default: all)
  --out <FILE>             write the collapsed stacks to FILE instead
                           of stdout; lines are
                           `protocol;phase;station;activity weight`
                           (weights in simulated µs), ready for
                           flamegraph.pl / inferno / speedscope

SWEEP OUTPUT:
  --format <F>             table (default): aligned tables plus an
                           ASCII chart and peak summary; csv: the three
                           CSV blocks below; json: one document with
                           every point's full report object
  --csv                    shorthand for --format csv: throughput
                           (mean + 90% CI half-width per series), then
                           per-phase p50/p90/p99 latencies, then
                           per-site occupancy percentiles, separated by
                           blank lines; byte-identical for every --jobs
  --series-out <FILE>      record every grid cell's windowed series to
                           FILE — CSV rows gain series,mpl,rep identity
                           columns (JSON when FILE ends in .json);
                           accepts --window/--per-site

FAULT INJECTION (run, series, trace, fold & sweep):
  --faults <K=V,..>        enable the failure model; keys:
{fault_keys}                           e.g. --faults mc=0.01,cc=0.005,loss=0.01

PARALLELISM & REPLICATIONS:
  --jobs <N>               (sweep & experiment) worker threads for the
                           run grid (default: DISTCOMMIT_JOBS, else all
                           cores); results are byte-identical for
                           every N
  --reps <N>               (sweep & experiment) independent replications
                           per (protocol, MPL) cell, each with its own
                           derived seed; with N >= 2 every point
                           reports mean +-90% CI across replications
                           (default 1)
  --shards <N>             (run, series, trace, fold & sweep) split each
                           run's sites into region-aligned shards
                           simulated in parallel on worker threads
                           (default: DISTCOMMIT_SHARDS, else serial);
                           needs a multi-region --topology with nonzero
                           wan-ms, at least 1, at most --sites; reports,
                           series and traces are byte-identical for
                           every shard count; composes with --jobs

OPTIONS (run & sweep):
  --protocol <NAME>        protocol for run/series/trace/fold (default 2PC)
  --protocols <A,B,..>     protocols for `sweep` (default CENT,DPCC,2PC,3PC,OPT)
  --mpl <N>                multiprogramming level for `run` (default 4)
  --mpls <N,N,..>          MPL axis for `sweep` (default 1..10)
  --seed <N>               RNG seed (default 42)
  --sites <N>              number of sites (default 8)
  --db-size <PAGES>        database size (default 8000)
  --dist-degree <N>        cohorts per transaction (default 3)
  --cohort-size <N>        mean pages per cohort (default 6)
  --update-prob <P>        page update probability (default 1.0)
  --msg-cpu-ms <MS>        message send/receive CPU time (default 5)
  --page-cpu-ms <MS>       page processing CPU time (default 5)
  --page-disk-ms <MS>      disk page access time (default 20)
  --cpus <N>               CPUs per site (default 1)
  --data-disks <N>         data disks per site (default 2)
  --log-disks <N>          log disks per site (default 1)
  --abort-prob <P>         cohort surprise NO-vote probability (default 0)
  --replication <F>        replica-group tolerance F: every shard gets
                           2F+1 acceptors / standby coordinators
                           (PAXOS and REP2PC only; default 0)
  --hot-spot <D,A>         b-c access skew: A of accesses hit first D of pages
  --zipf <THETA>           Zipf(theta) page-access skew per site
                           (excludes --hot-spot; 0 = uniform)
  --topology <K=V,..>      LAN/WAN topology: sites split into regions,
                           messages spend wire latency in flight; keys:
{topology_keys}                           e.g. --topology regions=8,lan-ms=1,wan-ms=40
  --sequential             sequential cohort execution
  --infinite               infinite resources (pure data contention)
  --read-only-opt          enable the Read-Only commit optimization
  --group-commit <N>       batch up to N forced writes per log service
  --restart-fixed-ms <MS>  fixed restart delay instead of adaptive
  --warmup <N>             warm-up transactions (default 500)
  --measured <N>           measured transactions (default 5000)

Protocols: {protocol_names}
"
    )
});

fn take_value<'a>(
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a String, CliError> {
    it.next()
        .ok_or_else(|| CliError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, CliError> {
    v.parse()
        .map_err(|_| CliError(format!("{flag}: cannot parse {v:?}")))
}

fn parse_protocol(v: &str) -> Result<ProtocolSpec, CliError> {
    v.parse::<ProtocolSpec>()
        .map_err(|e| CliError(e.to_string()))
}

fn parse_list<T: std::str::FromStr>(flag: &str, v: &str) -> Result<Vec<T>, CliError> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_num(flag, s))
        .collect()
}

/// Parse a `--faults` specification by delegating to
/// [`FailureConfig`]'s `FromStr` — the typed parser the library
/// exposes — and prefixing errors with the flag name.
fn parse_faults(v: &str) -> Result<FailureConfig, CliError> {
    v.parse()
        .map_err(|e: String| CliError(format!("--faults: {e}")))
}

/// Series format implied by an output path: `.json` means JSON,
/// anything else CSV.
fn series_format_for(path: &str) -> SeriesFormat {
    if path.ends_with(".json") {
        SeriesFormat::Json
    } else {
        SeriesFormat::Csv
    }
}

fn series_format_name(f: SeriesFormat) -> &'static str {
    match f {
        SeriesFormat::Csv => "csv",
        SeriesFormat::Json => "json",
    }
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "tables" => Ok(Command::Tables),
        "bench" => {
            let mut quick = false;
            let mut label = String::new();
            let mut seed = distbench::canonical::GRID_SEED;
            let mut out = None;
            let mut baseline = None;
            let mut tolerance = 0.25f64;
            let mut series = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => quick = true,
                    "--label" => label = take_value(a, &mut it)?.clone(),
                    "--seed" => seed = parse_num(a, take_value(a, &mut it)?)?,
                    "--out" => out = Some(take_value(a, &mut it)?.clone()),
                    "--baseline" => baseline = Some(take_value(a, &mut it)?.clone()),
                    "--tolerance" => tolerance = parse_num(a, take_value(a, &mut it)?)?,
                    "--series" => series = true,
                    other => return err(format!("unknown option {other:?}")),
                }
            }
            if !(0.0..1.0).contains(&tolerance) {
                return err("--tolerance must be a fraction in [0, 1)");
            }
            Ok(Command::Bench {
                quick,
                label,
                seed,
                out,
                baseline,
                tolerance,
                series,
            })
        }
        "experiment" => {
            let mut id = None;
            let mut full = false;
            let mut reps = 1u32;
            let mut jobs = None;
            let mut csv = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--full" => full = true,
                    "--csv" => csv = true,
                    "--reps" => reps = parse_num(a, take_value(a, &mut it)?)?,
                    "--jobs" => jobs = Some(parse_num(a, take_value(a, &mut it)?)?),
                    other if id.is_none() && !other.starts_with('-') => {
                        id = Some(other.to_string())
                    }
                    other => return err(format!("unexpected argument {other:?}")),
                }
            }
            if reps == 0 {
                return err("--reps must be at least 1");
            }
            match id {
                Some(id) => Ok(Command::Experiment {
                    id,
                    full,
                    reps,
                    jobs,
                    csv,
                }),
                None => err("experiment needs an id \
                     (fig1|fig2|expt3|fig3|fig4|fig5|seq|failures|faults|replication|scale)"),
            }
        }
        "run" | "sweep" | "trace" | "fold" | "series" => {
            let mut cfg = SystemConfig::paper_baseline();
            cfg.run.warmup_transactions = 500;
            cfg.run.measured_transactions = 5_000;
            if sub == "trace" {
                // Tracing inspects individual transactions; a short run
                // keeps the timeline readable (flags still override).
                cfg.run.warmup_transactions = 50;
                cfg.run.measured_transactions = 200;
            }
            let mut txns: Option<u64> = None;
            let mut out: Option<String> = None;
            let mut format: Option<ReportFormat> = None;
            let mut trace_out: Option<String> = None;
            let mut series_out: Option<String> = None;
            let mut window: Option<f64> = None;
            let mut per_site = false;
            let mut protocol = ProtocolSpec::TWO_PC;
            let mut protocols = vec![
                ProtocolSpec::CENT,
                ProtocolSpec::DPCC,
                ProtocolSpec::TWO_PC,
                ProtocolSpec::THREE_PC,
                ProtocolSpec::OPT_2PC,
            ];
            let mut mpls: Vec<u32> = (1..=10).collect();
            let mut seed = 42u64;
            let mut reps = 1u32;
            let mut jobs = None;
            let mut csv = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--protocol" => protocol = parse_protocol(take_value(a, &mut it)?)?,
                    "--csv" => csv = true,
                    "--faults" => cfg.failures = Some(parse_faults(take_value(a, &mut it)?)?),
                    "--txns" => txns = Some(parse_num(a, take_value(a, &mut it)?)?),
                    "--out" => out = Some(take_value(a, &mut it)?.clone()),
                    "--format" => {
                        format = Some(
                            take_value(a, &mut it)?
                                .parse()
                                .map_err(|e: String| CliError(format!("--format: {e}")))?,
                        )
                    }
                    "--trace-out" => trace_out = Some(take_value(a, &mut it)?.clone()),
                    "--series-out" => series_out = Some(take_value(a, &mut it)?.clone()),
                    "--window" => window = Some(parse_num(a, take_value(a, &mut it)?)?),
                    "--per-site" => per_site = true,
                    "--reps" => reps = parse_num(a, take_value(a, &mut it)?)?,
                    "--jobs" => jobs = Some(parse_num(a, take_value(a, &mut it)?)?),
                    "--shards" => {
                        let n: u32 = parse_num(a, take_value(a, &mut it)?)?;
                        if n == 0 {
                            return err("--shards must be at least 1; omit the flag (and unset \
                                 DISTCOMMIT_SHARDS) for the serial engine");
                        }
                        cfg.shards = n;
                    }
                    "--protocols" => {
                        protocols = take_value(a, &mut it)?
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(parse_protocol)
                            .collect::<Result<_, _>>()?;
                    }
                    "--mpl" => cfg.mpl = parse_num(a, take_value(a, &mut it)?)?,
                    "--mpls" => mpls = parse_list(a, take_value(a, &mut it)?)?,
                    "--seed" => seed = parse_num(a, take_value(a, &mut it)?)?,
                    "--sites" => cfg.num_sites = parse_num(a, take_value(a, &mut it)?)?,
                    "--db-size" => cfg.db_size = parse_num(a, take_value(a, &mut it)?)?,
                    "--dist-degree" => cfg.dist_degree = parse_num(a, take_value(a, &mut it)?)?,
                    "--cohort-size" => cfg.cohort_size = parse_num(a, take_value(a, &mut it)?)?,
                    "--update-prob" => cfg.update_prob = parse_num(a, take_value(a, &mut it)?)?,
                    "--msg-cpu-ms" => {
                        cfg.msg_cpu =
                            SimDuration::from_millis_f64(parse_num(a, take_value(a, &mut it)?)?)
                    }
                    "--page-cpu-ms" => {
                        cfg.page_cpu =
                            SimDuration::from_millis_f64(parse_num(a, take_value(a, &mut it)?)?)
                    }
                    "--page-disk-ms" => {
                        cfg.page_disk =
                            SimDuration::from_millis_f64(parse_num(a, take_value(a, &mut it)?)?)
                    }
                    "--cpus" => cfg.num_cpus = parse_num(a, take_value(a, &mut it)?)?,
                    "--data-disks" => cfg.num_data_disks = parse_num(a, take_value(a, &mut it)?)?,
                    "--log-disks" => cfg.num_log_disks = parse_num(a, take_value(a, &mut it)?)?,
                    "--abort-prob" => {
                        cfg.cohort_abort_prob = parse_num(a, take_value(a, &mut it)?)?
                    }
                    "--replication" => cfg.replication = parse_num(a, take_value(a, &mut it)?)?,
                    "--hot-spot" => {
                        let parts: Vec<f64> = parse_list(a, take_value(a, &mut it)?)?;
                        if parts.len() != 2 {
                            return err("--hot-spot wants DATA_FRACTION,ACCESS_FRACTION");
                        }
                        cfg.hot_spot = Some(distdb::config::HotSpot {
                            data_fraction: parts[0],
                            access_fraction: parts[1],
                        });
                    }
                    "--zipf" => {
                        cfg.zipf = Some(distdb::config::Zipf {
                            theta: parse_num(a, take_value(a, &mut it)?)?,
                        })
                    }
                    "--topology" => {
                        cfg.topology = Some(
                            take_value(a, &mut it)?
                                .parse()
                                .map_err(|e: String| CliError(format!("--topology: {e}")))?,
                        )
                    }
                    "--sequential" => cfg.trans_type = TransType::Sequential,
                    "--infinite" => cfg.resources = ResourceMode::Infinite,
                    "--read-only-opt" => cfg.read_only_optimization = true,
                    "--group-commit" => {
                        cfg.group_commit_batch = Some(parse_num(a, take_value(a, &mut it)?)?)
                    }
                    "--restart-fixed-ms" => {
                        cfg.restart_policy = RestartPolicy::Fixed(SimDuration::from_millis_f64(
                            parse_num(a, take_value(a, &mut it)?)?,
                        ))
                    }
                    "--warmup" => {
                        cfg.run.warmup_transactions = parse_num(a, take_value(a, &mut it)?)?
                    }
                    "--measured" => {
                        cfg.run.measured_transactions = parse_num(a, take_value(a, &mut it)?)?
                    }
                    other => return err(format!("unknown option {other:?}")),
                }
            }
            cfg.validate().map_err(|e| CliError(e.to_string()))?;
            if !matches!(sub.as_str(), "trace" | "fold") && txns.is_some() {
                return err("--txns applies to trace and fold only");
            }
            if !matches!(sub.as_str(), "trace" | "fold" | "series") && out.is_some() {
                return err("--out applies to trace, fold and series only");
            }
            if !matches!(sub.as_str(), "run" | "sweep" | "series") && format.is_some() {
                return err("--format applies to run, sweep and series only");
            }
            if sub != "run" && trace_out.is_some() {
                return err("--trace-out applies to run only");
            }
            if !matches!(sub.as_str(), "run" | "sweep") && series_out.is_some() {
                return err("--series-out applies to run and sweep only");
            }
            if sub != "series" && series_out.is_none() && (window.is_some() || per_site) {
                return err("--window/--per-site need `series` or --series-out");
            }
            if sub != "sweep" && csv {
                return err("--csv applies to sweep only");
            }
            if let Some(w) = window {
                if !w.is_finite() || w <= 0.0 {
                    return err("--window must be a positive number of seconds");
                }
            }
            let series_cfg = SeriesConfig {
                window: window
                    .map(|w| SimDuration::from_millis_f64(w * 1_000.0))
                    .unwrap_or(SeriesConfig::DEFAULT_WINDOW),
                per_site,
            };
            if sub != "sweep" {
                if reps != 1 || jobs.is_some() {
                    return err("--reps/--jobs apply to sweep and experiment only");
                }
                if txns == Some(0) {
                    return err("--txns must be at least 1");
                }
                if sub == "trace" {
                    return Ok(Command::Trace {
                        cfg,
                        protocol,
                        seed,
                        txns: txns.unwrap_or(3),
                        out,
                    });
                }
                if sub == "fold" {
                    return Ok(Command::Fold {
                        cfg,
                        protocol,
                        seed,
                        txns: txns.unwrap_or(u64::MAX),
                        out,
                    });
                }
                if sub == "series" {
                    let format = match format.unwrap_or(ReportFormat::Csv) {
                        ReportFormat::Csv => SeriesFormat::Csv,
                        ReportFormat::Json => SeriesFormat::Json,
                        ReportFormat::Table => {
                            return err(
                                "series --format: csv|json (a table has no series rendering)",
                            )
                        }
                    };
                    return Ok(Command::Series {
                        cfg,
                        protocol,
                        seed,
                        series_cfg,
                        format,
                        out,
                    });
                }
                if trace_out.is_some() && series_out.is_some() {
                    // The two streamers use separate engine entry
                    // points; one observed run cannot feed both.
                    return err("--trace-out and --series-out are mutually exclusive");
                }
                Ok(Command::Run {
                    cfg,
                    protocol,
                    seed,
                    format: format.unwrap_or(ReportFormat::Table),
                    trace_out,
                    series_out,
                    series_cfg,
                })
            } else {
                if protocols.is_empty() || mpls.is_empty() {
                    return err("sweep needs at least one protocol and one MPL");
                }
                if reps == 0 {
                    return err("--reps must be at least 1");
                }
                if csv && format.is_some() {
                    return err("--csv is shorthand for --format csv; pass one of them");
                }
                let format = format.unwrap_or(if csv {
                    ReportFormat::Csv
                } else {
                    ReportFormat::Table
                });
                Ok(Command::Sweep {
                    cfg,
                    protocols,
                    mpls,
                    seed,
                    reps,
                    jobs,
                    format,
                    series_out,
                    series_cfg,
                })
            }
        }
        other => err(format!("unknown command {other:?}; try `distcommit help`")),
    }
}

/// Apply the `DISTCOMMIT_SHARDS` default to a configuration whose
/// `--shards` flag was not given. Kept out of [`parse`] so parsing
/// stays a pure function of the argument vector.
fn with_default_shards(mut cfg: SystemConfig) -> SystemConfig {
    if cfg.shards == 0 {
        cfg.shards = distdb::runner::default_shards();
    }
    cfg
}

/// Execute a parsed command, writing to stdout. Returns the process
/// exit code.
pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{}", *USAGE);
            0
        }
        Command::Bench {
            quick,
            label,
            seed,
            out,
            baseline,
            tolerance,
            series,
        } => {
            use distbench::canonical as bench;
            let opts = bench::Options {
                quick,
                label,
                seed,
                series,
            };
            // Validate the baseline's schema up front: a malformed
            // committed trajectory should fail fast, before minutes of
            // grid runs.
            let baseline_doc = match baseline.as_deref().map(bench::load_trajectory) {
                Some(Ok(doc)) => Some(doc),
                Some(Err(e)) => {
                    eprintln!("error: {e}");
                    return 1;
                }
                None => None,
            };
            // With --series the grid runs twice (sink off, then on);
            // the off pass is the entry comparable to the baseline.
            let (entry, overhead) = if opts.series {
                match bench::series_overhead(&opts) {
                    Ok(m) => (m.off.clone(), Some(m)),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                }
            } else {
                match bench::run_grid(&opts) {
                    Ok(entry) => (entry, None),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                }
            };
            print!("{}", bench::render_entry(&entry));
            if let Some(m) = &overhead {
                print!("{}", bench::render_entry(&m.on));
            }
            if let Some(path) = &out {
                let mut entries = vec![&entry];
                if let Some(m) = &overhead {
                    entries.push(&m.on);
                }
                for e in entries {
                    if let Err(err) = bench::append_entry(path, e) {
                        eprintln!("error: {err}");
                        return 1;
                    }
                }
                println!("[trajectory] appended entry to {path}");
            }
            if let Some(doc) = &baseline_doc {
                match bench::compare_to_baseline(&entry, doc, tolerance) {
                    Ok(verdict) => println!("[baseline] {verdict}"),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                }
            }
            if let Some(m) = &overhead {
                match bench::render_series_overhead(m) {
                    Ok(verdict) => println!("[series] {verdict}"),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                }
            }
            0
        }
        Command::Tables => {
            println!("Table 2 — Baseline Parameter Settings (reconstructed):");
            println!("{}", SystemConfig::paper_baseline());
            for d in [3u32, 6] {
                println!(
                    "Table {} — Protocol Overheads (DistDegree = {d}):",
                    if d == 3 { 3 } else { 4 }
                );
                println!(
                    "{:<9} {:>9} {:>13} {:>11}",
                    "Protocol", "ExecMsgs", "ForcedWrites", "CommitMsgs"
                );
                for spec in [
                    ProtocolSpec::TWO_PC,
                    ProtocolSpec::PA,
                    ProtocolSpec::PC,
                    ProtocolSpec::THREE_PC,
                    ProtocolSpec::DPCC,
                    ProtocolSpec::CENT,
                ] {
                    let o = spec.committed_overheads(d);
                    println!(
                        "{:<9} {:>9} {:>13} {:>11}",
                        spec.name(),
                        o.exec_messages,
                        o.forced_writes,
                        o.commit_messages
                    );
                }
                println!();
            }
            0
        }
        Command::Run {
            cfg,
            protocol,
            seed,
            format,
            trace_out,
            series_out,
            series_cfg,
        } => {
            let cfg = with_default_shards(cfg);
            // Both streamers write to disk as the run progresses, so
            // observing a full run needs no in-memory buffer.
            let result = match &trace_out {
                Some(path) => match ChromeStreamSink::create(std::path::Path::new(path)) {
                    Ok(sink) => {
                        Simulation::run_auto_with_sink(&cfg, protocol, seed, u64::MAX, sink)
                            .map(|(r, sink)| (r, Some(sink)))
                    }
                    Err(e) => {
                        eprintln!("error: cannot create {path}: {e}");
                        return 1;
                    }
                },
                None => match &series_out {
                    Some(path) => match std::fs::File::create(path) {
                        Ok(file) => match Simulation::run_auto_with_series_stream(
                            &cfg,
                            protocol,
                            seed,
                            &series_cfg,
                            Box::new(file),
                            series_format_for(path),
                        ) {
                            Ok(r) => Ok((r, None)),
                            Err(e) => {
                                eprintln!("error: {e}");
                                return 1;
                            }
                        },
                        Err(e) => {
                            eprintln!("error: cannot create {path}: {e}");
                            return 1;
                        }
                    },
                    None => Simulation::run_auto(&cfg, protocol, seed).map(|r| (r, None)),
                },
            };
            match result {
                Ok((r, sink)) => {
                    if format == ReportFormat::Table {
                        println!("{cfg}");
                    }
                    print!("{}", r.render(format));
                    if let Some(sink) = sink {
                        let path = trace_out.as_deref().unwrap_or_default();
                        match sink.into_result() {
                            // stderr keeps csv/json output machine-readable.
                            Ok(events) => eprintln!(
                                "chrome trace ({events} events) streamed to {path} — open in \
                                 chrome://tracing or https://ui.perfetto.dev"
                            ),
                            Err(e) => {
                                eprintln!("error: cannot write {path}: {e}");
                                return 1;
                            }
                        }
                    }
                    if let Some(path) = &series_out {
                        eprintln!("windowed series streamed to {path}");
                    }
                    i32::from(!r.overhead_check.is_clean())
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        Command::Series {
            cfg,
            protocol,
            seed,
            series_cfg,
            format,
            out,
        } => {
            let cfg = with_default_shards(cfg);
            match &out {
                Some(path) => match std::fs::File::create(path) {
                    Ok(file) => match Simulation::run_auto_with_series_stream(
                        &cfg,
                        protocol,
                        seed,
                        &series_cfg,
                        Box::new(file),
                        format,
                    ) {
                        Ok(report) => {
                            println!(
                                "windowed series ({}) streamed to {path}",
                                series_format_name(format)
                            );
                            println!("{}", report.summary());
                            0
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            1
                        }
                    },
                    Err(e) => {
                        eprintln!("error: cannot create {path}: {e}");
                        1
                    }
                },
                None => match Simulation::run_auto_with_series(&cfg, protocol, seed, &series_cfg) {
                    Ok((report, series)) => {
                        // stdout carries only the series, so redirecting it
                        // to a file gives exactly the --out bytes; the
                        // summary rides on stderr.
                        print!("{}", series.render(format));
                        eprintln!("{}", report.summary());
                        0
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        1
                    }
                },
            }
        }
        Command::Fold {
            cfg,
            protocol,
            seed,
            txns,
            out,
        } => {
            let cfg = with_default_shards(cfg);
            let sink = FoldSink::new(protocol.name());
            match Simulation::run_auto_with_sink(&cfg, protocol, seed, txns, sink) {
                Ok((report, fold)) => {
                    let rendered = fold.render();
                    match out {
                        Some(path) => {
                            if let Err(e) = std::fs::write(&path, &rendered) {
                                eprintln!("error: cannot write {path}: {e}");
                                return 1;
                            }
                            println!(
                                "{} collapsed stacks written to {path} — render with \
                                 flamegraph.pl, inferno-flamegraph or speedscope",
                                fold.stacks().len()
                            );
                            println!("{}", report.summary());
                        }
                        None => {
                            // stdout carries only the collapsed stacks, so
                            // `distcommit fold | flamegraph.pl` works.
                            print!("{rendered}");
                            eprintln!("{}", report.summary());
                        }
                    }
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        Command::Trace {
            cfg,
            protocol,
            seed,
            txns,
            out,
        } => match Simulation::run_auto_traced(&with_default_shards(cfg), protocol, seed, txns) {
            Ok((report, trace)) => {
                println!(
                    "{} — first {txns} transaction(s), seed {seed}",
                    protocol.name()
                );
                println!();
                for txn in trace.txns() {
                    print!("{}", trace.render_txn(txn));
                    println!();
                }
                println!("{}", report.summary());
                if let Some(path) = out {
                    let json = distdb::engine::chrome_trace_json(&trace);
                    match std::fs::write(&path, &json) {
                        Ok(()) => println!(
                            "chrome trace ({} events) written to {path} — open in \
                             chrome://tracing or https://ui.perfetto.dev",
                            trace.events.len()
                        ),
                        Err(e) => {
                            eprintln!("error: cannot write {path}: {e}");
                            return 1;
                        }
                    }
                }
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Command::Sweep {
            cfg,
            protocols,
            mpls,
            seed,
            reps,
            jobs,
            format,
            series_out,
            series_cfg,
        } => {
            let cfg = with_default_shards(cfg);
            let scale = Scale::quick()
                .with_runs(cfg.run.warmup_transactions, cfg.run.measured_transactions)
                .with_mpls(mpls)
                .with_seed(seed)
                .with_replications(reps)
                .with_jobs(jobs);
            let specs: Vec<(String, ProtocolSpec, SystemConfig)> = protocols
                .iter()
                .map(|&p| (p.name().to_string(), p, cfg.clone()))
                .collect();
            // With --series-out every grid cell also records windows;
            // recording does not perturb the runs, so the reports are
            // identical either way.
            let result = match &series_out {
                Some(path) => {
                    match experiments::sweep_with_series(&cfg, &specs, &scale, &series_cfg) {
                        Ok((series, cells)) => {
                            let rendered = match series_format_for(path) {
                                SeriesFormat::Json => render_sweep_series_json(&cells),
                                SeriesFormat::Csv => render_sweep_series_csv(&cells),
                            };
                            if let Err(e) = std::fs::write(path, &rendered) {
                                eprintln!("error: cannot write {path}: {e}");
                                return 1;
                            }
                            eprintln!(
                                "windowed series for {} sweep cell(s) written to {path}",
                                cells.len()
                            );
                            Ok(series)
                        }
                        Err(e) => Err(e),
                    }
                }
                None => experiments::sweep(&cfg, &specs, &scale),
            };
            match result {
                Ok(series) => {
                    let exp = experiments::Experiment {
                        id: "cli-sweep".into(),
                        title: "CLI sweep".into(),
                        config: cfg,
                        series,
                    };
                    match format {
                        ReportFormat::Csv => {
                            print!("{}", render_sweep_csv(&exp));
                            return 0;
                        }
                        ReportFormat::Json => {
                            print!("{}", render_sweep_json(&exp));
                            return 0;
                        }
                        ReportFormat::Table => {}
                    }
                    if reps >= 2 {
                        print!("{}", render_table_ci(&exp));
                    } else {
                        print!("{}", render_table(&exp, Metric::Throughput));
                    }
                    println!();
                    print!("{}", render_table(&exp, Metric::BlockRatio));
                    println!();
                    print!("{}", render_ascii_chart(&exp, Metric::Throughput, 64, 18));
                    print!("{}", render_peaks(&exp));
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        Command::Experiment {
            id,
            full,
            reps,
            jobs,
            csv,
        } => {
            let mut scale = if full { Scale::full() } else { Scale::quick() };
            scale.replications = reps;
            scale.jobs = jobs;
            let print = |exp: &experiments::Experiment| {
                if csv {
                    print!("{}", render_csv(exp, Metric::Throughput));
                    if exp.id == "faults" {
                        println!();
                        print!("{}", render_csv(exp, Metric::CrashBlockedTime));
                    }
                    return;
                }
                if reps >= 2 {
                    print!("{}", render_table_ci(exp));
                } else {
                    print!("{}", render_table(exp, Metric::Throughput));
                }
                println!();
                print!("{}", render_ascii_chart(exp, Metric::Throughput, 64, 18));
                print!("{}", render_peaks(exp));
                if exp.id == "scale" {
                    // The scale preset pins MPL and varies the
                    // network/skew mix — the ranking is the result.
                    println!();
                    print!("{}", render_ranking(exp));
                }
                if exp.id == "faults" {
                    // Blocked time is the point of the fault sweep:
                    // the curve vs crash probability separates the
                    // blocking protocols from 3PC termination and
                    // Paxos Commit failover.
                    println!();
                    print!("{}", render_table(exp, Metric::CrashBlockedTime));
                    print!(
                        "{}",
                        render_ascii_chart(exp, Metric::CrashBlockedTime, 64, 18)
                    );
                }
            };
            let result: Result<Vec<experiments::Experiment>, _> = match id.as_str() {
                "fig1" => experiments::fig1(&scale).map(|e| vec![e]),
                "fig2" => experiments::fig2(&scale).map(|e| vec![e]),
                "expt3" => experiments::expt3(&scale).map(|(a, b)| vec![a, b]),
                "fig3" => experiments::fig3(&scale).map(|(a, b)| vec![a, b]),
                "fig4" => experiments::fig4(&scale).map(|(a, b)| vec![a, b]),
                "fig5" => experiments::fig5(&scale).map(|(a, b)| vec![a, b]),
                "seq" => experiments::seq(&scale).map(|e| vec![e]),
                "failures" => experiments::failures(&scale).map(|e| vec![e]),
                "faults" => experiments::fault_injection(&scale).map(|e| vec![e]),
                "replication" => experiments::replication(&scale).map(|e| vec![e]),
                "scale" => experiments::at_scale(&scale).map(|e| vec![e]),
                other => {
                    eprintln!(
                        "unknown experiment {other:?} \
                         (fig1|fig2|expt3|fig3|fig4|fig5|seq|failures|faults|replication|scale)"
                    );
                    return 1;
                }
            };
            match result {
                Ok(exps) => {
                    for e in &exps {
                        print(e);
                        println!();
                    }
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn tables_command() {
        assert_eq!(parse(&argv("tables")).unwrap(), Command::Tables);
    }

    #[test]
    fn run_with_defaults() {
        let Command::Run {
            cfg,
            protocol,
            seed,
            format,
            trace_out,
            series_out,
            series_cfg,
        } = parse(&argv("run")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(protocol, ProtocolSpec::TWO_PC);
        assert_eq!(seed, 42);
        assert_eq!(cfg.mpl, 4);
        assert_eq!(format, ReportFormat::Table);
        assert_eq!(trace_out, None);
        assert_eq!(series_out, None);
        assert_eq!(series_cfg, SeriesConfig::default());
    }

    #[test]
    fn run_with_everything() {
        let cmd = parse(&argv(
            "run --protocol OPT-3PC --mpl 7 --seed 9 --sites 4 --db-size 4000 \
             --dist-degree 4 --cohort-size 3 --update-prob 0.5 --msg-cpu-ms 1 \
             --page-cpu-ms 6 --page-disk-ms 18 --cpus 2 --data-disks 3 --log-disks 2 \
             --abort-prob 0.05 --sequential --infinite --read-only-opt \
             --group-commit 8 --restart-fixed-ms 250 --warmup 10 --measured 100",
        ))
        .unwrap();
        let Command::Run {
            cfg,
            protocol,
            seed,
            ..
        } = cmd
        else {
            panic!("expected Run")
        };
        assert_eq!(protocol, ProtocolSpec::OPT_3PC);
        assert_eq!(seed, 9);
        assert_eq!(cfg.num_sites, 4);
        assert_eq!(cfg.db_size, 4000);
        assert_eq!(cfg.mpl, 7);
        assert_eq!(cfg.dist_degree, 4);
        assert_eq!(cfg.cohort_size, 3);
        assert_eq!(cfg.update_prob, 0.5);
        assert_eq!(cfg.msg_cpu, SimDuration::from_millis(1));
        assert_eq!(cfg.page_cpu, SimDuration::from_millis(6));
        assert_eq!(cfg.page_disk, SimDuration::from_millis(18));
        assert_eq!(cfg.num_cpus, 2);
        assert_eq!(cfg.num_data_disks, 3);
        assert_eq!(cfg.num_log_disks, 2);
        assert_eq!(cfg.cohort_abort_prob, 0.05);
        assert_eq!(cfg.trans_type, TransType::Sequential);
        assert_eq!(cfg.resources, ResourceMode::Infinite);
        assert!(cfg.read_only_optimization);
        assert_eq!(cfg.group_commit_batch, Some(8));
        assert_eq!(
            cfg.restart_policy,
            RestartPolicy::Fixed(SimDuration::from_millis(250))
        );
        assert_eq!(cfg.run.warmup_transactions, 10);
        assert_eq!(cfg.run.measured_transactions, 100);
    }

    #[test]
    fn hot_spot_flag() {
        let Command::Run { cfg, .. } = parse(&argv("run --hot-spot 0.2,0.8")).unwrap() else {
            panic!("expected Run");
        };
        let h = cfg.hot_spot.unwrap();
        assert_eq!(h.data_fraction, 0.2);
        assert_eq!(h.access_fraction, 0.8);
        assert!(parse(&argv("run --hot-spot 0.2")).is_err());
        assert!(parse(&argv("run --hot-spot 0.2,1.5")).is_err()); // validation
    }

    #[test]
    fn zipf_flag() {
        let Command::Run { cfg, .. } = parse(&argv("run --zipf 0.9")).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(cfg.zipf, Some(distdb::config::Zipf { theta: 0.9 }));
        // Validation runs at parse time: Zipf and HotSpot are exclusive.
        assert!(parse(&argv("run --zipf 0.9 --hot-spot 0.2,0.8")).is_err());
        assert!(parse(&argv("run --zipf -1")).is_err());
        assert!(parse(&argv("run --zipf")).is_err());
    }

    #[test]
    fn topology_flag_parses_key_value_pairs() {
        let Command::Sweep { cfg, .. } = parse(&argv(
            "sweep --protocols 2PC --mpls 2 --sites 64 \
             --topology regions=8,lan-ms=1,wan-ms=40,jitter=0.1,hot=0.2",
        ))
        .unwrap() else {
            panic!("expected Sweep");
        };
        let t = cfg.topology.unwrap();
        assert_eq!(t.regions, 8);
        assert_eq!(t.lan_latency, SimDuration::from_millis(1));
        assert_eq!(t.wan_latency, SimDuration::from_millis(40));
        assert_eq!(t.jitter, 0.1);
        assert_eq!(t.hot_site_prob, 0.2);
        // Unspecified keys keep the degenerate defaults.
        let Command::Run { cfg, .. } = parse(&argv("run --topology regions=4")).unwrap() else {
            panic!("expected Run");
        };
        let t = cfg.topology.unwrap();
        assert_eq!(t.regions, 4);
        assert!(t.lan_latency.is_zero());
        // Bad keys, shapes, and validation failures are rejected.
        assert!(parse(&argv("run --topology bogus=1")).is_err());
        assert!(parse(&argv("run --topology regions")).is_err());
        assert!(parse(&argv("run --topology regions=0")).is_err()); // validation
        assert!(parse(&argv("run --sites 4 --topology regions=9")).is_err()); // validation
        assert!(parse(&argv("run --topology")).is_err());
    }

    #[test]
    fn usage_lists_every_topology_key_from_the_config_table() {
        for (key, desc) in Topology::CLI_KEYS {
            assert!(USAGE.contains(key), "usage missing topology key {key}");
            assert!(USAGE.contains(desc), "usage missing topology desc {desc}");
        }
        assert!(USAGE.contains("--zipf"));
        assert!(USAGE.contains("scale"));
    }

    #[test]
    fn sweep_parses_lists() {
        let cmd = parse(&argv("sweep --protocols 2PC,OPT --mpls 1,4,8 --seed 3")).unwrap();
        let Command::Sweep {
            protocols,
            mpls,
            seed,
            reps,
            jobs,
            ..
        } = cmd
        else {
            panic!("expected Sweep")
        };
        assert_eq!(protocols, vec![ProtocolSpec::TWO_PC, ProtocolSpec::OPT_2PC]);
        assert_eq!(mpls, vec![1, 4, 8]);
        assert_eq!(seed, 3);
        assert_eq!(reps, 1);
        assert_eq!(jobs, None);
    }

    #[test]
    fn sweep_parses_reps_and_jobs() {
        let cmd = parse(&argv("sweep --protocols 2PC --mpls 2 --reps 5 --jobs 4")).unwrap();
        let Command::Sweep { reps, jobs, .. } = cmd else {
            panic!("expected Sweep")
        };
        assert_eq!(reps, 5);
        assert_eq!(jobs, Some(4));
        // reps must be positive; run takes neither flag
        assert!(parse(&argv("sweep --protocols 2PC --mpls 2 --reps 0")).is_err());
        assert!(parse(&argv("run --reps 3")).is_err());
        assert!(parse(&argv("run --jobs 2")).is_err());
    }

    #[test]
    fn experiment_parses_id_and_full() {
        assert_eq!(
            parse(&argv("experiment fig4 --full")).unwrap(),
            Command::Experiment {
                id: "fig4".into(),
                full: true,
                reps: 1,
                jobs: None,
                csv: false,
            }
        );
        assert_eq!(
            parse(&argv("experiment seq")).unwrap(),
            Command::Experiment {
                id: "seq".into(),
                full: false,
                reps: 1,
                jobs: None,
                csv: false,
            }
        );
        assert!(parse(&argv("experiment")).is_err());
    }

    #[test]
    fn experiment_parses_csv() {
        assert_eq!(
            parse(&argv("experiment faults --csv")).unwrap(),
            Command::Experiment {
                id: "faults".into(),
                full: false,
                reps: 1,
                jobs: None,
                csv: true,
            }
        );
    }

    #[test]
    fn experiment_parses_reps_and_jobs() {
        assert_eq!(
            parse(&argv("experiment fig1 --reps 4 --jobs 8")).unwrap(),
            Command::Experiment {
                id: "fig1".into(),
                full: false,
                reps: 4,
                jobs: Some(8),
                csv: false,
            }
        );
        assert!(parse(&argv("experiment fig1 --reps 0")).is_err());
        assert!(parse(&argv("experiment fig1 --jobs")).is_err());
    }

    #[test]
    fn faults_flag_parses_key_value_pairs() {
        let Command::Run { cfg, .. } = parse(&argv(
            "run --faults mc=0.01,cc=0.005,loss=0.02,detect-ms=200,recover-ms=4000,\
             cohort-recover-ms=800,retry-ms=50,retries=2",
        ))
        .unwrap() else {
            panic!("expected Run");
        };
        let f = cfg.failures.unwrap();
        assert_eq!(f.master_crash_prob, 0.01);
        assert_eq!(f.cohort_crash_prob, 0.005);
        assert_eq!(f.msg_loss_prob, 0.02);
        assert_eq!(f.detection_timeout, SimDuration::from_millis(200));
        assert_eq!(f.recovery_time, SimDuration::from_millis(4000));
        assert_eq!(f.cohort_recovery_time, SimDuration::from_millis(800));
        assert_eq!(f.msg_timeout, SimDuration::from_millis(50));
        assert_eq!(f.max_retransmits, 2);
        // Unspecified keys keep the suite's defaults.
        let Command::Trace { cfg, .. } = parse(&argv("trace --faults mc=0.05")).unwrap() else {
            panic!("expected Trace");
        };
        let f = cfg.failures.unwrap();
        assert_eq!(f.master_crash_prob, 0.05);
        assert_eq!(f.cohort_crash_prob, 0.0);
        assert_eq!(f.max_retransmits, 3);
        // Bad keys, bad shapes and invalid probabilities are rejected.
        assert!(parse(&argv("run --faults bogus=1")).is_err());
        assert!(parse(&argv("run --faults mc")).is_err());
        assert!(parse(&argv("run --faults mc=1.5")).is_err()); // validation
        assert!(parse(&argv("run --faults")).is_err());
    }

    #[test]
    fn csv_flag_is_sweep_only_and_aliases_format_csv() {
        let Command::Sweep { format, .. } =
            parse(&argv("sweep --protocols 2PC --mpls 1,2 --csv")).unwrap()
        else {
            panic!("expected Sweep");
        };
        assert_eq!(format, ReportFormat::Csv);
        let Command::Sweep { format, .. } = parse(&argv("sweep --protocols 2PC --mpls 1")).unwrap()
        else {
            panic!("expected Sweep");
        };
        assert_eq!(format, ReportFormat::Table);
        assert!(parse(&argv("run --csv")).is_err());
        assert!(parse(&argv("trace --csv")).is_err());
        // The alias and the explicit flag cannot disagree.
        assert!(parse(&argv("sweep --csv --format json")).is_err());
    }

    #[test]
    fn sweep_parses_format_json() {
        let Command::Sweep { format, .. } =
            parse(&argv("sweep --protocols 2PC --mpls 1,2 --format json")).unwrap()
        else {
            panic!("expected Sweep");
        };
        assert_eq!(format, ReportFormat::Json);
        let e = parse(&argv("sweep --format xml")).unwrap_err();
        assert!(e.0.contains("--format"), "{e}");
    }

    #[test]
    fn bad_input_errors() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --protocol 4PC")).is_err());
        assert!(parse(&argv("run --mpl")).is_err());
        assert!(parse(&argv("run --mpl notanumber")).is_err());
        assert!(parse(&argv("run --unknown-flag 3")).is_err());
        // validation runs at parse time: dist_degree > sites
        assert!(parse(&argv("run --sites 2 --dist-degree 3")).is_err());
        assert!(parse(&argv("sweep --protocols , --mpls 1")).is_err());
    }

    #[test]
    fn bench_parses_flags_and_defaults() {
        assert_eq!(
            parse(&argv("bench")).unwrap(),
            Command::Bench {
                quick: false,
                label: String::new(),
                seed: 42,
                out: None,
                baseline: None,
                tolerance: 0.25,
                series: false,
            }
        );
        assert_eq!(
            parse(&argv(
                "bench --quick --label before --seed 7 --out BENCH_6.json \
                 --baseline BENCH_6.json --tolerance 0.5 --series"
            ))
            .unwrap(),
            Command::Bench {
                quick: true,
                label: "before".into(),
                seed: 7,
                out: Some("BENCH_6.json".into()),
                baseline: Some("BENCH_6.json".into()),
                tolerance: 0.5,
                series: true,
            }
        );
        assert!(parse(&argv("bench --tolerance 1.5")).is_err());
        assert!(parse(&argv("bench --label")).is_err());
        assert!(parse(&argv("bench --mpl 4")).is_err());
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        for word in [
            "run",
            "series",
            "trace",
            "fold",
            "sweep",
            "experiment",
            "bench",
            "tables",
            "help",
        ] {
            assert!(USAGE.contains(word), "usage missing {word}");
        }
    }

    #[test]
    fn usage_lists_every_protocol_from_the_spec_table() {
        // The protocol vocabulary renders from ProtocolSpec::CLI_NAMES,
        // so the help screen names every table entry — including the
        // replicated family.
        for name in ProtocolSpec::valid_names() {
            assert!(USAGE.contains(name), "usage missing protocol {name}");
        }
        assert!(USAGE.contains("PAXOS"));
        assert!(USAGE.contains("REP2PC"));
        assert!(USAGE.contains("replication"));
    }

    #[test]
    fn replication_flag_and_paxos_protocol() {
        let Command::Run { cfg, protocol, .. } =
            parse(&argv("run --protocol PAXOS --replication 1")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(protocol, ProtocolSpec::PAXOS);
        assert_eq!(cfg.replication, 1);
        // Aliases parse through the same FromStr vocabulary.
        let Command::Run { protocol, .. } = parse(&argv("run --protocol paxos-commit")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(protocol, ProtocolSpec::PAXOS);
        let Command::Sweep { protocols, .. } =
            parse(&argv("sweep --protocols 2PC,PAXOS,REP-2PC --mpls 2")).unwrap()
        else {
            panic!("expected Sweep");
        };
        assert_eq!(
            protocols,
            vec![
                ProtocolSpec::TWO_PC,
                ProtocolSpec::PAXOS,
                ProtocolSpec::REP_2PC
            ]
        );
        // Unknown names list the full vocabulary.
        let e = parse(&argv("run --protocol 4PC")).unwrap_err();
        assert!(e.0.contains("PAXOS"), "{e}");
        assert!(e.0.contains("REP2PC"), "{e}");
    }

    #[test]
    fn usage_lists_every_fault_key_from_the_config_table() {
        // The help text renders FailureConfig::CLI_KEYS verbatim, so
        // the parser vocabulary and the documentation cannot drift.
        for (key, desc) in FailureConfig::CLI_KEYS {
            assert!(USAGE.contains(key), "usage missing fault key {key}");
            assert!(USAGE.contains(desc), "usage missing fault desc {desc}");
        }
    }

    #[test]
    fn run_parses_format_and_trace_out() {
        let Command::Run {
            format, trace_out, ..
        } = parse(&argv("run --format json --trace-out /tmp/r.json")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(format, ReportFormat::Json);
        assert_eq!(trace_out.as_deref(), Some("/tmp/r.json"));
        let Command::Run { format, .. } = parse(&argv("run --format csv")).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(format, ReportFormat::Csv);
        // Bad formats are rejected with the flag named.
        let e = parse(&argv("run --format xml")).unwrap_err();
        assert!(e.0.contains("--format"), "{e}");
        // --trace-out is run-only; --format is run/sweep/series-only.
        assert!(parse(&argv("sweep --trace-out x.json")).is_err());
        assert!(parse(&argv("trace --trace-out x.json")).is_err());
        assert!(parse(&argv("fold --format csv")).is_err());
        assert!(parse(&argv("trace --format json")).is_err());
    }

    #[test]
    fn series_parses_flags_and_defaults() {
        let Command::Series {
            cfg,
            protocol,
            seed,
            series_cfg,
            format,
            out,
        } = parse(&argv("series")).unwrap()
        else {
            panic!("expected Series");
        };
        assert_eq!(protocol, ProtocolSpec::TWO_PC);
        assert_eq!(seed, 42);
        assert_eq!(cfg.mpl, 4);
        assert_eq!(series_cfg, SeriesConfig::default());
        assert_eq!(format, SeriesFormat::Csv);
        assert_eq!(out, None);
        let Command::Series {
            series_cfg,
            format,
            out,
            ..
        } = parse(&argv(
            "series --protocol OPT --window 2.5 --per-site --format json --out /tmp/s.json \
             --faults mc=0.01",
        ))
        .unwrap()
        else {
            panic!("expected Series");
        };
        assert_eq!(series_cfg.window, SimDuration::from_millis(2_500));
        assert!(series_cfg.per_site);
        assert_eq!(format, SeriesFormat::Json);
        assert_eq!(out.as_deref(), Some("/tmp/s.json"));
    }

    #[test]
    fn series_rejects_bad_flag_combinations() {
        // A table has no series rendering.
        let e = parse(&argv("series --format table")).unwrap_err();
        assert!(e.0.contains("csv|json"), "{e}");
        // Window must be positive and finite.
        assert!(parse(&argv("series --window 0")).is_err());
        assert!(parse(&argv("series --window -3")).is_err());
        assert!(parse(&argv("series --window inf")).is_err());
        // Series takes none of the other subcommands' flags.
        assert!(parse(&argv("series --txns 5")).is_err());
        assert!(parse(&argv("series --trace-out x.json")).is_err());
        assert!(parse(&argv("series --series-out x.csv")).is_err());
        assert!(parse(&argv("series --reps 2")).is_err());
        assert!(parse(&argv("series --jobs 2")).is_err());
        assert!(parse(&argv("series --csv")).is_err());
    }

    #[test]
    fn series_out_applies_to_run_and_sweep() {
        let Command::Run {
            series_out,
            series_cfg,
            ..
        } = parse(&argv("run --series-out /tmp/s.csv --window 1 --per-site")).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(series_out.as_deref(), Some("/tmp/s.csv"));
        assert_eq!(series_cfg.window, SimDuration::from_millis(1_000));
        assert!(series_cfg.per_site);
        let Command::Sweep {
            series_out,
            series_cfg,
            ..
        } = parse(&argv(
            "sweep --protocols 2PC --mpls 1,2 --series-out /tmp/s.json",
        ))
        .unwrap()
        else {
            panic!("expected Sweep");
        };
        assert_eq!(series_out.as_deref(), Some("/tmp/s.json"));
        assert_eq!(series_cfg, SeriesConfig::default());
        // One observed run cannot feed both streamers.
        assert!(parse(&argv("run --trace-out a.json --series-out b.csv")).is_err());
        // --window/--per-site are meaningless without a series.
        assert!(parse(&argv("run --window 2")).is_err());
        assert!(parse(&argv("run --per-site")).is_err());
        assert!(parse(&argv("sweep --protocols 2PC --mpls 1 --per-site")).is_err());
        assert!(parse(&argv("trace --series-out x.csv")).is_err());
        assert!(parse(&argv("fold --series-out x.csv")).is_err());
    }

    #[test]
    fn series_format_follows_output_extension() {
        assert_eq!(series_format_for("s.json"), SeriesFormat::Json);
        assert_eq!(series_format_for("s.csv"), SeriesFormat::Csv);
        assert_eq!(series_format_for("windows"), SeriesFormat::Csv);
    }

    #[test]
    fn fold_parses_txns_and_out() {
        let Command::Fold {
            cfg,
            protocol,
            seed,
            txns,
            out,
        } = parse(&argv(
            "fold --protocol 3PC --seed 5 --txns 100 --out /tmp/f.folded",
        ))
        .unwrap()
        else {
            panic!("expected Fold");
        };
        assert_eq!(protocol, ProtocolSpec::THREE_PC);
        assert_eq!(seed, 5);
        assert_eq!(txns, 100);
        assert_eq!(out.as_deref(), Some("/tmp/f.folded"));
        // Fold uses run-length defaults (it aggregates, so a full run
        // is the point) and folds every transaction by default.
        assert_eq!(cfg.run.warmup_transactions, 500);
        assert_eq!(cfg.run.measured_transactions, 5_000);
        let Command::Fold { txns, out, .. } = parse(&argv("fold")).unwrap() else {
            panic!("expected Fold");
        };
        assert_eq!(txns, u64::MAX);
        assert_eq!(out, None);
        assert!(parse(&argv("fold --txns 0")).is_err());
        assert!(parse(&argv("fold --reps 2")).is_err());
        assert!(parse(&argv("fold --csv")).is_err());
    }

    #[test]
    fn trace_parses_txns_and_out() {
        let cmd = parse(&argv(
            "trace --protocol 3PC --txns 5 --out /tmp/t.json --seed 2",
        ))
        .unwrap();
        let Command::Trace {
            cfg,
            protocol,
            seed,
            txns,
            out,
        } = cmd
        else {
            panic!("expected Trace")
        };
        assert_eq!(protocol, ProtocolSpec::THREE_PC);
        assert_eq!(seed, 2);
        assert_eq!(txns, 5);
        assert_eq!(out.as_deref(), Some("/tmp/t.json"));
        // trace defaults to a short run; flags still override
        assert_eq!(cfg.run.warmup_transactions, 50);
        assert_eq!(cfg.run.measured_transactions, 200);
        let Command::Trace { cfg, txns, out, .. } = parse(&argv("trace --measured 80")).unwrap()
        else {
            panic!("expected Trace")
        };
        assert_eq!(cfg.run.measured_transactions, 80);
        assert_eq!(txns, 3);
        assert_eq!(out, None);
        // --txns/--out are trace-only; trace takes no --reps/--jobs
        assert!(parse(&argv("run --txns 5")).is_err());
        assert!(parse(&argv("run --out x.json")).is_err());
        assert!(parse(&argv("sweep --out x.json")).is_err());
        assert!(parse(&argv("trace --txns 0")).is_err());
        assert!(parse(&argv("trace --reps 2")).is_err());
    }
}
