//! The canonical engine benchmark: a fixed seed/protocol grid whose
//! events-per-second trajectory is committed to the repository
//! (`BENCH_*.json`) so every PR's perf delta is a recorded artifact.
//!
//! The grid is deliberately small and fixed — {2PC, PC, OPT, 3PC} ×
//! MPL {4, 8} at the paper baseline, seed 42 — because the point is
//! not to explore the parameter space (the experiment presets do that)
//! but to measure the *simulator* itself: simulated events per
//! core-second of wall-clock. Entries append to a trajectory file;
//! the committed baseline is what CI's `bench --quick` smoke step
//! compares against.
//!
//! Everything here is std-only: the JSON value type, parser and
//! renderer below exist because the repository takes no external
//! dependencies, and the trajectory file must be both written and
//! re-validated (schema + regression gate) without serde.

use commitproto::ProtocolSpec;
use distdb::config::SystemConfig;
use distdb::engine::{EngineProfile, SeriesConfig, Simulation};
use std::time::Instant;

/// Protocols on the canonical grid, in run order.
pub const GRID_PROTOCOLS: [ProtocolSpec; 4] = [
    ProtocolSpec::TWO_PC,
    ProtocolSpec::PC,
    ProtocolSpec::OPT_2PC,
    ProtocolSpec::THREE_PC,
];

/// MPLs on the canonical grid: the paper's knee (4) and a heavily
/// contended point (8).
pub const GRID_MPLS: [u32; 2] = [4, 8];

/// Seed for every cell (each cell is one deterministic run).
pub const GRID_SEED: u64 = 42;

/// Sites in the scale cell (see [`scale_config`]).
pub const SCALE_SITES: usize = 64;

/// Schema tag written into (and required of) every trajectory file.
pub const SCHEMA: &str = "distcommit-bench/v1";

/// Minimum allowed `series-on / series-off` events-per-second ratio in
/// [`series_overhead`]: the series sink's off-path cost must stay
/// within 3%.
pub const SERIES_OVERHEAD_FLOOR: f64 = 0.97;

/// Harness options, CLI-shaped.
#[derive(Debug, Clone)]
pub struct Options {
    /// Short grid (CI smoke) instead of the full canonical grid.
    pub quick: bool,
    /// Free-form label recorded with the entry (e.g. "before: hashmap
    /// engine").
    pub label: String,
    /// Seed override (default [`GRID_SEED`]).
    pub seed: u64,
    /// Measure the series sink's overhead: run the grid twice (sink
    /// off, then sink on) and gate the events/sec ratio at
    /// [`SERIES_OVERHEAD_FLOOR`].
    pub series: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            label: String::new(),
            seed: GRID_SEED,
            series: false,
        }
    }
}

/// One measured grid cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub protocol: String,
    pub mpl: u32,
    /// Simulation events dispatched during the run.
    pub events: u64,
    /// Transactions committed in the measurement window.
    pub committed: u64,
    /// Wall-clock seconds for the run (single-threaded, so wall time
    /// is core time).
    pub wall_s: f64,
}

impl Cell {
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
    pub fn txns_per_sec(&self) -> f64 {
        self.committed as f64 / self.wall_s
    }
}

/// One trajectory entry: a full grid pass.
#[derive(Debug, Clone)]
pub struct Entry {
    pub label: String,
    pub mode: String, // "full" | "quick"
    pub seed: u64,
    pub warmup: u64,
    pub measured: u64,
    pub cells: Vec<Cell>,
    pub peak_rss_kb: Option<u64>,
    /// Engine self-profile from one extra cell (2PC at MPL 8 with a
    /// series recorder installed) run after the grid. Not a trajectory
    /// cell: the profiled run pays for its own `Instant` reads, so its
    /// wall time is not comparable to the grid's.
    pub profile: Option<EngineProfile>,
}

impl Entry {
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }
    pub fn total_committed(&self) -> u64 {
        self.cells.iter().map(|c| c.committed).sum()
    }
    pub fn total_wall_s(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_s).sum()
    }
    /// Aggregate events per core-second: the headline number the
    /// regression gate compares.
    pub fn events_per_sec(&self) -> f64 {
        self.total_events() as f64 / self.total_wall_s()
    }
    pub fn txns_per_sec(&self) -> f64 {
        self.total_committed() as f64 / self.total_wall_s()
    }
}

/// Run-length of the grid for a mode: (warmup, measured) transactions.
pub fn run_length(quick: bool) -> (u64, u64) {
    if quick {
        (100, 2_000)
    } else {
        (500, 20_000)
    }
}

/// Peak resident set size of this process in kB, from Linux procfs
/// (`VmHWM`). `None` on other platforms — the field is recorded as
/// JSON `null` there.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

/// Configuration for the scale cell: [`SCALE_SITES`] sites at the
/// paper's 1000 pages/site, Zipf(0.9) page access and a 4-region WAN
/// topology. The canonical grid (8 flat-latency sites, uniform
/// access) never executes the alias sampler or the wire-latency
/// delivery path; this cell keeps both on the recorded trajectory.
pub fn scale_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline().with_zipf(0.9).with_topology(
        "regions=4,lan-ms=1,wan-ms=40,jitter=0.1"
            .parse()
            .expect("literal topology"),
    );
    cfg.num_sites = SCALE_SITES;
    cfg.db_size = 1_000 * SCALE_SITES as u64;
    cfg
}

/// Configuration for the replicated cell: the paper baseline with
/// every shard a 2F+1 acceptor group at F = 1. The canonical grid
/// never executes the quorum choreography — acceptor fan-out, bundle
/// tallying, failover timers — so this cell keeps the replicated hot
/// path on the recorded trajectory.
pub fn paxos_config() -> SystemConfig {
    SystemConfig::paper_baseline().with_replication(1)
}

/// Run and time one cell; `name` is the protocol label recorded in
/// the trajectory.
fn measure_cell(
    cfg: &SystemConfig,
    spec: ProtocolSpec,
    name: &str,
    seed: u64,
    with_series: bool,
    series_cfg: &SeriesConfig,
) -> Result<Cell, String> {
    let start = Instant::now();
    let report = if with_series {
        Simulation::run_auto_with_series(cfg, spec, seed, series_cfg).map(|(r, _)| r)
    } else {
        Simulation::run_auto(cfg, spec, seed)
    }
    .map_err(|e| format!("{name}: {e}"))?;
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let cell = Cell {
        protocol: name.to_string(),
        mpl: cfg.mpl,
        events: report.events,
        committed: report.committed,
        wall_s: round6(wall_s),
    };
    eprintln!(
        "[bench] {:<5} mpl {:>2}: {:>9} events in {:>7.3}s  ({:>10.0} events/s){}",
        cell.protocol,
        cell.mpl,
        cell.events,
        cell.wall_s,
        cell.events_per_sec(),
        if with_series { "  [series]" } else { "" }
    );
    Ok(cell)
}

/// One grid pass. With `with_series` every cell runs under
/// [`Simulation::run_with_series`] (buffered, discarded), so the
/// difference to a plain pass is exactly the sink's on-path cost.
fn grid_pass(opts: &Options, label: String, with_series: bool) -> Result<Entry, String> {
    let (warmup, measured) = run_length(opts.quick);
    let series_cfg = SeriesConfig::default();
    let mut cells = Vec::new();
    for spec in GRID_PROTOCOLS {
        for &mpl in &GRID_MPLS {
            let cfg = SystemConfig::paper_baseline()
                .with_mpl(mpl)
                .with_run_length(warmup, measured);
            cells.push(measure_cell(
                &cfg,
                spec,
                spec.name(),
                opts.seed,
                with_series,
                &series_cfg,
            )?);
        }
    }
    // The scale cell rides after the grid: 2PC over [`scale_config`],
    // recorded under the protocol name "scale" so trajectory readers
    // can tell it from the canonical 2PC cells.
    let scale = scale_config().with_run_length(warmup, measured);
    cells.push(measure_cell(
        &scale,
        ProtocolSpec::TWO_PC,
        "scale",
        opts.seed,
        with_series,
        &series_cfg,
    )?);
    // The sharded cell: the same scale configuration on the parallel
    // engine at 4 shards (one worker thread per region block),
    // recorded under "scale-par". Compared against "scale-par" at
    // --shards 1 this measures the window/barrier machinery's real
    // speedup; on a single-core machine it measures its overhead.
    let scale_par = scale_config()
        .with_run_length(warmup, measured)
        .with_shards(4);
    cells.push(measure_cell(
        &scale_par,
        ProtocolSpec::TWO_PC,
        "scale-par",
        opts.seed,
        with_series,
        &series_cfg,
    )?);
    // The replicated cell: Paxos Commit at F = 1 over [`paxos_config`],
    // recorded under "paxos" — the quorum interpreter path measured at
    // the same MPL as the grid's knee.
    let paxos = paxos_config().with_mpl(4).with_run_length(warmup, measured);
    cells.push(measure_cell(
        &paxos,
        ProtocolSpec::PAXOS,
        "paxos",
        opts.seed,
        with_series,
        &series_cfg,
    )?);
    Ok(Entry {
        label,
        mode: if opts.quick { "quick" } else { "full" }.to_string(),
        seed: opts.seed,
        warmup,
        measured,
        cells,
        peak_rss_kb: peak_rss_kb(),
        profile: None,
    })
}

/// The engine self-profile cell: 2PC at MPL 8 with a series recorder
/// installed, so the four hot-path sections — calendar, dispatch, lock
/// scan, series sink — all show up with real weights.
pub fn profile_cell(opts: &Options) -> Result<EngineProfile, String> {
    let (warmup, measured) = run_length(opts.quick);
    let cfg = SystemConfig::paper_baseline()
        .with_mpl(8)
        .with_run_length(warmup, measured);
    let series_cfg = SeriesConfig::default();
    let (_, profile) =
        Simulation::run_auto_profiled(&cfg, ProtocolSpec::TWO_PC, opts.seed, Some(&series_cfg))
            .map_err(|e| format!("profile cell: {e}"))?;
    Ok(profile)
}

/// Run the canonical grid, printing one progress line per cell to
/// stderr. Each cell is a fresh deterministic [`Simulation`] timed
/// with a monotonic clock. A self-profile cell (see [`profile_cell`])
/// runs after the grid and rides on the entry.
pub fn run_grid(opts: &Options) -> Result<Entry, String> {
    let mut entry = grid_pass(opts, opts.label.clone(), false)?;
    entry.profile = Some(profile_cell(opts)?);
    Ok(entry)
}

/// The series sink's off-path cost, measured: one grid pass without a
/// recorder, one with, same seeds and run lengths.
#[derive(Debug, Clone)]
pub struct SeriesOverhead {
    /// The plain pass (comparable to ordinary trajectory entries).
    pub off: Entry,
    /// The pass with a buffered series recorder in every cell.
    pub on: Entry,
}

impl SeriesOverhead {
    /// `on / off` aggregate events-per-second ratio; 1.0 means the
    /// sink is free, [`SERIES_OVERHEAD_FLOOR`] is the gate.
    pub fn ratio(&self) -> f64 {
        self.on.events_per_sec() / self.off.events_per_sec()
    }
}

/// Run the grid twice — series sink off, then on — and self-profile
/// the on pass. The returned entries carry ` [series off]` / ` [series
/// on]` label suffixes so a trajectory file records the pairing.
pub fn series_overhead(opts: &Options) -> Result<SeriesOverhead, String> {
    let suffix = |s: &str| {
        if opts.label.is_empty() {
            s.trim_start().to_string()
        } else {
            format!("{}{s}", opts.label)
        }
    };
    let off = grid_pass(opts, suffix(" [series off]"), false)?;
    let mut on = grid_pass(opts, suffix(" [series on]"), true)?;
    on.profile = Some(profile_cell(opts)?);
    Ok(SeriesOverhead { off, on })
}

/// Render a human summary table for one entry.
pub fn render_entry(e: &Entry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "canonical bench ({} grid, seed {}, {}+{} txns/cell):",
        e.mode, e.seed, e.warmup, e.measured
    );
    let _ = writeln!(
        out,
        "{:<6} {:>4} {:>10} {:>9} {:>9} {:>12} {:>10}",
        "proto", "mpl", "events", "commits", "wall_s", "events/s", "txns/s"
    );
    for c in &e.cells {
        let _ = writeln!(
            out,
            "{:<6} {:>4} {:>10} {:>9} {:>9.3} {:>12.0} {:>10.0}",
            c.protocol,
            c.mpl,
            c.events,
            c.committed,
            c.wall_s,
            c.events_per_sec(),
            c.txns_per_sec()
        );
    }
    let _ = writeln!(
        out,
        "total: {} events, {} commits in {:.3}s — {:.0} events/s, {:.0} txns/core-s{}",
        e.total_events(),
        e.total_committed(),
        e.total_wall_s(),
        e.events_per_sec(),
        e.txns_per_sec(),
        match e.peak_rss_kb {
            Some(kb) => format!(", peak RSS {kb} kB"),
            None => String::new(),
        }
    );
    if let Some(p) = &e.profile {
        let total = p.total_ns().max(1) as f64;
        let pct = |ns: u64| 100.0 * ns as f64 / total;
        let _ = writeln!(
            out,
            "self-profile (2PC mpl 8, series sink on): {} events in {:.3}s — calendar {:.1}%, \
             dispatch {:.1}% (locks {:.1}%), series sink {:.1}%{}",
            p.events,
            total / 1e9,
            pct(p.calendar_ns),
            pct(p.dispatch_ns),
            pct(p.locks_ns),
            pct(p.series_ns),
            if p.mailbox_ns + p.barrier_ns > 0 {
                format!(
                    ", shard mailbox {:.1}%, barrier {:.1}%",
                    pct(p.mailbox_ns),
                    pct(p.barrier_ns)
                )
            } else {
                String::new()
            },
        );
    }
    out
}

/// Render the verdict line for a [`series_overhead`] measurement;
/// `Err` when the sink cost exceeds the 3% budget.
pub fn render_series_overhead(m: &SeriesOverhead) -> Result<String, String> {
    let ratio = m.ratio();
    let verdict = format!(
        "series sink: {:.0} events/s on vs {:.0} off — {ratio:.3}x (cost {:.1}%, budget {:.0}%)",
        m.on.events_per_sec(),
        m.off.events_per_sec(),
        100.0 * (1.0 - ratio),
        100.0 * (1.0 - SERIES_OVERHEAD_FLOOR),
    );
    if ratio < SERIES_OVERHEAD_FLOOR {
        Err(format!("{verdict} — over budget"))
    } else {
        Ok(verdict)
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON value / parser / renderer (std-only).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object member order is preserved (`Vec`, not a
/// map) so re-rendering a trajectory file is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Supports the full value grammar the harness
/// writes (and standard escapes); errors carry a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape \\{} ", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 9e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn is_scalar(v: &Json) -> bool {
    !matches!(v, Json::Arr(_) | Json::Obj(_))
}

/// Render a JSON value. Objects whose members are all scalars render
/// on one line (grid cells stay one-line-per-cell); everything else is
/// block-indented two spaces.
pub fn render_json(v: &Json) -> String {
    let mut out = String::new();
    render_into(v, 0, &mut out);
    out.push('\n');
    out
}

fn render_into(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => out.push_str(&fmt_num(*x)),
        Json::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                render_into(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            if members.iter().all(|(_, v)| is_scalar(v)) {
                out.push_str("{ ");
                for (i, (k, val)) in members.iter().enumerate() {
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    render_into(val, indent, out);
                    if i + 1 < members.len() {
                        out.push_str(", ");
                    }
                }
                out.push_str(" }");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                out.push_str(&pad_in);
                out.push('"');
                out.push_str(&escape(k));
                out.push_str("\": ");
                render_into(val, indent + 1, out);
                if i + 1 < members.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Trajectory file: schema, append, regression gate.
// ---------------------------------------------------------------------------

impl Entry {
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("protocol".into(), Json::Str(c.protocol.clone())),
                    ("mpl".into(), Json::Num(c.mpl as f64)),
                    ("events".into(), Json::Num(c.events as f64)),
                    ("committed".into(), Json::Num(c.committed as f64)),
                    ("wall_s".into(), Json::Num(c.wall_s)),
                    (
                        "events_per_sec".into(),
                        Json::Num(round6(c.events_per_sec())),
                    ),
                    ("txns_per_sec".into(), Json::Num(round6(c.txns_per_sec()))),
                ])
            })
            .collect();
        let aggregate = Json::Obj(vec![
            ("events".into(), Json::Num(self.total_events() as f64)),
            ("committed".into(), Json::Num(self.total_committed() as f64)),
            ("wall_s".into(), Json::Num(round6(self.total_wall_s()))),
            (
                "events_per_sec".into(),
                Json::Num(round6(self.events_per_sec())),
            ),
            (
                "txns_per_sec".into(),
                Json::Num(round6(self.txns_per_sec())),
            ),
            (
                "peak_rss_kb".into(),
                match self.peak_rss_kb {
                    Some(kb) => Json::Num(kb as f64),
                    None => Json::Null,
                },
            ),
        ]);
        let mut members = vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("mode".into(), Json::Str(self.mode.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("warmup".into(), Json::Num(self.warmup as f64)),
            ("measured".into(), Json::Num(self.measured as f64)),
            ("cells".into(), Json::Arr(cells)),
            ("aggregate".into(), aggregate),
        ];
        if let Some(p) = &self.profile {
            // Extra member: the schema validator looks up only known
            // keys, so older readers skip it.
            members.push((
                "profile".into(),
                Json::Obj(vec![
                    ("events".into(), Json::Num(p.events as f64)),
                    ("calendar_ns".into(), Json::Num(p.calendar_ns as f64)),
                    ("dispatch_ns".into(), Json::Num(p.dispatch_ns as f64)),
                    ("locks_ns".into(), Json::Num(p.locks_ns as f64)),
                    ("series_ns".into(), Json::Num(p.series_ns as f64)),
                    ("mailbox_ns".into(), Json::Num(p.mailbox_ns as f64)),
                    ("barrier_ns".into(), Json::Num(p.barrier_ns as f64)),
                    ("total_ns".into(), Json::Num(p.total_ns() as f64)),
                ]),
            ));
        }
        Json::Obj(members)
    }
}

/// An empty trajectory document.
pub fn empty_trajectory() -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("entries".into(), Json::Arr(Vec::new())),
    ])
}

/// Validate a trajectory document against the `distcommit-bench/v1`
/// schema. Returns a message naming the first violation.
pub fn validate_trajectory(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\" string")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing \"entries\" array")?;
    for (i, e) in entries.iter().enumerate() {
        let ctx = |field: &str| format!("entries[{i}]: missing or invalid {field:?}");
        e.get("label").and_then(Json::as_str).ok_or(ctx("label"))?;
        let mode = e.get("mode").and_then(Json::as_str).ok_or(ctx("mode"))?;
        if mode != "full" && mode != "quick" {
            return Err(format!("entries[{i}]: mode {mode:?} not full|quick"));
        }
        e.get("seed").and_then(Json::as_f64).ok_or(ctx("seed"))?;
        let cells = e.get("cells").and_then(Json::as_arr).ok_or(ctx("cells"))?;
        if cells.is_empty() {
            return Err(format!("entries[{i}]: empty cells"));
        }
        for (j, c) in cells.iter().enumerate() {
            let cctx = |field: &str| format!("entries[{i}].cells[{j}]: bad {field:?}");
            c.get("protocol")
                .and_then(Json::as_str)
                .ok_or(cctx("protocol"))?;
            for field in ["mpl", "events", "committed", "wall_s", "events_per_sec"] {
                let x = c.get(field).and_then(Json::as_f64).ok_or(cctx(field))?;
                // NaN fails this check too: the guard must reject it.
                if x.is_nan() || x <= 0.0 {
                    return Err(format!(
                        "entries[{i}].cells[{j}]: {field} = {x} not positive"
                    ));
                }
            }
        }
        let agg = e
            .get("aggregate")
            .and_then(|a| match a {
                Json::Obj(_) => Some(a),
                _ => None,
            })
            .ok_or(ctx("aggregate"))?;
        for field in ["wall_s", "events_per_sec", "txns_per_sec"] {
            let x = agg.get(field).and_then(Json::as_f64).ok_or(ctx(field))?;
            if x.is_nan() || x <= 0.0 {
                return Err(format!(
                    "entries[{i}].aggregate: {field} = {x} not positive"
                ));
            }
        }
    }
    Ok(())
}

/// Load and validate a trajectory file.
pub fn load_trajectory(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    validate_trajectory(&doc).map_err(|e| format!("{path}: {e}"))?;
    Ok(doc)
}

/// Append `entry` to the trajectory at `path` (created if missing),
/// re-validating before and after.
pub fn append_entry(path: &str, entry: &Entry) -> Result<(), String> {
    let mut doc = if std::path::Path::new(path).exists() {
        load_trajectory(path)?
    } else {
        empty_trajectory()
    };
    let Json::Obj(members) = &mut doc else {
        unreachable!("validated object")
    };
    let entries = members
        .iter_mut()
        .find(|(k, _)| k == "entries")
        .map(|(_, v)| v)
        .ok_or("missing entries")?;
    let Json::Arr(items) = entries else {
        return Err("entries not an array".into());
    };
    items.push(entry.to_json());
    validate_trajectory(&doc)?;
    std::fs::write(path, render_json(&doc)).map_err(|e| format!("cannot write {path}: {e}"))
}

/// The regression gate: compare `entry` against the most recent
/// baseline entry (preferring the same mode) in `doc`. Returns a
/// human-readable verdict, or an `Err` describing the regression when
/// events/sec dropped by more than `tolerance` (a fraction, e.g.
/// 0.25).
pub fn compare_to_baseline(entry: &Entry, doc: &Json, tolerance: f64) -> Result<String, String> {
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline has no entries")?;
    let baseline = entries
        .iter()
        .rev()
        .find(|e| e.get("mode").and_then(Json::as_str) == Some(entry.mode.as_str()))
        .or_else(|| entries.last())
        .ok_or("baseline trajectory is empty")?;
    let base_eps = baseline
        .get("aggregate")
        .and_then(|a| a.get("events_per_sec"))
        .and_then(Json::as_f64)
        .ok_or("baseline entry lacks aggregate.events_per_sec")?;
    let base_label = baseline
        .get("label")
        .and_then(Json::as_str)
        .unwrap_or("<unlabelled>");
    let eps = entry.events_per_sec();
    let ratio = eps / base_eps;
    let verdict =
        format!("events/s {eps:.0} vs baseline {base_eps:.0} ({base_label:?}): {ratio:.2}x");
    if ratio < 1.0 - tolerance {
        Err(format!(
            "{verdict} — regressed more than {:.0}%",
            tolerance * 100.0
        ))
    } else {
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, mode: &str, events: u64, wall_s: f64) -> Entry {
        Entry {
            label: label.into(),
            mode: mode.into(),
            seed: 42,
            warmup: 1,
            measured: 10,
            cells: vec![Cell {
                protocol: "2PC".into(),
                mpl: 4,
                events,
                committed: 10,
                wall_s,
            }],
            peak_rss_kb: Some(1234),
            profile: None,
        }
    }

    #[test]
    fn json_round_trips() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x\"y\n".into())),
            (
                "c".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-3.0)]),
            ),
            ("d".into(), Json::Obj(vec![])),
        ]);
        let text = render_json(&doc);
        assert_eq!(parse_json(&text).unwrap(), doc);
        // And rendering is a fixed point: parse(render(x)) renders the
        // same bytes, so appending never churns earlier entries.
        assert_eq!(render_json(&parse_json(&text).unwrap()), text);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"abc"] {
            assert!(parse_json(bad).is_err(), "{bad:?} parsed");
        }
        // Whitespace and nesting are fine.
        parse_json(" { \"a\" : [ { \"b\" : null } ] } ").unwrap();
        // Escapes decode.
        assert_eq!(
            parse_json(r#""aA\n\"""#).unwrap(),
            Json::Str("aA\n\"".into())
        );
    }

    #[test]
    fn entry_aggregates_and_schema_validate() {
        let e = entry("seed", "full", 1_000_000, 2.0);
        assert_eq!(e.events_per_sec(), 500_000.0);
        let mut doc = empty_trajectory();
        validate_trajectory(&doc).unwrap();
        if let Json::Obj(members) = &mut doc {
            if let Some((_, Json::Arr(items))) = members.iter_mut().find(|(k, _)| k == "entries") {
                items.push(e.to_json());
            }
        }
        validate_trajectory(&doc).unwrap();
        // Round-trip through the renderer/parser preserves validity.
        let doc2 = parse_json(&render_json(&doc)).unwrap();
        validate_trajectory(&doc2).unwrap();
    }

    #[test]
    fn validation_names_the_violation() {
        let doc = parse_json(r#"{"schema":"wrong","entries":[]}"#).unwrap();
        let e = validate_trajectory(&doc).unwrap_err();
        assert!(e.contains("schema"), "{e}");
        let doc =
            parse_json(r#"{"schema":"distcommit-bench/v1","entries":[{"label":"x"}]}"#).unwrap();
        let e = validate_trajectory(&doc).unwrap_err();
        assert!(e.contains("mode"), "{e}");
        // A zero events/sec cell is invalid (wall-clock must be real).
        let mut good = empty_trajectory();
        let mut bad_entry = entry("x", "quick", 10, 1.0);
        bad_entry.cells[0].events = 0;
        if let Json::Obj(members) = &mut good {
            if let Some((_, Json::Arr(items))) = members.iter_mut().find(|(k, _)| k == "entries") {
                items.push(bad_entry.to_json());
            }
        }
        let e = validate_trajectory(&good).unwrap_err();
        assert!(e.contains("events"), "{e}");
    }

    #[test]
    fn regression_gate_prefers_same_mode_and_trips_at_tolerance() {
        let mut doc = empty_trajectory();
        if let Json::Obj(members) = &mut doc {
            if let Some((_, Json::Arr(items))) = members.iter_mut().find(|(k, _)| k == "entries") {
                items.push(entry("full base", "full", 4_000_000, 1.0).to_json());
                items.push(entry("quick base", "quick", 1_000_000, 1.0).to_json());
            }
        }
        // Same-mode comparison: quick vs quick base (1M events/s).
        let ok = compare_to_baseline(&entry("now", "quick", 900_000, 1.0), &doc, 0.25).unwrap();
        assert!(ok.contains("0.90x"), "{ok}");
        let err =
            compare_to_baseline(&entry("now", "quick", 700_000, 1.0), &doc, 0.25).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // A faster run always passes.
        compare_to_baseline(&entry("now", "quick", 5_000_000, 1.0), &doc, 0.25).unwrap();
        // Empty baseline is an error, not a silent pass.
        assert!(
            compare_to_baseline(&entry("n", "full", 1, 1.0), &empty_trajectory(), 0.25).is_err()
        );
    }

    #[test]
    fn append_creates_and_extends_files() {
        let dir = std::env::temp_dir().join(format!("bench-traj-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("t.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        append_entry(path, &entry("first", "full", 100, 1.0)).unwrap();
        append_entry(path, &entry("second", "quick", 200, 1.0)).unwrap();
        let doc = load_trajectory(path).unwrap();
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[1].get("label").and_then(Json::as_str),
            Some("second")
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn profile_rides_on_entry_json_without_breaking_the_schema() {
        let mut e = entry("profiled", "quick", 10_000, 1.0);
        e.profile = Some(EngineProfile {
            events: 9_999,
            calendar_ns: 100,
            dispatch_ns: 800,
            locks_ns: 50,
            series_ns: 25,
            mailbox_ns: 0,
            barrier_ns: 0,
        });
        let mut doc = empty_trajectory();
        if let Json::Obj(members) = &mut doc {
            if let Some((_, Json::Arr(items))) = members.iter_mut().find(|(k, _)| k == "entries") {
                items.push(e.to_json());
            }
        }
        // The validator only looks up known keys, so the extra member
        // passes — and survives a render/parse round trip.
        validate_trajectory(&doc).unwrap();
        let doc2 = parse_json(&render_json(&doc)).unwrap();
        validate_trajectory(&doc2).unwrap();
        let p = doc2.get("entries").and_then(Json::as_arr).unwrap()[0]
            .get("profile")
            .expect("profile member");
        assert_eq!(p.get("total_ns").and_then(Json::as_f64), Some(925.0));
        assert_eq!(p.get("series_ns").and_then(Json::as_f64), Some(25.0));
        // The human rendering shows the section shares.
        let rendered = render_entry(&e);
        assert!(rendered.contains("self-profile"), "{rendered}");
        assert!(rendered.contains("series sink"), "{rendered}");
    }

    #[test]
    fn series_overhead_gate_trips_past_three_percent() {
        let m = SeriesOverhead {
            off: entry("x [series off]", "quick", 1_000_000, 1.0),
            on: entry("x [series on]", "quick", 980_000, 1.0),
        };
        assert!((m.ratio() - 0.98).abs() < 1e-12);
        let ok = render_series_overhead(&m).unwrap();
        assert!(ok.contains("0.980x"), "{ok}");
        let over = SeriesOverhead {
            off: entry("x [series off]", "quick", 1_000_000, 1.0),
            on: entry("x [series on]", "quick", 950_000, 1.0),
        };
        let e = render_series_overhead(&over).unwrap_err();
        assert!(e.contains("over budget"), "{e}");
    }

    #[test]
    fn run_length_modes() {
        let (w, m) = run_length(true);
        let (wf, mf) = run_length(false);
        assert!(m < mf && w < wf);
    }
}
