//! # distbench — the benchmark harness
//!
//! One bench target per table/figure of the paper (run with
//! `cargo bench`); each prints the same rows/series the paper reports
//! and records a CSV next to the target directory for plotting.
//!
//! Scale: targets default to [`distdb::experiments::Scale::quick`]
//! (2 000 measured transactions per point); set `DISTCOMMIT_FULL=1`
//! for paper-length runs (50 000+ transactions per point, MPL 1..10).

pub mod canonical;

use distdb::experiments::Experiment;
use distdb::output::{render_ascii_chart, render_csv, render_peaks, render_table, Metric};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Print the standard harness banner for one bench target.
pub fn banner(target: &str, what: &str) {
    println!("==============================================================");
    println!("distcommit bench: {target} — {what}");
    println!("scale: {}", scale_name());
    println!("==============================================================");
}

/// Human name of the active scale.
pub fn scale_name() -> &'static str {
    match std::env::var("DISTCOMMIT_FULL").as_deref() {
        Ok("1") | Ok("true") => "FULL (paper-length, ≥50k txns per point)",
        _ => "quick (2k txns per point; set DISTCOMMIT_FULL=1 for paper-length)",
    }
}

/// Directory where CSVs land: the *workspace* `target/bench-results`
/// (bench targets run with the package directory as CWD, so a relative
/// path would scatter results under `crates/bench`).
pub fn results_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    let dir = base.join("bench-results");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Print an experiment's tables for the given metrics, its peak
/// summary, and persist CSVs.
pub fn report(exp: &Experiment, metrics: &[Metric]) {
    println!("\nconfiguration:\n{}", exp.config);
    for &m in metrics {
        println!("{}", render_table(exp, m));
        let fname = format!(
            "{}-{}.csv",
            exp.id,
            m.label()
                .split_whitespace()
                .next()
                .unwrap_or("metric")
                .to_lowercase()
        );
        let path = results_dir().join(fname);
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(render_csv(exp, m).as_bytes());
            println!("[csv] {}", path.display());
            println!();
        }
    }
    // The figure itself, as the paper would plot it.
    if let Some(&first) = metrics.first() {
        println!("{}", render_ascii_chart(exp, first, 64, 18));
    }
    println!("{}", render_peaks(exp));
}

/// Run a closure, timing it and printing the elapsed wall-clock.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!(
        "[{label}: {:.1}s wall-clock]",
        start.elapsed().as_secs_f64()
    );
    out
}

/// Minimal std-only micro-benchmark harness (replaces the former
/// criterion dev-dependency so `cargo bench` works offline): each
/// benchmark is warmed up, then timed over enough iterations to fill a
/// short measurement window, reporting mean time per iteration.
pub mod micro {
    use std::time::{Duration, Instant};

    /// Measurement window per benchmark (after warm-up).
    const WINDOW: Duration = Duration::from_millis(300);

    fn fmt_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns")
        } else if ns < 1_000_000 {
            format!("{:.2} µs", ns as f64 / 1_000.0)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1_000_000.0)
        } else {
            format!("{:.2} s", ns as f64 / 1_000_000_000.0)
        }
    }

    /// Time `f` repeatedly and print `name: <mean per iter> (<iters> iters)`.
    pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
        // Warm-up: one timed call sizes the batch.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let per_iter = start.elapsed() / iters as u32;
        println!("{name:<44} {:>12}  ({iters} iters)", fmt_duration(per_iter));
    }

    /// Like [`bench()`], but rebuilds fresh input state with `setup`
    /// outside the timed region before every iteration.
    pub fn bench_with_setup<S, T>(
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(f(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (WINDOW.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(f(input));
        }
        let per_iter = start.elapsed() / iters as u32;
        println!("{name:<44} {:>12}  ({iters} iters)", fmt_duration(per_iter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("bench-results"));
        assert!(d.exists());
    }

    #[test]
    fn scale_name_mentions_full_switch() {
        assert!(scale_name().contains("DISTCOMMIT_FULL") || scale_name().contains("FULL"));
    }

    #[test]
    fn timed_returns_value() {
        assert_eq!(timed("t", || 41 + 1), 42);
    }
}
