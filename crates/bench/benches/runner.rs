//! Scaling of the parallel experiment runner: the same quick fig1-style
//! grid at 1, 2, 4, ... workers, reporting wall-clock and speedup over
//! the serial run — and verifying on the way that every worker count
//! produced identical numbers (the runner's core guarantee).
//!
//! ```sh
//! cargo bench -p distbench --bench runner
//! DISTCOMMIT_JOBS=8 cargo bench -p distbench --bench runner   # add a point
//! ```

use distdb::experiments::{self, Scale};
use distdb::output::{render_csv, Metric};
use std::time::Instant;

fn grid_scale(jobs: usize) -> Scale {
    Scale {
        warmup: 100,
        measured: 1_200,
        mpls: vec![1, 2, 4, 6, 8],
        seed: 42,
        replications: 2,
        jobs: Some(jobs),
    }
}

fn main() {
    distbench::banner("runner", "parallel sweep scaling (quick fig1 grid)");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4];
    if cores > 4 {
        counts.push(cores);
    }
    counts.dedup();

    println!("grid: 7 protocols x 5 MPLs x 2 replications = 70 runs, {cores} cores available\n");
    println!("{:>6} {:>12} {:>10}", "jobs", "wall-clock", "speedup");

    let mut baseline_secs = None;
    let mut baseline_csv = None;
    for &jobs in &counts {
        let start = Instant::now();
        let exp = experiments::fig1(&grid_scale(jobs)).expect("valid config");
        let secs = start.elapsed().as_secs_f64();
        let csv = render_csv(&exp, Metric::Throughput);
        match (&baseline_secs, &baseline_csv) {
            (None, _) => {
                baseline_secs = Some(secs);
                baseline_csv = Some(csv);
                println!("{jobs:>6} {secs:>11.2}s {:>10}", "1.00x");
            }
            (Some(base), Some(expected)) => {
                assert_eq!(
                    &csv, expected,
                    "jobs={jobs} changed the numbers — determinism broken"
                );
                println!("{jobs:>6} {secs:>11.2}s {:>9.2}x", base / secs);
            }
            _ => unreachable!(),
        }
    }

    println!("\n(identical CSV output verified at every worker count)");
}
