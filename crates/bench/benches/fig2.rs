//! Bench target: **Experiment 2 / Figures 2a, 2b, 2c** — pure data
//! contention (infinite resources).

use distbench::{banner, report, timed};
use distdb::experiments::{fig2, Scale};
use distdb::output::Metric;

fn main() {
    banner("fig2", "Expt 2: Pure Data Contention (DC)");
    let exp = timed("fig2 sweep", || {
        fig2(&Scale::from_env()).expect("valid config")
    });
    report(
        &exp,
        &[Metric::Throughput, Metric::BlockRatio, Metric::BorrowRatio],
    );
    println!("paper shape: with resources infinite, protocol overheads dominate the");
    println!("response time, so the CENT/DPCC-to-2PC and 2PC-to-3PC gaps widen");
    println!("sharply; OPT's peak approaches DPCC's; borrowing grows ~linearly in MPL.");
}
