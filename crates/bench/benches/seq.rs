//! Bench target: **§5.8** — sequential transactions: cohorts execute
//! one after another instead of in parallel, stretching the execution
//! phase and shrinking the commit-to-execution ratio.

use distbench::{banner, report, timed};
use distdb::experiments::{seq, Scale};
use distdb::output::Metric;

fn main() {
    banner("seq", "§5.8: Sequential Transactions");
    let exp = timed("seq sweep", || {
        seq(&Scale::from_env()).expect("valid config")
    });
    report(&exp, &[Metric::Throughput, Metric::ResponseTime]);
    println!("paper shape: with sequential cohorts the execution phase lengthens while");
    println!("the commit phase stays fixed, so the protocols' relative differences —");
    println!("and OPT's advantage — shrink compared with the parallel experiments.");
}
