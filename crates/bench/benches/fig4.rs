//! Bench target: **Experiment 5 / Figures 4a and 4b** — non-blocking
//! OPT: can OPT-3PC buy the non-blocking guarantee of 3PC *and* match
//! the blocking protocols' throughput?

use distbench::{banner, report, timed};
use distdb::experiments::{fig4, Scale};
use distdb::output::Metric;

fn main() {
    banner(
        "fig4",
        "Expt 5: Non-Blocking OPT (2PC vs 3PC vs OPT vs OPT-3PC)",
    );
    let (rc, dc) = timed("fig4 sweeps", || {
        fig4(&Scale::from_env()).expect("valid config")
    });
    report(&rc, &[Metric::Throughput, Metric::BorrowRatio]);
    report(&dc, &[Metric::Throughput, Metric::BorrowRatio]);
    println!("paper shape: OPT-3PC ≈ 3PC at low MPL, then overtakes and reaches a peak");
    println!("comparable to 2PC under RC+DC and clearly above 2PC under pure DC — the");
    println!("\"win-win\": non-blocking recovery plus blocking-protocol performance.");
    println!("the borrow-ratio table shows why: the longer prepared state of 3PC");
    println!("makes lending strictly more valuable (§5.6).");
}
