//! Bench target: **Experiment 4 / Figures 3a and 3b** — higher degree
//! of distribution (DistDegree = 6, CohortSize = 3), RC+DC and DC, with
//! OPT-PC joining the lineup.

use distbench::{banner, report, timed};
use distdb::experiments::{fig3, Scale};
use distdb::output::Metric;

fn main() {
    banner("fig3", "Expt 4: Degree of Distribution = 6");
    let (rc, dc) = timed("fig3 sweeps", || {
        fig3(&Scale::from_env()).expect("valid config")
    });
    report(&rc, &[Metric::Throughput, Metric::MessagesPerCommit]);
    report(&dc, &[Metric::Throughput]);
    println!("paper shape: message load makes the system heavily CPU-bound; PC now");
    println!("clearly beats 2PC; OPT alone is only marginally better than 2PC (small");
    println!("commit-to-execution ratio) but OPT-PC gives the best overall performance");
    println!("under RC+DC; under pure DC, DPCC's peak is more than twice 2PC's.");
}
