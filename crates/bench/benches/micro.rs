//! Micro-benchmarks for the simulator's hot paths: the event calendar,
//! the lock manager (plain and lending), deadlock detection, and a
//! complete short simulation per protocol — the numbers that determine
//! how long the figure sweeps take.
//!
//! Uses the std-only harness in [`distbench::micro`]; run with
//! `cargo bench -p distbench --bench micro`.

use distbench::micro::{bench, bench_with_setup};
use distdb::config::SystemConfig;
use distdb::engine::Simulation;
use distdb::protocol::ProtocolSpec;
use distlocks::deadlock::find_cycle;
use distlocks::{LockManager, LockMode};
use simkernel::{Calendar, SimTime};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_calendar() {
    bench("calendar/push-pop 1k interleaved", || {
        let mut cal: Calendar<u32> = Calendar::new();
        // deterministic pseudo-random times
        let mut x = 0x9E3779B9u64;
        for i in 0..1_000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            cal.schedule_at(SimTime(cal.now().0 + (x >> 40)), i);
            if i % 3 == 0 {
                black_box(cal.next());
            }
        }
        while cal.next().is_some() {}
        black_box(cal.dispatched_count())
    });
}

fn bench_lock_manager() {
    bench("locks/request-release 1k no-conflict", || {
        let mut lm = LockManager::new(false);
        let owners: Vec<_> = (0..16u64).map(|s| lm.register_owner(s)).collect();
        for i in 0..1_000u64 {
            black_box(lm.request(owners[(i % 16) as usize], i, LockMode::Update));
        }
        for &owner in &owners {
            black_box(lm.release_all(owner));
        }
    });

    bench_with_setup(
        "locks/contended queue drain",
        || {
            let mut lm = LockManager::new(false);
            let holder = lm.register_owner(0);
            lm.request(holder, 42, LockMode::Update);
            for seq in 1..64u64 {
                let o = lm.register_owner(seq);
                lm.request(o, 42, LockMode::Read);
            }
            (lm, holder)
        },
        |(mut lm, holder)| black_box(lm.release_all(holder)),
    );

    bench_with_setup(
        "locks/lending grant via mark_prepared",
        || {
            let mut lm = LockManager::new(true);
            let lender = lm.register_owner(1);
            for page in 0..32u64 {
                lm.request(lender, page, LockMode::Update);
            }
            for (i, page) in (0..32u64).enumerate() {
                let o = lm.register_owner(100 + i as u64);
                lm.request(o, page, LockMode::Update);
            }
            (lm, lender)
        },
        |(mut lm, lender)| black_box(lm.mark_prepared(lender)),
    );
}

fn bench_deadlock() {
    // A 64-node wait-for graph with a long cycle through node 0.
    let mut graph: HashMap<u32, Vec<u32>> = HashMap::new();
    for n in 0..64u32 {
        graph.insert(n, vec![(n + 1) % 64, (n * 7 + 3) % 64]);
    }
    bench("deadlock/find_cycle 64-node graph", || {
        black_box(find_cycle(0u32, |n| {
            graph.get(&n).cloned().unwrap_or_default()
        }))
    });
}

fn bench_simulation() {
    for spec in [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::CENT,
    ] {
        bench(
            &format!("simulation/200-commit run/{}", spec.name()),
            || {
                let mut cfg = SystemConfig::paper_baseline();
                cfg.mpl = 4;
                cfg.run.warmup_transactions = 20;
                cfg.run.measured_transactions = 200;
                black_box(Simulation::run(&cfg, spec, 42).unwrap())
            },
        );
    }
}

fn main() {
    distbench::banner("micro", "hot-path micro-benchmarks");
    bench_calendar();
    bench_lock_manager();
    bench_deadlock();
    bench_simulation();
}
