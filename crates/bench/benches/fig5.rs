//! Bench target: **Experiment 6 / Figures 5a and 5b** — surprise
//! aborts: cohorts vote NO with probability 1%, 5% or 10% (≈ 3%, 15%,
//! 27% transaction aborts at DistDegree 3), for 2PC, PA, OPT and
//! OPT-PA; plus the §5.7 extension at DistDegree 6 where PA finally
//! clearly beats 2PC.

use distbench::{banner, report, timed};
use distdb::experiments::{expt6_high_distribution, fig5, Scale};
use distdb::output::Metric;

fn main() {
    banner("fig5", "Expt 6: Surprise Aborts");
    let scale = Scale::from_env();
    let (rc, dc) = timed("fig5 sweeps", || fig5(&scale).expect("valid config"));
    report(&rc, &[Metric::Throughput, Metric::AbortFraction]);
    report(&dc, &[Metric::Throughput, Metric::ForcedWritesPerCommit]);

    let ext = timed("expt6 extension", || {
        expt6_high_distribution(&scale).expect("valid config")
    });
    report(&ext, &[Metric::Throughput]);

    println!("paper shape: OPT's peak stays comparable to 2PC up to the 15% abort");
    println!("level and falls clearly behind at 27%; PA gains only marginally over");
    println!("2PC at DistDegree 3 (≈8.8 vs ≈7.7 forced writes per commit at 27%),");
    println!("but clearly wins in the CPU-bound DistDegree-6 extension; at high MPL");
    println!("higher abort probabilities can *cross over* lower ones because restart");
    println!("delays throttle data contention.");
}
