//! Bench target: **failure extension** — master crashes at the
//! decision point, quantifying §2.4's blocking argument (the paper
//! argues it qualitatively; its experiments are failure-free).
//!
//! Blocking protocols strand their prepared cohorts' locks for the
//! full recovery time; 3PC's cohorts detect the crash and terminate on
//! their own. The series sweep the crash probability at MPL 4.

use distbench::{banner, timed};
use distdb::experiments::{failures, Scale};

fn main() {
    banner(
        "failures",
        "Extension: master failures — blocking vs non-blocking",
    );
    let exp = timed("failure sweep", || {
        failures(&Scale::from_env()).expect("valid config")
    });
    println!(
        "\nconfiguration (plus: detection 300 ms, recovery 5 s):\n{}",
        exp.config
    );
    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>9}",
        "series", "txn/s", "resp (s)", "block", "crashes"
    );
    for s in &exp.series {
        let r = &s.points[0];
        println!(
            "{:<18} {:>12.2} {:>10.3} {:>10.3} {:>9}",
            s.label, r.throughput, r.mean_response_s, r.block_ratio, r.faults.master_crashes
        );
    }
    println!();
    println!("expected shape: failure-free, 2PC > 3PC (the paper's Expt 1); as the crash");
    println!("rate grows the blocking protocols collapse (every crash freezes ~12 update");
    println!("locks for 5 s and blocking cascades) while 3PC pays only the 300 ms detection");
    println!("plus a short termination round — the ordering flips, and OPT-3PC, already the");
    println!("paper's recommendation for high-contention systems, dominates everything.");
}
