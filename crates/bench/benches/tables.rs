//! Bench target: **Tables 2, 3 and 4** of the paper.
//!
//! Prints the baseline parameter table (Table 2, reconstructed), then
//! for each protocol the analytic overheads at DistDegree 3 (Table 3)
//! and 6 (Table 4) side by side with the counts *measured* by the
//! simulator in a conflict-free run — analysis and simulation must
//! agree.

use distbench::{banner, timed};
use distdb::config::SystemConfig;
use distdb::experiments::measured_overheads;
use distdb::protocol::ProtocolSpec;

fn print_table(dist_degree: u32) {
    println!(
        "\nTable {} — Protocol Overheads (DistDegree = {dist_degree}), committing transactions",
        if dist_degree == 3 { 3 } else { 4 }
    );
    println!(
        "{:<9} {:>9} {:>9} | {:>12} {:>9} | {:>10} {:>9}",
        "Protocol", "ExecMsgs", "(meas)", "ForcedWrites", "(meas)", "CommitMsgs", "(meas)"
    );
    let specs = [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::DPCC,
        ProtocolSpec::CENT,
    ];
    for spec in specs {
        let analytic = spec.committed_overheads(dist_degree);
        let measured = measured_overheads(dist_degree, spec, 0xBE7C).expect("valid config");
        assert_eq!(
            measured.total_aborts(),
            0,
            "validation run must be conflict-free"
        );
        println!(
            "{:<9} {:>9} {:>9.2} | {:>12} {:>9.2} | {:>10} {:>9.2}",
            spec.name(),
            analytic.exec_messages,
            measured.exec_messages_per_commit,
            analytic.forced_writes,
            measured.forced_writes_per_commit,
            analytic.commit_messages,
            measured.commit_messages_per_commit,
        );
    }
}

fn main() {
    banner(
        "tables",
        "Tables 2-4: baseline settings & protocol overheads",
    );
    println!("\nTable 2 — Baseline Parameter Settings (reconstructed, see DESIGN.md):");
    println!("{}", SystemConfig::paper_baseline());
    timed("tables", || {
        print_table(3);
        print_table(6);
    });
    println!("\nanalytic columns are pinned to the paper's tables by unit tests;");
    println!("measured columns come from live conflict-free simulation runs.");
}
