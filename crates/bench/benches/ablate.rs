//! Bench target: **ablations** of the model-fidelity decisions recorded
//! in DESIGN.md §2 and of the optional §3.2 optimizations:
//!
//! 1. `DBSize` sensitivity — the data-contention calibration knob;
//! 2. deferred-write charging on/off;
//! 3. restart-delay policy (adaptive vs fixed vs immediate);
//! 4. the Read-Only optimization on a read-heavy workload (the §6
//!    caveat about PA/PC on read-mixed workloads);
//! 5. group-commit batch size in a log-bound configuration.

use distbench::{banner, timed};
use distdb::config::{RestartPolicy, SystemConfig};
use distdb::engine::Simulation;
use distdb::protocol::ProtocolSpec;
use simkernel::SimDuration;

fn quick(cfg: &SystemConfig, spec: ProtocolSpec, seed: u64) -> distdb::metrics::SimReport {
    let mut cfg = cfg.clone();
    cfg.run.warmup_transactions = 300;
    cfg.run.measured_transactions = 3_000;
    Simulation::run(&cfg, spec, seed).expect("valid config")
}

fn db_size_sensitivity() {
    println!("\n-- ablation 1: DBSize (data-contention level), MPL 6, RC+DC --");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>12}",
        "pages/site", "2PC txn/s", "OPT txn/s", "2PC aborts%", "OPT borrow"
    );
    for per_site in [250u64, 500, 1_000, 2_000, 4_000] {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.db_size = per_site * cfg.num_sites as u64;
        cfg.mpl = 6;
        let two = quick(&cfg, ProtocolSpec::TWO_PC, 1);
        let opt = quick(&cfg, ProtocolSpec::OPT_2PC, 1);
        println!(
            "{:>10} {:>10.2} {:>10.2} {:>11.1}% {:>12.2}",
            per_site,
            two.throughput,
            opt.throughput,
            two.abort_fraction() * 100.0,
            opt.borrow_ratio,
        );
    }
    println!("expected: contention falls with database size; OPT's edge is widest in the middle");
    println!("(with no conflicts there is nothing to borrow; in deep thrash everything drowns).");
}

fn deferred_writes() {
    println!("\n-- ablation 2: charging post-commit page write-back to the data disks --");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10}",
        "writes", "2PC txn/s", "OPT txn/s", "2PC dd-util", "OPT dd-util"
    );
    for on in [false, true] {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.mpl = 4;
        cfg.model_deferred_writes = on;
        let two = quick(&cfg, ProtocolSpec::TWO_PC, 2);
        let opt = quick(&cfg, ProtocolSpec::OPT_2PC, 2);
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>10.2} {:>10.2}",
            if on { "charged" } else { "free" },
            two.throughput,
            opt.throughput,
            two.utilizations.data_disk,
            opt.utilizations.data_disk,
        );
    }
    println!("expected: charging the write-back costs throughput and pushes the system toward");
    println!("heavy I/O-bound operation, muting protocol differences (hence default off; §5.2");
    println!("calls the baseline I/O-bound 'but not heavily').");
}

fn restart_policy() {
    println!("\n-- ablation 3: restart-delay policy, MPL 8 (2PC, RC+DC) --");
    println!(
        "{:>14} {:>10} {:>10} {:>10}",
        "policy", "txn/s", "aborts%", "block"
    );
    let policies: [(&str, RestartPolicy); 3] = [
        ("adaptive", RestartPolicy::AdaptiveResponseTime),
        (
            "fixed 500ms",
            RestartPolicy::Fixed(SimDuration::from_millis(500)),
        ),
        ("immediate", RestartPolicy::Immediate),
    ];
    for (name, policy) in policies {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.mpl = 8;
        cfg.restart_policy = policy;
        let r = quick(&cfg, ProtocolSpec::TWO_PC, 3);
        println!(
            "{:>14} {:>10.2} {:>9.1}% {:>10.3}",
            name,
            r.throughput,
            r.abort_fraction() * 100.0,
            r.block_ratio
        );
    }
    println!("expected: immediate restarts re-enter the fray and abort again (more wasted");
    println!("work); the adaptive delay acts as a contention throttle — the crossover");
    println!("mechanism the paper leans on in §5.7.");
}

fn read_only_optimization() {
    println!("\n-- ablation 4: Read-Only optimization, UpdateProb = 0.2, MPL 4 --");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "RO-opt", "2PC", "PA", "PC", "OPT"
    );
    for on in [false, true] {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.update_prob = 0.2;
        cfg.mpl = 4;
        cfg.read_only_optimization = on;
        let t = |spec| quick(&cfg, spec, 4).throughput;
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            if on { "on" } else { "off" },
            t(ProtocolSpec::TWO_PC),
            t(ProtocolSpec::PA),
            t(ProtocolSpec::PC),
            t(ProtocolSpec::OPT_2PC),
        );
    }
    println!("expected: with 80% reads the optimization trims prepare records and second-phase");
    println!("messages for read-only cohorts — the §6 caveat that read-mixed workloads change");
    println!("the PA/PC story.");
}

fn group_commit() {
    println!("\n-- ablation 5: group-commit batch size, log-bound config (3PC) --");
    println!(
        "{:>10} {:>10} {:>14} {:>10}",
        "batch", "txn/s", "writes/service", "log util"
    );
    let mut base = SystemConfig::paper_baseline().fast_network();
    base.db_size = 80_000;
    base.num_data_disks = 4;
    base.mpl = 10;
    for batch in [None, Some(2u32), Some(4), Some(8), Some(16)] {
        let mut cfg = base.clone();
        cfg.group_commit_batch = batch;
        let r = quick(&cfg, ProtocolSpec::THREE_PC, 5);
        println!(
            "{:>10} {:>10.2} {:>14.2} {:>10.2}",
            batch.map_or("off".to_string(), |b| b.to_string()),
            r.throughput,
            r.mean_log_batch,
            r.utilizations.log_disk,
        );
    }
    println!("expected: batching converts queued forced writes into shared services; gains");
    println!("saturate once the queue rarely exceeds the batch cap.");
}

fn main() {
    banner(
        "ablate",
        "model-fidelity & optimization ablations (DESIGN.md §2, paper §3.2)",
    );
    timed("ablations", || {
        db_size_sensitivity();
        deferred_writes();
        restart_policy();
        read_only_optimization();
        group_commit();
    });
}
