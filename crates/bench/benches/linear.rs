//! Bench target: **linear 2PC extension** (§2.5, and the §3.2 OPT
//! synergy note) — chained commit processing versus the parallel
//! protocols, with and without OPT, at DistDegree 3 and 6.

use distbench::{banner, report, timed};
use distdb::config::SystemConfig;
use distdb::experiments::{sweep, Experiment, Scale};
use distdb::output::Metric;
use distdb::protocol::ProtocolSpec;

fn run_one(title: &str, id: &str, cfg: SystemConfig, scale: &Scale) -> Experiment {
    let protocols = [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::LINEAR_2PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_LINEAR_2PC,
    ];
    let specs: Vec<(String, ProtocolSpec, SystemConfig)> = protocols
        .iter()
        .map(|&p| (p.name().to_string(), p, cfg.clone()))
        .collect();
    let series = sweep(&cfg, &specs, scale).expect("valid config");
    Experiment {
        id: id.into(),
        title: title.into(),
        config: cfg,
        series,
    }
}

fn main() {
    banner("linear", "Extension: linear (chained) 2PC vs parallel 2PC");
    let scale = Scale::from_env();
    let base = timed("linear baseline sweep", || {
        run_one(
            "Linear 2PC at the baseline (RC+DC)",
            "linear-d3",
            SystemConfig::paper_baseline(),
            &scale,
        )
    });
    report(&base, &[Metric::Throughput, Metric::MessagesPerCommit]);

    let d6 = timed("linear d=6 sweep", || {
        run_one(
            "Linear 2PC at DistDegree 6 (RC+DC, CPU-bound)",
            "linear-d6",
            SystemConfig::paper_baseline().higher_distribution(),
            &scale,
        )
    });
    report(&d6, &[Metric::Throughput, Metric::MessagesPerCommit]);

    println!("expected shape: at DistDegree 3 the chain's serialization costs more than its");
    println!("message savings earn (2PC beats L2PC); in the CPU-bound DistDegree-6 regime the");
    println!("halved message load closes the gap or flips it; OPT lifts the chained protocol");
    println!("strongly because chain-held prepared locks are pure blocking without lending.");
}
