//! The canonical engine benchmark as a `cargo bench` target:
//!
//! ```sh
//! cargo bench -p distbench --bench hotpath            # full grid
//! DISTCOMMIT_BENCH_QUICK=1 cargo bench -p distbench --bench hotpath
//! ```
//!
//! Prints the grid table; set `DISTCOMMIT_BENCH_OUT=<file>` to append
//! the entry to a trajectory file (see `BENCH_6.json` at the repo
//! root) and `DISTCOMMIT_BENCH_LABEL` to label it. The same harness
//! backs `distcommit bench`, which adds the baseline regression gate.

use distbench::canonical::{append_entry, render_entry, run_grid, Options};

fn main() {
    let quick = matches!(
        std::env::var("DISTCOMMIT_BENCH_QUICK").as_deref(),
        Ok("1") | Ok("true")
    );
    let opts = Options {
        quick,
        label: std::env::var("DISTCOMMIT_BENCH_LABEL").unwrap_or_else(|_| "cargo bench".into()),
        ..Options::default()
    };
    distbench::banner("hotpath", "canonical engine grid (events per core-second)");
    let entry = run_grid(&opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    print!("{}", render_entry(&entry));
    if let Ok(path) = std::env::var("DISTCOMMIT_BENCH_OUT") {
        match append_entry(&path, &entry) {
            Ok(()) => println!("[trajectory] appended to {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
