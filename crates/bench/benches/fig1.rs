//! Bench target: **Experiment 1 / Figures 1a, 1b, 1c** — resource and
//! data contention (RC+DC) at the reconstructed Table 2 baseline.
//!
//! Fig 1a: transaction throughput vs MPL, for CENT, DPCC, 2PC, PA, PC,
//! 3PC and OPT. Fig 1b: block ratio. Fig 1c: borrow ratio (OPT).

use distbench::{banner, report, timed};
use distdb::experiments::{fig1, Scale};
use distdb::output::Metric;

fn main() {
    banner("fig1", "Expt 1: Resource and Data Contention (RC+DC)");
    let exp = timed("fig1 sweep", || {
        fig1(&Scale::from_env()).expect("valid config")
    });
    report(
        &exp,
        &[Metric::Throughput, Metric::BlockRatio, Metric::BorrowRatio],
    );
    println!("paper shape: all curves rise to a knee then thrash; CENT ≈ DPCC above");
    println!("2PC/PA ≈ PC above 3PC; OPT tracks 2PC at low MPL and pulls toward DPCC");
    println!("as borrowing grows (Fig 1c).");
}
