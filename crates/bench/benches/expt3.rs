//! Bench target: **Experiment 3** — fast network interface
//! (`MsgCPU` = 1 ms instead of 5 ms), under RC+DC and under pure DC.
//!
//! The paper discusses this experiment in prose (§5.4; graphs are in
//! the companion technical report): all protocols move toward CENT,
//! DPCC and CENT become virtually indistinguishable, and OPT's
//! advantage persists because data contention is untouched by faster
//! messaging.

use distbench::{banner, report, timed};
use distdb::experiments::{expt3, Scale};
use distdb::output::Metric;

fn main() {
    banner("expt3", "Expt 3: Fast Network Interface (MsgCPU = 1 ms)");
    let (rc, dc) = timed("expt3 sweeps", || {
        expt3(&Scale::from_env()).expect("valid config")
    });
    report(&rc, &[Metric::Throughput, Metric::BlockRatio]);
    report(&dc, &[Metric::Throughput, Metric::BorrowRatio]);
    println!("paper shape: protocol curves bunch toward CENT; CENT ≈ DPCC; under pure");
    println!("DC the forced-write overheads still separate DPCC > 2PC > 3PC; OPT keeps");
    println!("its data-contention advantage despite the fast network.");
}
