//! Immediate global deadlock detection.
//!
//! The paper (§4.2): "both global and local deadlock detection is
//! immediate, that is, a deadlock is detected as soon as a lock
//! conflict occurs and a cycle is formed. The youngest transaction in
//! the cycle is restarted to resolve the deadlock."
//!
//! Detection runs over the *live* wait-for relation: whenever a lock
//! request blocks, the engine calls [`find_cycle`] starting at the
//! blocked transaction, expanding edges on demand by querying every
//! site's lock table ([`crate::LockManager::blockers_of`]) and mapping
//! lock owners (cohorts) to their transactions. Because edges are
//! derived from current state rather than cached, there are no stale
//! edges and therefore no phantom deadlocks.

use std::collections::HashMap;
use std::hash::Hash;

/// Depth-first search for a cycle through `start` in the wait-for
/// graph, where `waits_for(t)` yields the transactions `t` currently
/// waits for.
///
/// Returns the nodes of the first cycle found **through `start`**, in
/// wait order starting at `start`, or `None` if no such cycle exists.
/// Only cycles containing `start` matter: under immediate detection any
/// other cycle would already have been caught when its last edge
/// appeared.
pub fn find_cycle<T, F, I>(start: T, mut waits_for: F) -> Option<Vec<T>>
where
    T: Copy + Eq + Hash,
    F: FnMut(T) -> I,
    I: IntoIterator<Item = T>,
{
    // Iterative DFS with an explicit stack of (node, unvisited successors).
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        OnStack,
        Done,
    }
    let mut color: HashMap<T, Color> = HashMap::new();
    let mut path: Vec<T> = Vec::new();
    let mut iters: Vec<Vec<T>> = Vec::new();

    color.insert(start, Color::OnStack);
    path.push(start);
    iters.push(waits_for(start).into_iter().collect());

    while let Some(succs) = iters.last_mut() {
        match succs.pop() {
            Some(next) => {
                if next == start {
                    // Found a cycle back to the origin.
                    return Some(path.clone());
                }
                match color.get(&next) {
                    Some(Color::OnStack) => {
                        // A cycle not through `start`; under immediate
                        // detection this cannot contain the new edge, so
                        // skip it (it will be reported, if real, from its
                        // own blocking event).
                        continue;
                    }
                    Some(Color::Done) => continue,
                    None => {
                        color.insert(next, Color::OnStack);
                        path.push(next);
                        iters.push(waits_for(next).into_iter().collect());
                    }
                }
            }
            None => {
                let done = path.pop().expect("path tracks iters");
                color.insert(done, Color::Done);
                iters.pop();
            }
        }
    }
    None
}

/// Pick the victim from a deadlock cycle: the *youngest* transaction,
/// i.e. the one with the largest birth instant; ties broken by the
/// larger transaction id so the choice is deterministic.
pub fn youngest_victim<T, B>(cycle: &[T], birth: B) -> T
where
    T: Copy + Ord,
    B: Fn(T) -> u64,
{
    assert!(!cycle.is_empty(), "empty cycle");
    *cycle
        .iter()
        .max_by_key(|&&t| (birth(t), t))
        .expect("non-empty cycle")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn graph(edges: &[(u32, u32)]) -> HashMap<u32, Vec<u32>> {
        let mut g: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(a, b) in edges {
            g.entry(a).or_default().push(b);
        }
        g
    }

    fn expand(g: &HashMap<u32, Vec<u32>>) -> impl Fn(u32) -> Vec<u32> + '_ {
        move |t| g.get(&t).cloned().unwrap_or_default()
    }

    #[test]
    fn no_edges_no_cycle() {
        let g = graph(&[]);
        assert_eq!(find_cycle(1, expand(&g)), None);
    }

    #[test]
    fn self_loop() {
        let g = graph(&[(1, 1)]);
        assert_eq!(find_cycle(1, expand(&g)), Some(vec![1]));
    }

    #[test]
    fn two_cycle() {
        let g = graph(&[(1, 2), (2, 1)]);
        assert_eq!(find_cycle(1, expand(&g)), Some(vec![1, 2]));
    }

    #[test]
    fn chain_is_not_a_cycle() {
        let g = graph(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(find_cycle(1, expand(&g)), None);
    }

    #[test]
    fn long_cycle_found_through_start() {
        let g = graph(&[(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        assert_eq!(find_cycle(1, expand(&g)), Some(vec![1, 2, 3, 4, 5]));
    }

    #[test]
    fn cycle_not_through_start_is_ignored() {
        // 1 -> 2 -> 3 -> 2 : the 2-3 cycle does not involve 1.
        let g = graph(&[(1, 2), (2, 3), (3, 2)]);
        assert_eq!(find_cycle(1, expand(&g)), None);
    }

    #[test]
    fn branches_are_explored() {
        // 1 waits for 2 and 3; only the 3-branch loops back.
        let g = graph(&[(1, 2), (1, 3), (2, 9), (3, 4), (4, 1)]);
        let cycle = find_cycle(1, expand(&g)).unwrap();
        assert_eq!(cycle.first(), Some(&1));
        assert!(cycle.contains(&3) && cycle.contains(&4));
        assert!(!cycle.contains(&2));
    }

    #[test]
    fn diamond_without_cycle() {
        let g = graph(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        assert_eq!(find_cycle(1, expand(&g)), None);
    }

    #[test]
    fn multi_edges_are_harmless() {
        let g = graph(&[(1, 2), (1, 2), (2, 1)]);
        assert_eq!(find_cycle(1, expand(&g)), Some(vec![1, 2]));
    }

    #[test]
    fn youngest_victim_picks_latest_birth() {
        let births: HashMap<u32, u64> = [(1, 100), (2, 300), (3, 200)].into();
        assert_eq!(youngest_victim(&[1, 2, 3], |t| births[&t]), 2);
    }

    #[test]
    fn youngest_victim_breaks_ties_by_id() {
        let births: HashMap<u32, u64> = [(1, 100), (2, 100)].into();
        assert_eq!(youngest_victim(&[1, 2], |t| births[&t]), 2);
    }

    #[test]
    #[should_panic(expected = "empty cycle")]
    fn empty_cycle_panics() {
        youngest_victim::<u32, _>(&[], |_| 0);
    }
}

// Seeded-loop generative test (former proptest suite, rewritten as a
// deterministic randomized loop over the same input space).
#[cfg(test)]
mod generative_tests {
    use super::*;
    use simkernel::SimRng;
    use std::collections::{HashMap, HashSet};

    /// Brute-force reference: does any directed cycle through `start` exist?
    fn has_cycle_through(start: u32, g: &HashMap<u32, Vec<u32>>) -> bool {
        // BFS from each successor of start back to start.
        let mut frontier: Vec<u32> = g.get(&start).cloned().unwrap_or_default();
        let mut seen: HashSet<u32> = HashSet::new();
        while let Some(n) = frontier.pop() {
            if n == start {
                return true;
            }
            if seen.insert(n) {
                frontier.extend(g.get(&n).cloned().unwrap_or_default());
            }
        }
        false
    }

    #[test]
    fn matches_brute_force() {
        let mut r = SimRng::new(0xDEAD_10CC);
        for _ in 0..400 {
            let n_edges = r.uniform_usize(0, 39);
            let mut g: HashMap<u32, Vec<u32>> = HashMap::new();
            for _ in 0..n_edges {
                let a = r.uniform_u64(0, 11) as u32;
                let b = r.uniform_u64(0, 11) as u32;
                g.entry(a).or_default().push(b);
            }
            let start = r.uniform_u64(0, 11) as u32;
            let found = find_cycle(start, |t| g.get(&t).cloned().unwrap_or_default());
            assert_eq!(found.is_some(), has_cycle_through(start, &g));
            // And any reported cycle is a real cycle through start.
            if let Some(cycle) = found {
                assert_eq!(cycle[0], start);
                for w in cycle.windows(2) {
                    assert!(g[&w[0]].contains(&w[1]));
                }
                assert!(g[cycle.last().unwrap()].contains(&start));
            }
        }
    }
}
