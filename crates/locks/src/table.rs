//! The per-site lock table.
//!
//! Semantics implemented (paper §3, §4.2):
//!
//! * **Modes**: `Read` and `Update`; read–read is the only compatible
//!   pair. Transactions "set read locks on pages that they read and
//!   update locks on pages that need to be updated".
//! * **Strictness**: locks are released only by the explicit release
//!   calls driven by the commit protocol (read locks at PREPARE
//!   receipt, update locks when the global decision is implemented).
//! * **Fairness**: one FCFS queue per page; a new request never
//!   bypasses a non-empty queue, and on release the queue head is
//!   granted greedily (consecutive compatible requests are granted
//!   together so concurrent readers batch).
//! * **Upgrades**: a holder of a read lock may request an update lock;
//!   upgrades are checked against the *holders only* (they do not go to
//!   the back of the queue, the standard treatment that avoids trivial
//!   self-deadlock through one's own read lock).
//! * **Lending (OPT)**: when `opt_lending` is on, a conflicting holder
//!   that is in the *prepared* state does not block the requester; the
//!   grant is recorded as a borrow edge lender → borrower. Lending
//!   never bypasses the FCFS queue.
//!
//! # Storage layout
//!
//! The table is hot-path state touched on every page access of every
//! simulated transaction, so it is laid out densely:
//!
//! * Owners are *registered* up front ([`LockManager::register_owner`])
//!   and addressed by a dense slot index ([`OwnerId`]); slots are
//!   recycled through a free list when owners unregister. All per-owner
//!   state (held pages, waiting request, prepared flag, borrow edges)
//!   lives in one `OwnerState` record — no hashing anywhere on the
//!   request/release paths.
//! * Pages live in a flat `Vec` indexed by `page % page_modulus`.
//!   Callers must keep the page ids used against one table *injective*
//!   modulo the modulus (the engine passes its pages-per-site, and page
//!   ids within a site are distinct residues by construction);
//!   [`LockManager::new`] uses an identity mapping for callers with
//!   small page ids.
//! * Each owner's `held` list is kept **sorted by page** at all times,
//!   so every bulk release walks pages in ascending order without a
//!   per-call sort. Determinism (bit-for-bit reproducible runs) is by
//!   construction, not by re-sorting hash-map keys.
//! * All externally visible orderings (blocker sets, settled borrower
//!   lists) are sorted by the owner's registration sequence number
//!   `seq` — the engine passes its globally unique cohort id — which
//!   reproduces the historical sort-by-owner-id order exactly.
//!
//! The table never schedules events and never decides policy: all
//! outcomes (grants released by state changes, borrowers to abort) are
//! returned to the caller.

use std::collections::VecDeque;

/// A page (data item) identifier, unique within a site.
pub type PageId = u64;

/// A dense lock-owner handle issued by [`LockManager::register_owner`].
///
/// The handle is only meaningful against the table that issued it, and
/// only while the owner stays registered; the slot is recycled after
/// [`LockManager::unregister`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OwnerId(u32);

impl OwnerId {
    /// The dense slot index backing this handle. Stable while the owner
    /// stays registered; suitable for indexing caller-side mirrors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Lock mode under strict 2PL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// Shared access.
    Read,
    /// Exclusive access (the paper's "update lock").
    Update,
}

impl LockMode {
    /// Read–read is the only compatible pair.
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        self == LockMode::Read && other == LockMode::Read
    }
}

/// Outcome of [`LockManager::request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Lock granted. `borrowed_from` lists the prepared lenders whose
    /// conflicting locks were borrowed through (empty for a plain
    /// grant).
    Granted { borrowed_from: Vec<OwnerId> },
    /// The owner already holds the page in this or a stronger mode.
    AlreadyHeld,
    /// The request queued. Query [`LockManager::blockers_of`] (or walk
    /// [`LockManager::for_each_blocker`]) for the owners the requester
    /// now waits on; the outcome itself carries no blocker list so the
    /// hot path never allocates one it may not need.
    Blocked,
}

/// A grant released by a state change (release, abort, prepare).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// The owner whose waiting request was just granted.
    pub owner: OwnerId,
    /// The granted page.
    pub page: PageId,
    /// The granted mode.
    pub mode: LockMode,
    /// Prepared lenders borrowed through (empty for a plain grant).
    pub borrowed_from: Vec<OwnerId>,
}

#[derive(Debug, Clone, Copy)]
struct WaitReq {
    owner: u32,
    mode: LockMode,
    /// True when the owner already holds the page in `Read` mode and is
    /// waiting to upgrade.
    upgrade: bool,
}

#[derive(Debug, Default)]
struct PageLock {
    holders: Vec<(u32, LockMode)>,
    queue: VecDeque<WaitReq>,
}

/// All state of one registered owner, in one record.
#[derive(Debug)]
struct OwnerState {
    /// Caller-assigned sequence number (the engine's cohort id). Unique
    /// among live owners; the determinism key for every sorted output.
    seq: u64,
    /// `(page, strongest mode held)`, kept sorted by page ascending.
    held: Vec<(PageId, LockMode)>,
    /// The single outstanding waiting request, if any.
    waiting: Option<PageId>,
    prepared: bool,
    /// Borrowers with a live borrow edge from this owner (slots).
    lends: Vec<u32>,
    /// Lenders this owner has a live borrow edge to (slots).
    borrows: Vec<u32>,
}

/// One site's lock table (see module docs).
#[derive(Debug)]
pub struct LockManager {
    opt_lending: bool,
    /// Pages are stored at slot `page % page_modulus`.
    page_modulus: u64,
    pages: Vec<PageLock>,
    owners: Vec<Option<OwnerState>>,
    free_owners: Vec<u32>,
    /// Count of owners with `waiting.is_some()`.
    waiting_owners: usize,
    registered: usize,
    /// Total page-grants that involved borrowing (metric).
    borrow_grants: u64,
}

impl LockManager {
    /// A lock table with an identity page mapping. `opt_lending`
    /// enables the OPT borrowing rule. Suitable when page ids are
    /// small; the engine uses [`LockManager::for_pages`].
    pub fn new(opt_lending: bool) -> Self {
        Self::for_pages(opt_lending, u64::MAX)
    }

    /// A lock table whose page ids are folded into `page_modulus`
    /// dense slots. Page ids used against one table must be injective
    /// modulo `page_modulus`.
    pub fn for_pages(opt_lending: bool, page_modulus: u64) -> Self {
        assert!(page_modulus > 0, "page modulus must be positive");
        LockManager {
            opt_lending,
            page_modulus,
            pages: Vec::new(),
            owners: Vec::new(),
            free_owners: Vec::new(),
            waiting_owners: 0,
            registered: 0,
            borrow_grants: 0,
        }
    }

    // ------------------------------------------------------------------
    // Owner registration
    // ------------------------------------------------------------------

    /// Register a new owner with caller-assigned sequence number `seq`
    /// (must be unique among live owners — the engine passes the
    /// globally unique cohort id). Returns its dense handle.
    pub fn register_owner(&mut self, seq: u64) -> OwnerId {
        let st = OwnerState {
            seq,
            held: Vec::new(),
            waiting: None,
            prepared: false,
            lends: Vec::new(),
            borrows: Vec::new(),
        };
        self.registered += 1;
        match self.free_owners.pop() {
            Some(slot) => {
                debug_assert!(self.owners[slot as usize].is_none());
                self.owners[slot as usize] = Some(st);
                OwnerId(slot)
            }
            None => {
                self.owners.push(Some(st));
                OwnerId((self.owners.len() - 1) as u32)
            }
        }
    }

    /// Unregister `owner`, recycling its slot. Panics if the owner
    /// still holds locks, waits, lends, borrows, or is prepared — the
    /// caller must fully tear it down first.
    pub fn unregister(&mut self, owner: OwnerId) {
        let st = self.st(owner);
        assert!(
            st.held.is_empty()
                && st.waiting.is_none()
                && !st.prepared
                && st.lends.is_empty()
                && st.borrows.is_empty(),
            "owner seq {} unregistered with live lock state",
            st.seq
        );
        self.owners[owner.index()] = None;
        self.free_owners.push(owner.0);
        self.registered -= 1;
    }

    /// The sequence number `owner` was registered with, or `None` if
    /// the slot is currently vacant.
    pub fn owner_seq(&self, owner: OwnerId) -> Option<u64> {
        self.owners
            .get(owner.index())
            .and_then(|o| o.as_ref())
            .map(|s| s.seq)
    }

    /// Number of currently registered owners.
    pub fn registered_count(&self) -> usize {
        self.registered
    }

    #[inline]
    fn st(&self, owner: OwnerId) -> &OwnerState {
        self.owners[owner.index()]
            .as_ref()
            .expect("unregistered lock owner")
    }

    #[inline]
    fn st_mut(&mut self, owner: OwnerId) -> &mut OwnerState {
        self.owners[owner.index()]
            .as_mut()
            .expect("unregistered lock owner")
    }

    #[inline]
    fn seq_of(&self, slot: u32) -> u64 {
        self.owners[slot as usize]
            .as_ref()
            .expect("unregistered lock owner")
            .seq
    }

    #[inline]
    fn prepared_slot(&self, slot: u32) -> bool {
        self.owners[slot as usize]
            .as_ref()
            .is_some_and(|s| s.prepared)
    }

    #[inline]
    fn page_slot(&self, page: PageId) -> usize {
        (page % self.page_modulus) as usize
    }

    /// Slot for `page`, growing the table if needed.
    fn ensure_page(&mut self, page: PageId) -> usize {
        let pi = self.page_slot(page);
        if pi >= self.pages.len() {
            self.pages.resize_with(pi + 1, PageLock::default);
        }
        pi
    }

    fn page_ro(&self, page: PageId) -> Option<&PageLock> {
        self.pages.get(self.page_slot(page))
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Whether the OPT lending rule is active.
    pub fn opt_lending(&self) -> bool {
        self.opt_lending
    }

    /// Total page-grants that went through at least one borrow edge.
    pub fn borrow_grants(&self) -> u64 {
        self.borrow_grants
    }

    /// Pages currently locked by `owner` (any mode).
    pub fn pages_held(&self, owner: OwnerId) -> usize {
        self.st(owner).held.len()
    }

    /// Mode `owner` holds on `page`, if any.
    pub fn mode_held(&self, owner: OwnerId, page: PageId) -> Option<LockMode> {
        let held = &self.st(owner).held;
        held.binary_search_by_key(&page, |&(p, _)| p)
            .ok()
            .map(|i| held[i].1)
    }

    /// True if `owner` has a queued (waiting) request.
    pub fn is_waiting(&self, owner: OwnerId) -> bool {
        self.st(owner).waiting.is_some()
    }

    /// Number of owners currently waiting in some queue.
    pub fn waiting_count(&self) -> usize {
        self.waiting_owners
    }

    /// True if `owner` has been marked prepared.
    pub fn is_prepared(&self, owner: OwnerId) -> bool {
        self.st(owner).prepared
    }

    /// Current lenders of `owner` (owners whose data it borrowed and
    /// whose global decision is still pending).
    pub fn lenders_of(&self, owner: OwnerId) -> impl Iterator<Item = OwnerId> + '_ {
        self.st(owner).borrows.iter().map(|&s| OwnerId(s))
    }

    /// True if `owner` borrowed from at least one still-undecided lender.
    pub fn has_live_borrows(&self, owner: OwnerId) -> bool {
        !self.st(owner).borrows.is_empty()
    }

    /// Current borrowers of `owner`.
    pub fn borrowers_of(&self, owner: OwnerId) -> impl Iterator<Item = OwnerId> + '_ {
        self.st(owner).lends.iter().map(|&s| OwnerId(s))
    }

    // ------------------------------------------------------------------
    // Requests
    // ------------------------------------------------------------------

    /// `owner` requests `page` in `mode`.
    pub fn request(&mut self, owner: OwnerId, page: PageId, mode: LockMode) -> RequestOutcome {
        {
            let st = self.st(owner);
            assert!(
                st.waiting.is_none(),
                "owner seq {} already has a waiting request",
                st.seq
            );
        }
        match self.mode_held(owner, page) {
            Some(m) if m >= mode => RequestOutcome::AlreadyHeld,
            Some(_) => self.request_upgrade(owner, page),
            None => self.request_fresh(owner, page, mode),
        }
    }

    fn request_fresh(&mut self, owner: OwnerId, page: PageId, mode: LockMode) -> RequestOutcome {
        let pi = self.ensure_page(page);
        // Fairness: never bypass a non-empty queue.
        if self.pages[pi].queue.is_empty() {
            let mut lenders = Vec::new();
            let mut hard = false;
            for &(h, hmode) in &self.pages[pi].holders {
                debug_assert_ne!(h, owner.0);
                if hmode.compatible(mode) {
                    continue;
                }
                if self.opt_lending && self.prepared_slot(h) {
                    lenders.push(h);
                } else {
                    hard = true;
                    break;
                }
            }
            if !hard {
                self.pages[pi].holders.push((owner.0, mode));
                self.held_insert(owner, page, mode);
                self.note_borrows(owner.0, &lenders);
                return RequestOutcome::Granted {
                    borrowed_from: lenders.into_iter().map(OwnerId).collect(),
                };
            }
        }
        self.pages[pi].queue.push_back(WaitReq {
            owner: owner.0,
            mode,
            upgrade: false,
        });
        self.st_mut(owner).waiting = Some(page);
        self.waiting_owners += 1;
        RequestOutcome::Blocked
    }

    fn request_upgrade(&mut self, owner: OwnerId, page: PageId) -> RequestOutcome {
        let pi = self.page_slot(page);
        let mut lenders = Vec::new();
        let mut hard = false;
        for &(h, _) in &self.pages[pi].holders {
            if h == owner.0 {
                continue;
            }
            // Any other holder conflicts with an upgrade to Update.
            if self.opt_lending && self.prepared_slot(h) {
                lenders.push(h);
            } else {
                hard = true;
            }
        }
        if !hard {
            for h in self.pages[pi].holders.iter_mut() {
                if h.0 == owner.0 {
                    h.1 = LockMode::Update;
                }
            }
            self.held_insert(owner, page, LockMode::Update);
            self.note_borrows(owner.0, &lenders);
            return RequestOutcome::Granted {
                borrowed_from: lenders.into_iter().map(OwnerId).collect(),
            };
        }
        // Upgrades wait at the *front* of the queue (they hold a read
        // lock already; anything granted ahead of them could only
        // deadlock against that read lock).
        self.pages[pi].queue.push_front(WaitReq {
            owner: owner.0,
            mode: LockMode::Update,
            upgrade: true,
        });
        self.st_mut(owner).waiting = Some(page);
        self.waiting_owners += 1;
        RequestOutcome::Blocked
    }

    fn held_insert(&mut self, owner: OwnerId, page: PageId, mode: LockMode) {
        let held = &mut self.st_mut(owner).held;
        match held.binary_search_by_key(&page, |&(p, _)| p) {
            Ok(i) => held[i].1 = mode,
            Err(i) => held.insert(i, (page, mode)),
        }
    }

    fn note_borrows(&mut self, borrower: u32, lenders: &[u32]) {
        if lenders.is_empty() {
            return;
        }
        self.borrow_grants += 1;
        for &l in lenders {
            debug_assert!(self.prepared_slot(l));
            let lends = &mut self.owners[l as usize]
                .as_mut()
                .expect("unregistered lock owner")
                .lends;
            if !lends.contains(&borrower) {
                lends.push(borrower);
            }
            let borrows = &mut self.owners[borrower as usize]
                .as_mut()
                .expect("unregistered lock owner")
                .borrows;
            if !borrows.contains(&l) {
                borrows.push(l);
            }
        }
    }

    /// Live blocker set for a waiting owner: conflicting (non-lendable)
    /// holders plus conflicting queued requests ahead of it, sorted by
    /// registration sequence. Used to build the global wait-for graph
    /// at deadlock-check time, so it is always computed from live state
    /// (no stale edges).
    pub fn compute_blockers(&self, owner: OwnerId, page: PageId) -> Vec<OwnerId> {
        let Some(entry) = self.page_ro(page) else {
            return Vec::new();
        };
        let Some(pos) = entry.queue.iter().position(|w| w.owner == owner.0) else {
            return Vec::new();
        };
        let mode = entry.queue[pos].mode;
        let mut blockers: Vec<u32> = Vec::new();
        for &(h, hmode) in &entry.holders {
            if h == owner.0 {
                continue; // own read lock during an upgrade wait
            }
            if hmode.compatible(mode) {
                continue;
            }
            if self.opt_lending && self.prepared_slot(h) {
                continue; // lendable: would not block once queue clears
            }
            blockers.push(h);
        }
        for w in entry.queue.iter().take(pos) {
            if !w.mode.compatible(mode) || !mode.compatible(w.mode) {
                blockers.push(w.owner);
            }
        }
        // Seqs are unique among live owners, so sorting by seq also
        // groups duplicate slots adjacently for dedup.
        blockers.sort_unstable_by_key(|&s| self.seq_of(s));
        blockers.dedup();
        blockers.into_iter().map(OwnerId).collect()
    }

    /// Blockers of `owner`'s outstanding request, if it has one.
    pub fn blockers_of(&self, owner: OwnerId) -> Vec<OwnerId> {
        match self.st(owner).waiting {
            Some(page) => self.compute_blockers(owner, page),
            None => Vec::new(),
        }
    }

    /// Visit every blocker of `owner`'s outstanding request without
    /// allocating. Unlike [`Self::blockers_of`] the visit order is
    /// unspecified and an owner may be visited twice — suitable only
    /// for order-independent uses such as reachability pre-filters.
    pub fn for_each_blocker(&self, owner: OwnerId, mut f: impl FnMut(OwnerId)) {
        let Some(page) = self.st(owner).waiting else {
            return;
        };
        let Some(entry) = self.page_ro(page) else {
            return;
        };
        let Some(pos) = entry.queue.iter().position(|w| w.owner == owner.0) else {
            return;
        };
        let mode = entry.queue[pos].mode;
        for &(h, hmode) in &entry.holders {
            if h == owner.0 || hmode.compatible(mode) {
                continue;
            }
            if self.opt_lending && self.prepared_slot(h) {
                continue;
            }
            f(OwnerId(h));
        }
        for w in entry.queue.iter().take(pos) {
            if !w.mode.compatible(mode) || !mode.compatible(w.mode) {
                f(OwnerId(w.owner));
            }
        }
    }

    // ------------------------------------------------------------------
    // State changes
    // ------------------------------------------------------------------

    /// Mark `owner` prepared. With lending enabled this may unblock
    /// waiters on every page it holds; the resulting grants are
    /// returned, in ascending page order (`held` is kept sorted, so no
    /// sort happens here).
    pub fn mark_prepared(&mut self, owner: OwnerId) -> Vec<Grant> {
        {
            let st = self.st_mut(owner);
            debug_assert!(!st.prepared, "owner seq {} prepared twice", st.seq);
            st.prepared = true;
        }
        if !self.opt_lending {
            return Vec::new();
        }
        // Index walk, no page snapshot: draining a held page can only
        // re-grant *this* owner an upgrade it already queued there,
        // which rewrites the held entry's mode in place — the list's
        // length and order never change under the cursor.
        let mut grants = Vec::new();
        let mut i = 0;
        while let Some(&(p, _)) = self.st(owner).held.get(i) {
            self.drain_queue(p, &mut grants);
            i += 1;
        }
        grants
    }

    /// Release `owner`'s read locks (the paper: on PREPARE receipt "the
    /// cohort releases all its read locks but retains its update
    /// locks"). Returns grants unblocked by the release, in ascending
    /// page order.
    pub fn release_read_locks(&mut self, owner: OwnerId) -> Vec<Grant> {
        // Walk the held list by index instead of snapshotting the read
        // pages: this path runs once per cohort prepare. Releasing the
        // read lock under the owner's own queued upgrade re-grants it as
        // `Update` at the same (sorted) position, which the cursor then
        // skips — exactly the snapshot semantics, without the Vec.
        let mut grants = Vec::new();
        let mut i = 0;
        while let Some(&(p, m)) = self.st(owner).held.get(i) {
            if m != LockMode::Read {
                i += 1;
                continue;
            }
            self.st_mut(owner).held.remove(i);
            self.remove_holder_entry_only(owner, p);
            self.drain_queue(p, &mut grants);
        }
        grants
    }

    /// Release every lock `owner` holds and cancel its waiting request,
    /// if any. Clears prepared status. Returns grants unblocked by the
    /// release, held pages in ascending order.
    ///
    /// Borrow edges are *not* touched — call [`LockManager::settle_borrows`]
    /// (for a decided lender) and/or [`LockManager::drop_borrower`] (for
    /// an aborting borrower) first.
    pub fn release_all(&mut self, owner: OwnerId) -> Vec<Grant> {
        let mut grants = Vec::new();
        if let Some(page) = self.st_mut(owner).waiting.take() {
            self.waiting_owners -= 1;
            let pi = self.page_slot(page);
            if let Some(entry) = self.pages.get_mut(pi) {
                entry.queue.retain(|w| w.owner != owner.0);
            }
            // Removing a queued conflicting request can unblock those behind it.
            self.drain_queue(page, &mut grants);
        }
        let held = std::mem::take(&mut self.st_mut(owner).held);
        for &(p, _) in &held {
            self.remove_holder_entry_only(owner, p);
            self.drain_queue(p, &mut grants);
        }
        self.st_mut(owner).prepared = false;
        grants
    }

    /// A lender's global decision arrived: dissolve its borrow edges and
    /// return its (former) borrowers, sorted by registration sequence.
    /// On commit the engine re-checks each borrower's shelf condition;
    /// on abort it aborts them all — the abort chain of OPT, bounded at
    /// length one.
    pub fn settle_borrows(&mut self, lender: OwnerId) -> Vec<OwnerId> {
        let mut borrowers: Vec<u32> = std::mem::take(&mut self.st_mut(lender).lends);
        borrowers.sort_unstable_by_key(|&b| self.seq_of(b)); // deterministic processing order
        for &b in &borrowers {
            self.owners[b as usize]
                .as_mut()
                .expect("unregistered lock owner")
                .borrows
                .retain(|&l| l != lender.0);
        }
        borrowers.into_iter().map(OwnerId).collect()
    }

    /// A borrower is going away (abort or full release): drop its
    /// borrow edges from both directions.
    pub fn drop_borrower(&mut self, borrower: OwnerId) {
        let lenders = std::mem::take(&mut self.st_mut(borrower).borrows);
        for l in lenders {
            self.owners[l as usize]
                .as_mut()
                .expect("unregistered lock owner")
                .lends
                .retain(|&b| b != borrower.0);
        }
    }

    fn remove_holder_entry_only(&mut self, owner: OwnerId, page: PageId) {
        let pi = self.page_slot(page);
        if let Some(entry) = self.pages.get_mut(pi) {
            entry.holders.retain(|&(h, _)| h != owner.0);
        }
    }

    /// Greedily grant from the head of `page`'s queue.
    fn drain_queue(&mut self, page: PageId, grants: &mut Vec<Grant>) {
        let pi = self.page_slot(page);
        loop {
            let Some(entry) = self.pages.get(pi) else {
                return;
            };
            let Some(head) = entry.queue.front() else {
                return;
            };
            let owner = head.owner;
            let mode = head.mode;
            let upgrade = head.upgrade;
            let mut lenders: Vec<u32> = Vec::new();
            let mut grantable = true;
            for &(h, hmode) in &entry.holders {
                if h == owner {
                    debug_assert!(upgrade);
                    continue;
                }
                if hmode.compatible(mode) {
                    continue;
                }
                if self.opt_lending && self.prepared_slot(h) {
                    lenders.push(h);
                } else {
                    grantable = false;
                    break;
                }
            }
            if !grantable {
                return;
            }
            let entry = &mut self.pages[pi];
            entry.queue.pop_front();
            if upgrade {
                // Promote the read lock in place; if the owner released
                // its read locks while the upgrade was queued (legal for
                // a caller, even if the engine never does it), the
                // upgrade degenerates into a fresh grant.
                let mut promoted = false;
                for h in entry.holders.iter_mut() {
                    if h.0 == owner {
                        h.1 = LockMode::Update;
                        promoted = true;
                    }
                }
                if !promoted {
                    entry.holders.push((owner, mode));
                }
            } else {
                entry.holders.push((owner, mode));
            }
            let oid = OwnerId(owner);
            self.held_insert(oid, page, mode);
            {
                let st = self.st_mut(oid);
                debug_assert_eq!(st.waiting, Some(page));
                st.waiting = None;
            }
            self.waiting_owners -= 1;
            self.note_borrows(owner, &lenders);
            grants.push(Grant {
                owner: oid,
                page,
                mode,
                borrowed_from: lenders.into_iter().map(OwnerId).collect(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Auditing (used by the integration test-suite)
    // ------------------------------------------------------------------

    /// Check internal invariants; returns a description of the first
    /// violation found, if any.
    ///
    /// 1. No two holders of a page conflict unless one of them is
    ///    prepared and lending is enabled.
    /// 2. A non-empty queue's head must not be grantable (no missed
    ///    grants).
    /// 3. Waiting state matches the queues exactly, including the
    ///    waiting-owner counter.
    /// 4. Each owner's `held` list is sorted and matches the holder
    ///    entries exactly.
    /// 5. Borrow edges are symmetric and reference prepared lenders only.
    pub fn audit(&self) -> Result<(), String> {
        for (pi, entry) in self.pages.iter().enumerate() {
            for (i, &(a, am)) in entry.holders.iter().enumerate() {
                for &(b, bm) in entry.holders.iter().skip(i + 1) {
                    if a == b {
                        return Err(format!(
                            "page slot {pi}: duplicate holder seq {}",
                            self.seq_of(a)
                        ));
                    }
                    if !am.compatible(bm) || !bm.compatible(am) {
                        let lendable =
                            self.opt_lending && (self.prepared_slot(a) || self.prepared_slot(b));
                        if !lendable {
                            return Err(format!(
                                "page slot {pi}: conflicting holders seq {} and seq {} \
                                 with no prepared lender",
                                self.seq_of(a),
                                self.seq_of(b)
                            ));
                        }
                    }
                }
            }
            if let Some(head) = entry.queue.front() {
                let blocked = entry.holders.iter().any(|&(h, hm)| {
                    h != head.owner
                        && !hm.compatible(head.mode)
                        && !(self.opt_lending && self.prepared_slot(h))
                });
                if !blocked {
                    return Err(format!(
                        "page slot {pi}: queue head seq {} is grantable but still waiting",
                        self.seq_of(head.owner)
                    ));
                }
            }
            for w in &entry.queue {
                let ok = self
                    .owners
                    .get(w.owner as usize)
                    .and_then(|o| o.as_ref())
                    .is_some_and(|s| s.waiting.is_some_and(|p| self.page_slot(p) == pi));
                if !ok {
                    return Err(format!(
                        "page slot {pi}: queued owner slot {} not in waiting state",
                        w.owner
                    ));
                }
            }
        }
        let mut waiting_seen = 0usize;
        let mut registered_seen = 0usize;
        for (slot, st) in self.owners.iter().enumerate() {
            let Some(st) = st.as_ref() else { continue };
            registered_seen += 1;
            if !st.held.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(format!(
                    "owner seq {}: held list not sorted by page",
                    st.seq
                ));
            }
            for &(page, mode) in &st.held {
                let ok = self.page_ro(page).is_some_and(|e| {
                    e.holders
                        .iter()
                        .any(|&(h, m)| h as usize == slot && m == mode)
                });
                if !ok {
                    return Err(format!(
                        "held list has seq {}@{page}:{mode:?} but no holder entry",
                        st.seq
                    ));
                }
            }
            if let Some(page) = st.waiting {
                waiting_seen += 1;
                let ok = self
                    .page_ro(page)
                    .is_some_and(|e| e.queue.iter().any(|w| w.owner as usize == slot));
                if !ok {
                    return Err(format!(
                        "owner seq {} waiting on {page} but no queued request",
                        st.seq
                    ));
                }
            }
            if !st.lends.is_empty() && !st.prepared && !st.held.is_empty() {
                return Err(format!(
                    "lender seq {} has live borrows but is not prepared",
                    st.seq
                ));
            }
            for &b in &st.lends {
                let ok = self
                    .owners
                    .get(b as usize)
                    .and_then(|o| o.as_ref())
                    .is_some_and(|bs| bs.borrows.contains(&(slot as u32)));
                if !ok {
                    return Err(format!("asymmetric borrow edge seq {} -> slot {b}", st.seq));
                }
            }
            for &l in &st.borrows {
                let ok = self
                    .owners
                    .get(l as usize)
                    .and_then(|o| o.as_ref())
                    .is_some_and(|ls| ls.lends.contains(&(slot as u32)));
                if !ok {
                    return Err(format!(
                        "asymmetric borrow edge slot {l} -> seq {} (reverse missing)",
                        st.seq
                    ));
                }
            }
        }
        if waiting_seen != self.waiting_owners {
            return Err(format!(
                "waiting counter {} != actual {waiting_seen}",
                self.waiting_owners
            ));
        }
        if registered_seen != self.registered {
            return Err(format!(
                "registered counter {} != actual {registered_seen}",
                self.registered
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn granted(o: &RequestOutcome) -> bool {
        matches!(o, RequestOutcome::Granted { .. })
    }

    /// A table plus handles `o[0..=n]` registered with `seq == index`,
    /// mirroring the raw owner ids these tests historically used.
    fn setup(lending: bool, n: u64) -> (LockManager, Vec<OwnerId>) {
        let mut lm = LockManager::new(lending);
        let owners = (0..=n).map(|i| lm.register_owner(i)).collect();
        (lm, owners)
    }

    #[test]
    fn read_read_shares() {
        let (mut lm, o) = setup(false, 2);
        assert!(granted(&lm.request(o[1], 100, LockMode::Read)));
        assert!(granted(&lm.request(o[2], 100, LockMode::Read)));
        lm.audit().unwrap();
    }

    #[test]
    fn update_excludes() {
        let (mut lm, o) = setup(false, 3);
        assert!(granted(&lm.request(o[1], 100, LockMode::Update)));
        assert_eq!(
            lm.request(o[2], 100, LockMode::Read),
            RequestOutcome::Blocked
        );
        assert_eq!(lm.blockers_of(o[2]), vec![o[1]]);
        assert_eq!(
            lm.request(o[3], 100, LockMode::Update),
            RequestOutcome::Blocked
        );
        assert_eq!(lm.blockers_of(o[3]), vec![o[1], o[2]]);
        lm.audit().unwrap();
    }

    #[test]
    fn already_held_is_idempotent() {
        let (mut lm, o) = setup(false, 1);
        assert!(granted(&lm.request(o[1], 5, LockMode::Update)));
        assert_eq!(
            lm.request(o[1], 5, LockMode::Update),
            RequestOutcome::AlreadyHeld
        );
        assert_eq!(
            lm.request(o[1], 5, LockMode::Read),
            RequestOutcome::AlreadyHeld
        );
    }

    #[test]
    fn release_grants_fcfs() {
        let (mut lm, o) = setup(false, 4);
        lm.request(o[1], 9, LockMode::Update);
        lm.request(o[2], 9, LockMode::Update);
        lm.request(o[3], 9, LockMode::Read);
        lm.request(o[4], 9, LockMode::Read);
        let grants = lm.release_all(o[1]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, o[2]);
        let grants = lm.release_all(o[2]);
        // both reads batch-grant together
        assert_eq!(
            grants.iter().map(|g| g.owner).collect::<Vec<_>>(),
            vec![o[3], o[4]]
        );
        lm.audit().unwrap();
    }

    #[test]
    fn new_reader_does_not_bypass_queued_writer() {
        let (mut lm, o) = setup(false, 3);
        lm.request(o[1], 9, LockMode::Read);
        lm.request(o[2], 9, LockMode::Update); // queues
        let out = lm.request(o[3], 9, LockMode::Read); // must not bypass 2
        assert!(matches!(out, RequestOutcome::Blocked));
        assert!(lm.blockers_of(o[3]).contains(&o[2]));
        lm.audit().unwrap();
    }

    #[test]
    fn upgrade_succeeds_when_alone() {
        let (mut lm, o) = setup(false, 1);
        lm.request(o[1], 9, LockMode::Read);
        assert!(granted(&lm.request(o[1], 9, LockMode::Update)));
        assert_eq!(lm.mode_held(o[1], 9), Some(LockMode::Update));
    }

    #[test]
    fn upgrade_waits_for_other_reader_and_jumps_queue() {
        let (mut lm, o) = setup(false, 3);
        lm.request(o[1], 9, LockMode::Read);
        lm.request(o[2], 9, LockMode::Read);
        lm.request(o[3], 9, LockMode::Update); // queues behind readers
        let out = lm.request(o[1], 9, LockMode::Update); // upgrade, ahead of 3
        assert!(matches!(out, RequestOutcome::Blocked));
        let grants = lm.release_all(o[2]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, o[1]);
        assert_eq!(lm.mode_held(o[1], 9), Some(LockMode::Update));
        lm.audit().unwrap();
    }

    #[test]
    fn queued_upgrade_survives_read_release() {
        // Regression (found by proptest): owner 5 queues an upgrade
        // behind reader 6, then releases its read locks; when 6 leaves,
        // the upgrade must grant as a fresh update lock with a
        // consistent holder entry.
        let (mut lm, o) = setup(false, 6);
        lm.request(o[6], 3, LockMode::Read);
        lm.request(o[5], 3, LockMode::Read);
        assert!(matches!(
            lm.request(o[5], 3, LockMode::Update),
            RequestOutcome::Blocked
        ));
        lm.release_read_locks(o[5]);
        lm.audit().unwrap();
        let grants = lm.release_read_locks(o[6]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, o[5]);
        assert_eq!(lm.mode_held(o[5], 3), Some(LockMode::Update));
        lm.audit().unwrap();
    }

    #[test]
    fn release_read_locks_keeps_updates() {
        let (mut lm, o) = setup(false, 2);
        lm.request(o[1], 1, LockMode::Read);
        lm.request(o[1], 2, LockMode::Update);
        lm.request(o[2], 1, LockMode::Update); // waits on the read lock
        let grants = lm.release_read_locks(o[1]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, o[2]);
        assert_eq!(lm.mode_held(o[1], 1), None);
        assert_eq!(lm.mode_held(o[1], 2), Some(LockMode::Update));
        lm.audit().unwrap();
    }

    #[test]
    fn cancel_waiting_request_on_release_all() {
        let (mut lm, o) = setup(false, 3);
        lm.request(o[1], 9, LockMode::Update);
        lm.request(o[2], 9, LockMode::Update);
        lm.request(o[3], 9, LockMode::Read);
        assert!(lm.is_waiting(o[2]));
        // 2 aborts while waiting; 3 is still blocked by 1 (holder).
        let grants = lm.release_all(o[2]);
        assert!(grants.is_empty());
        assert!(!lm.is_waiting(o[2]));
        // now 1 releases: 3 gets the lock
        let grants = lm.release_all(o[1]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, o[3]);
        lm.audit().unwrap();
    }

    #[test]
    fn removing_queued_conflict_unblocks_followers() {
        let (mut lm, o) = setup(false, 3);
        lm.request(o[1], 9, LockMode::Read);
        lm.request(o[2], 9, LockMode::Update); // queued
        lm.request(o[3], 9, LockMode::Read); // queued behind the update
        let grants = lm.release_all(o[2]); // cancel the update while 1 still holds
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, o[3]);
        assert_eq!(grants[0].mode, LockMode::Read);
        lm.audit().unwrap();
    }

    // ---------------- lending (OPT) ----------------

    #[test]
    fn prepared_update_lock_is_lendable() {
        let (mut lm, o) = setup(true, 2);
        lm.request(o[1], 9, LockMode::Update);
        lm.mark_prepared(o[1]);
        let out = lm.request(o[2], 9, LockMode::Read);
        assert_eq!(
            out,
            RequestOutcome::Granted {
                borrowed_from: vec![o[1]]
            }
        );
        assert!(lm.has_live_borrows(o[2]));
        assert_eq!(lm.borrowers_of(o[1]).collect::<Vec<_>>(), vec![o[2]]);
        assert_eq!(lm.borrow_grants(), 1);
        lm.audit().unwrap();
    }

    #[test]
    fn lending_disabled_without_opt() {
        let (mut lm, o) = setup(false, 2);
        lm.request(o[1], 9, LockMode::Update);
        lm.mark_prepared(o[1]);
        let out = lm.request(o[2], 9, LockMode::Read);
        assert!(matches!(out, RequestOutcome::Blocked));
    }

    #[test]
    fn mark_prepared_unblocks_existing_waiters() {
        let (mut lm, o) = setup(true, 2);
        lm.request(o[1], 9, LockMode::Update);
        let out = lm.request(o[2], 9, LockMode::Update);
        assert!(matches!(out, RequestOutcome::Blocked));
        let grants = lm.mark_prepared(o[1]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, o[2]);
        assert_eq!(grants[0].borrowed_from, vec![o[1]]);
        lm.audit().unwrap();
    }

    #[test]
    fn lender_commit_dissolves_edges() {
        let (mut lm, o) = setup(true, 2);
        lm.request(o[1], 9, LockMode::Update);
        lm.mark_prepared(o[1]);
        lm.request(o[2], 9, LockMode::Update);
        let borrowers = lm.settle_borrows(o[1]);
        assert_eq!(borrowers, vec![o[2]]);
        assert!(!lm.has_live_borrows(o[2]));
        lm.release_all(o[1]);
        lm.audit().unwrap();
    }

    #[test]
    fn borrower_abort_drops_edges() {
        let (mut lm, o) = setup(true, 2);
        lm.request(o[1], 9, LockMode::Update);
        lm.mark_prepared(o[1]);
        lm.request(o[2], 9, LockMode::Read);
        lm.drop_borrower(o[2]);
        lm.release_all(o[2]);
        assert!(lm.borrowers_of(o[1]).next().is_none());
        lm.audit().unwrap();
    }

    #[test]
    fn multiple_borrowers_from_one_lender() {
        let (mut lm, o) = setup(true, 3);
        lm.request(o[1], 9, LockMode::Update);
        lm.request(o[1], 10, LockMode::Update);
        lm.mark_prepared(o[1]);
        assert!(granted(&lm.request(o[2], 9, LockMode::Update)));
        assert!(granted(&lm.request(o[3], 10, LockMode::Update)));
        // settle_borrows returns borrowers sorted by seq already
        assert_eq!(lm.settle_borrows(o[1]), vec![o[2], o[3]]);
        lm.audit().unwrap();
    }

    #[test]
    fn borrow_from_multiple_lenders() {
        let (mut lm, o) = setup(true, 3);
        lm.request(o[1], 9, LockMode::Update);
        lm.request(o[2], 10, LockMode::Update);
        lm.mark_prepared(o[1]);
        lm.mark_prepared(o[2]);
        assert!(granted(&lm.request(o[3], 9, LockMode::Read)));
        assert!(granted(&lm.request(o[3], 10, LockMode::Read)));
        let mut lenders: Vec<_> = lm.lenders_of(o[3]).collect();
        lenders.sort_unstable_by_key(|&l| lm.owner_seq(l).unwrap());
        assert_eq!(lenders, vec![o[1], o[2]]);
        // first lender decides; the borrow from the second is still live
        lm.settle_borrows(o[1]);
        assert!(lm.has_live_borrows(o[3]));
        lm.settle_borrows(o[2]);
        assert!(!lm.has_live_borrows(o[3]));
    }

    #[test]
    fn lending_does_not_bypass_queue() {
        let (mut lm, o) = setup(true, 3);
        lm.request(o[1], 9, LockMode::Update);
        lm.request(o[2], 9, LockMode::Update); // queues (1 not prepared yet)
        lm.mark_prepared(o[1]); // grants 2 by borrowing
                                // 3 arrives now; queue is empty so it can also borrow? No: 2 now
                                // *holds* an update lock and is active, so 3 must wait.
        assert_eq!(
            lm.request(o[3], 9, LockMode::Update),
            RequestOutcome::Blocked
        );
        assert_eq!(lm.blockers_of(o[3]), vec![o[2]]);
        lm.audit().unwrap();
    }

    #[test]
    fn blockers_exclude_lendable_holders() {
        let (mut lm, o) = setup(true, 3);
        lm.request(o[1], 9, LockMode::Update);
        lm.request(o[2], 9, LockMode::Update); // blocked by 1 (active)
        assert_eq!(lm.blockers_of(o[2]), vec![o[1]]);
        lm.request(o[3], 9, LockMode::Update); // blocked by 1 and queued 2
        assert_eq!(lm.blockers_of(o[3]), vec![o[1], o[2]]);
        let grants = lm.mark_prepared(o[1]);
        // 2 borrows; 3 blocked by 2 only (1 is lendable now)
        assert_eq!(grants.len(), 1);
        assert_eq!(lm.blockers_of(o[3]), vec![o[2]]);
    }

    #[test]
    fn waiter_behind_borrower_unblocks_in_order() {
        // lender prepared; two waiters queue behind an active holder;
        // the queue drains in order once the active holder leaves.
        let (mut lm, o) = setup(true, 3);
        lm.request(o[1], 9, LockMode::Update); // will prepare (lender)
        lm.request(o[2], 9, LockMode::Update); // active waiter
        lm.request(o[3], 9, LockMode::Update); // behind 2
        let grants = lm.mark_prepared(o[1]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, o[2]); // borrows from 1
                                           // 3 still blocked by active borrower 2
        assert_eq!(lm.blockers_of(o[3]), vec![o[2]]);
        lm.drop_borrower(o[2]);
        lm.settle_borrows(o[2]);
        let grants = lm.release_all(o[2]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, o[3]);
        assert_eq!(grants[0].borrowed_from, vec![o[1]]); // 1 still prepared
        lm.audit().unwrap();
    }

    #[test]
    fn read_borrowers_share_the_lent_page() {
        let (mut lm, o) = setup(true, 4);
        lm.request(o[1], 9, LockMode::Update);
        lm.mark_prepared(o[1]);
        // several concurrent read borrowers are mutually compatible
        assert!(granted(&lm.request(o[2], 9, LockMode::Read)));
        assert!(granted(&lm.request(o[3], 9, LockMode::Read)));
        assert!(granted(&lm.request(o[4], 9, LockMode::Read)));
        assert_eq!(lm.settle_borrows(o[1]), vec![o[2], o[3], o[4]]);
        lm.audit().unwrap();
    }

    #[test]
    fn update_borrower_blocks_later_readers() {
        let (mut lm, o) = setup(true, 3);
        lm.request(o[1], 9, LockMode::Update);
        lm.mark_prepared(o[1]);
        assert!(granted(&lm.request(o[2], 9, LockMode::Update))); // borrows
                                                                  // a later reader conflicts with the *active* borrower
        assert!(matches!(
            lm.request(o[3], 9, LockMode::Read),
            RequestOutcome::Blocked
        ));
        lm.audit().unwrap();
    }

    #[test]
    fn settle_is_idempotent_and_isolated() {
        let (mut lm, o) = setup(true, 3);
        lm.request(o[1], 9, LockMode::Update);
        lm.request(o[2], 10, LockMode::Update);
        lm.mark_prepared(o[1]);
        lm.mark_prepared(o[2]);
        lm.request(o[3], 9, LockMode::Read); // borrows from 1
        lm.request(o[3], 10, LockMode::Read); // borrows from 2
        assert_eq!(lm.settle_borrows(o[1]), vec![o[3]]);
        assert!(lm.settle_borrows(o[1]).is_empty(), "second settle is empty");
        assert!(lm.has_live_borrows(o[3]), "edge to lender 2 must survive");
        assert_eq!(lm.settle_borrows(o[2]), vec![o[3]]);
        assert!(!lm.has_live_borrows(o[3]));
    }

    #[test]
    fn release_on_lockless_owner_is_a_noop() {
        let (mut lm, o) = setup(false, 1);
        assert!(lm.release_all(o[1]).is_empty());
        assert!(lm.release_read_locks(o[1]).is_empty());
        lm.drop_borrower(o[1]);
        assert!(lm.settle_borrows(o[1]).is_empty());
        lm.audit().unwrap();
    }

    #[test]
    fn waiting_count_tracks_queues() {
        let (mut lm, o) = setup(false, 3);
        lm.request(o[1], 9, LockMode::Update);
        lm.request(o[2], 9, LockMode::Update);
        lm.request(o[3], 9, LockMode::Update);
        assert_eq!(lm.waiting_count(), 2);
        lm.release_all(o[1]);
        assert_eq!(lm.waiting_count(), 1);
        lm.release_all(o[2]);
        assert_eq!(lm.waiting_count(), 0);
    }

    #[test]
    fn pages_held_and_mode_queries() {
        let (mut lm, o) = setup(false, 2);
        lm.request(o[1], 9, LockMode::Read);
        lm.request(o[1], 10, LockMode::Update);
        assert_eq!(lm.pages_held(o[1]), 2);
        assert_eq!(lm.mode_held(o[1], 9), Some(LockMode::Read));
        assert_eq!(lm.mode_held(o[1], 10), Some(LockMode::Update));
        assert_eq!(lm.mode_held(o[1], 11), None);
        assert_eq!(lm.pages_held(o[2]), 0);
        assert!(!lm.is_prepared(o[1]));
        lm.mark_prepared(o[1]);
        assert!(lm.is_prepared(o[1]));
    }

    #[test]
    fn borrow_grant_counter_counts_page_grants_not_edges() {
        let (mut lm, o) = setup(true, 4);
        lm.request(o[1], 9, LockMode::Read);
        lm.request(o[2], 9, LockMode::Read);
        lm.mark_prepared(o[1]);
        lm.mark_prepared(o[2]);
        // reads are compatible with the prepared read-holders: no borrow
        assert!(granted(&lm.request(o[3], 9, LockMode::Read)));
        assert_eq!(lm.borrow_grants(), 0);
        lm.release_all(o[3]);
        // an update through two prepared read-holders is one borrow
        // grant with two lenders
        assert!(granted(&lm.request(o[4], 9, LockMode::Update)));
        assert_eq!(lm.borrow_grants(), 1);
        let mut lenders: Vec<_> = lm.lenders_of(o[4]).collect();
        lenders.sort_unstable_by_key(|&l| lm.owner_seq(l).unwrap());
        assert_eq!(lenders, vec![o[1], o[2]]);
    }

    #[test]
    fn audit_detects_conflicting_holders() {
        let (mut lm, o) = setup(false, 2);
        lm.request(o[1], 9, LockMode::Update);
        // Corrupt the table directly to prove audit sees it.
        let pi = lm.page_slot(9);
        lm.pages[pi].holders.push((o[2].0, LockMode::Update));
        assert!(lm.audit().is_err());
    }

    #[test]
    #[should_panic(expected = "already has a waiting request")]
    fn double_wait_panics() {
        let (mut lm, o) = setup(false, 2);
        lm.request(o[1], 9, LockMode::Update);
        lm.request(o[2], 9, LockMode::Update);
        lm.request(o[2], 10, LockMode::Update);
    }

    // ---------------- dense-storage specifics ----------------

    /// Grant order on bulk release depends only on page numbers, never
    /// on the order locks were acquired (the `held` list is maintained
    /// sorted, replacing the historical sort-before-drain workaround).
    #[test]
    fn grant_order_is_ascending_by_page_regardless_of_acquisition_order() {
        for acq in [[3u64, 9, 5], [9, 5, 3], [5, 3, 9]] {
            let (mut lm, o) = setup(false, 4);
            for &p in &acq {
                assert!(granted(&lm.request(o[1], p, LockMode::Update)));
            }
            // Waiters arrive in descending-page order, one per page.
            for (w, p) in [(2usize, 9u64), (3, 5), (4, 3)] {
                assert!(matches!(
                    lm.request(o[w], p, LockMode::Update),
                    RequestOutcome::Blocked
                ));
            }
            let grants = lm.release_all(o[1]);
            let pages: Vec<PageId> = grants.iter().map(|g| g.page).collect();
            assert_eq!(
                pages,
                vec![3, 5, 9],
                "acquisition order {acq:?} leaked into grant order"
            );
            lm.audit().unwrap();
        }
    }

    /// The same insertion-order independence holds for the lending path
    /// through `mark_prepared`.
    #[test]
    fn prepared_lending_grants_ascending_by_page() {
        for acq in [[3u64, 9, 5], [9, 5, 3]] {
            let (mut lm, o) = setup(true, 4);
            for &p in &acq {
                lm.request(o[1], p, LockMode::Update);
            }
            lm.request(o[2], 9, LockMode::Update);
            lm.request(o[3], 5, LockMode::Update);
            lm.request(o[4], 3, LockMode::Update);
            let grants = lm.mark_prepared(o[1]);
            assert_eq!(
                grants.iter().map(|g| g.page).collect::<Vec<_>>(),
                vec![3, 5, 9]
            );
            lm.audit().unwrap();
        }
    }

    #[test]
    fn owner_slots_are_reused_and_seqs_tracked() {
        let mut lm = LockManager::new(false);
        let a = lm.register_owner(10);
        let b = lm.register_owner(11);
        assert_eq!(lm.registered_count(), 2);
        assert_eq!(lm.owner_seq(a), Some(10));
        lm.unregister(a);
        assert_eq!(lm.registered_count(), 1);
        let c = lm.register_owner(12);
        assert_eq!(c.index(), a.index(), "freed slot is reused");
        assert_eq!(lm.owner_seq(c), Some(12));
        assert_eq!(lm.owner_seq(b), Some(11));
        lm.audit().unwrap();
    }

    #[test]
    #[should_panic(expected = "live lock state")]
    fn unregister_with_held_locks_panics() {
        let mut lm = LockManager::new(false);
        let a = lm.register_owner(1);
        lm.request(a, 9, LockMode::Update);
        lm.unregister(a);
    }

    /// With a page modulus, large page ids fold into a bounded table.
    #[test]
    fn page_modulus_bounds_the_table() {
        let mut lm = LockManager::for_pages(false, 8);
        let a = lm.register_owner(1);
        let b = lm.register_owner(2);
        assert!(granted(&lm.request(a, 1_000_003, LockMode::Update)));
        assert!(lm.pages.len() <= 8);
        assert_eq!(lm.mode_held(a, 1_000_003), Some(LockMode::Update));
        assert!(matches!(
            lm.request(b, 1_000_003, LockMode::Read),
            RequestOutcome::Blocked
        ));
        let grants = lm.release_all(a);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, b);
        lm.release_all(b);
        lm.audit().unwrap();
    }
}

// Seeded-loop generative tests (former proptest suite, rewritten as
// deterministic randomized loops over the same op space).
#[cfg(test)]
mod generative_tests {
    use super::*;
    use simkernel::SimRng;

    #[derive(Debug, Clone)]
    enum Op {
        Request { owner: u8, page: u8, update: bool },
        ReleaseAll { owner: u8 },
        ReleaseReads { owner: u8 },
        Prepare { owner: u8 },
        Settle { owner: u8 },
    }

    fn random_op(r: &mut SimRng) -> Op {
        let owner = r.uniform_u64(0, 7) as u8;
        match r.uniform_u64(0, 4) {
            0 => Op::Request {
                owner,
                page: r.uniform_u64(0, 5) as u8,
                update: r.chance(0.5),
            },
            1 => Op::ReleaseAll { owner },
            2 => Op::ReleaseReads { owner },
            3 => Op::Prepare { owner },
            _ => Op::Settle { owner },
        }
    }

    fn random_ops(r: &mut SimRng, max_len: usize) -> Vec<Op> {
        let len = r.uniform_usize(1, max_len);
        (0..len).map(|_| random_op(r)).collect()
    }

    /// Eight owners registered with `seq == index`, as the op space uses.
    fn table_with_owners(lending: bool) -> (LockManager, Vec<OwnerId>) {
        let mut lm = LockManager::new(lending);
        let owners = (0..8).map(|i| lm.register_owner(i)).collect();
        (lm, owners)
    }

    /// Random op sequences keep every audit invariant intact, with and
    /// without lending.
    #[test]
    fn random_ops_never_violate_invariants() {
        let mut r = SimRng::new(0x10CC_7AB1);
        for case in 0..300 {
            let lending = case % 2 == 0;
            let ops = random_ops(&mut r, 119);
            let (mut lm, o) = table_with_owners(lending);
            let mut prepared = std::collections::HashSet::new();
            for op in ops {
                match op {
                    Op::Request {
                        owner,
                        page,
                        update,
                    } => {
                        let owner = o[owner as usize];
                        if lm.is_waiting(owner) || prepared.contains(&owner) {
                            continue;
                        }
                        let mode = if update {
                            LockMode::Update
                        } else {
                            LockMode::Read
                        };
                        let _ = lm.request(owner, page as u64, mode);
                    }
                    Op::ReleaseAll { owner } => {
                        let owner = o[owner as usize];
                        lm.drop_borrower(owner);
                        lm.settle_borrows(owner);
                        lm.release_all(owner);
                        prepared.remove(&owner);
                    }
                    Op::ReleaseReads { owner } => {
                        lm.release_read_locks(o[owner as usize]);
                    }
                    Op::Prepare { owner } => {
                        let owner = o[owner as usize];
                        // only owners not waiting and not already prepared
                        if !lm.is_waiting(owner)
                            && !prepared.contains(&owner)
                            && lm.pages_held(owner) > 0
                            && !lm.has_live_borrows(owner)
                        {
                            lm.mark_prepared(owner);
                            prepared.insert(owner);
                        }
                    }
                    Op::Settle { owner } => {
                        let owner = o[owner as usize];
                        if prepared.contains(&owner) {
                            lm.settle_borrows(owner);
                            lm.release_all(owner);
                            prepared.remove(&owner);
                        }
                    }
                }
                if let Err(e) = lm.audit() {
                    panic!("audit failed (lending={lending}): {e}");
                }
            }
        }
    }

    /// Without lending, conflicting pages serialize: at most one update
    /// holder, and never an update holder together with any other holder.
    #[test]
    fn no_lending_means_strict_exclusivity() {
        let mut r = SimRng::new(0x10CC_7AB2);
        for _ in 0..300 {
            let ops = random_ops(&mut r, 99);
            let (mut lm, o) = table_with_owners(false);
            for op in ops {
                match op {
                    Op::Request {
                        owner,
                        page,
                        update,
                    } => {
                        let owner = o[owner as usize];
                        if lm.is_waiting(owner) {
                            continue;
                        }
                        let mode = if update {
                            LockMode::Update
                        } else {
                            LockMode::Read
                        };
                        let _ = lm.request(owner, page as u64, mode);
                    }
                    Op::ReleaseAll { owner } => {
                        lm.release_all(o[owner as usize]);
                    }
                    _ => {}
                }
                assert!(lm.audit().is_ok());
            }
        }
    }
}
