//! The per-site lock table.
//!
//! Semantics implemented (paper §3, §4.2):
//!
//! * **Modes**: `Read` and `Update`; read–read is the only compatible
//!   pair. Transactions "set read locks on pages that they read and
//!   update locks on pages that need to be updated".
//! * **Strictness**: locks are released only by the explicit release
//!   calls driven by the commit protocol (read locks at PREPARE
//!   receipt, update locks when the global decision is implemented).
//! * **Fairness**: one FCFS queue per page; a new request never
//!   bypasses a non-empty queue, and on release the queue head is
//!   granted greedily (consecutive compatible requests are granted
//!   together so concurrent readers batch).
//! * **Upgrades**: a holder of a read lock may request an update lock;
//!   upgrades are checked against the *holders only* (they do not go to
//!   the back of the queue, the standard treatment that avoids trivial
//!   self-deadlock through one's own read lock).
//! * **Lending (OPT)**: when `opt_lending` is on, a conflicting holder
//!   that is in the *prepared* state does not block the requester; the
//!   grant is recorded as a borrow edge lender → borrower. Lending
//!   never bypasses the FCFS queue.
//!
//! The table never schedules events and never decides policy: all
//! outcomes (grants released by state changes, borrowers to abort) are
//! returned to the caller.

use std::collections::{HashMap, HashSet, VecDeque};

/// A page (data item) identifier, unique within a site.
pub type PageId = u64;

/// A lock-owner identifier — in the engine, a cohort. Unique across the
/// whole system.
pub type OwnerId = u64;

/// Lock mode under strict 2PL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// Shared access.
    Read,
    /// Exclusive access (the paper's "update lock").
    Update,
}

impl LockMode {
    /// Read–read is the only compatible pair.
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        self == LockMode::Read && other == LockMode::Read
    }
}

/// Outcome of [`LockManager::request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Lock granted. `borrowed_from` lists the prepared lenders whose
    /// conflicting locks were borrowed through (empty for a plain
    /// grant).
    Granted { borrowed_from: Vec<OwnerId> },
    /// The owner already holds the page in this or a stronger mode.
    AlreadyHeld,
    /// The request queued. `blockers` is the current set of owners the
    /// requester waits for (conflicting holders plus conflicting queued
    /// requests ahead of it) — the engine feeds these to the deadlock
    /// detector.
    Blocked { blockers: Vec<OwnerId> },
}

/// A grant released by a state change (release, abort, prepare).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// The owner whose waiting request was just granted.
    pub owner: OwnerId,
    /// The granted page.
    pub page: PageId,
    /// The granted mode.
    pub mode: LockMode,
    /// Prepared lenders borrowed through (empty for a plain grant).
    pub borrowed_from: Vec<OwnerId>,
}

#[derive(Debug, Clone)]
struct Holder {
    owner: OwnerId,
    mode: LockMode,
}

#[derive(Debug, Clone)]
struct WaitReq {
    owner: OwnerId,
    mode: LockMode,
    /// True when the owner already holds the page in `Read` mode and is
    /// waiting to upgrade.
    upgrade: bool,
}

#[derive(Debug, Default)]
struct PageLock {
    holders: Vec<Holder>,
    queue: VecDeque<WaitReq>,
}

/// One site's lock table (see module docs).
#[derive(Debug)]
pub struct LockManager {
    opt_lending: bool,
    pages: HashMap<PageId, PageLock>,
    /// Strongest mode held, per owner per page — drives release calls.
    held: HashMap<OwnerId, HashMap<PageId, LockMode>>,
    prepared: HashSet<OwnerId>,
    /// The single outstanding waiting request per owner, if any.
    waiting: HashMap<OwnerId, PageId>,
    /// lender → borrowers with live borrow edges.
    lends: HashMap<OwnerId, HashSet<OwnerId>>,
    /// borrower → lenders with live borrow edges.
    borrows: HashMap<OwnerId, HashSet<OwnerId>>,
    /// Total page-grants that involved borrowing (metric).
    borrow_grants: u64,
}

impl LockManager {
    /// A lock table. `opt_lending` enables the OPT borrowing rule.
    pub fn new(opt_lending: bool) -> Self {
        LockManager {
            opt_lending,
            pages: HashMap::new(),
            held: HashMap::new(),
            prepared: HashSet::new(),
            waiting: HashMap::new(),
            lends: HashMap::new(),
            borrows: HashMap::new(),
            borrow_grants: 0,
        }
    }

    /// Whether the OPT lending rule is active.
    pub fn opt_lending(&self) -> bool {
        self.opt_lending
    }

    /// Total page-grants that went through at least one borrow edge.
    pub fn borrow_grants(&self) -> u64 {
        self.borrow_grants
    }

    /// Pages currently locked by `owner` (any mode).
    pub fn pages_held(&self, owner: OwnerId) -> usize {
        self.held.get(&owner).map_or(0, |m| m.len())
    }

    /// Mode `owner` holds on `page`, if any.
    pub fn mode_held(&self, owner: OwnerId, page: PageId) -> Option<LockMode> {
        self.held.get(&owner).and_then(|m| m.get(&page).copied())
    }

    /// True if `owner` has a queued (waiting) request.
    pub fn is_waiting(&self, owner: OwnerId) -> bool {
        self.waiting.contains_key(&owner)
    }

    /// Number of owners currently waiting in some queue.
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// True if `owner` has been marked prepared.
    pub fn is_prepared(&self, owner: OwnerId) -> bool {
        self.prepared.contains(&owner)
    }

    /// Current lenders of `owner` (owners whose data it borrowed and
    /// whose global decision is still pending).
    pub fn lenders_of(&self, owner: OwnerId) -> impl Iterator<Item = OwnerId> + '_ {
        self.borrows.get(&owner).into_iter().flatten().copied()
    }

    /// True if `owner` borrowed from at least one still-undecided lender.
    pub fn has_live_borrows(&self, owner: OwnerId) -> bool {
        self.borrows.get(&owner).is_some_and(|s| !s.is_empty())
    }

    /// Current borrowers of `owner`.
    pub fn borrowers_of(&self, owner: OwnerId) -> impl Iterator<Item = OwnerId> + '_ {
        self.lends.get(&owner).into_iter().flatten().copied()
    }

    // ------------------------------------------------------------------
    // Requests
    // ------------------------------------------------------------------

    /// `owner` requests `page` in `mode`.
    pub fn request(&mut self, owner: OwnerId, page: PageId, mode: LockMode) -> RequestOutcome {
        assert!(
            !self.waiting.contains_key(&owner),
            "owner {owner} already has a waiting request"
        );
        let held_mode = self.mode_held(owner, page);
        match held_mode {
            Some(m) if m >= mode => RequestOutcome::AlreadyHeld,
            Some(_) => self.request_upgrade(owner, page),
            None => self.request_fresh(owner, page, mode),
        }
    }

    fn request_fresh(&mut self, owner: OwnerId, page: PageId, mode: LockMode) -> RequestOutcome {
        let entry = self.pages.entry(page).or_default();
        // Fairness: never bypass a non-empty queue.
        if entry.queue.is_empty() {
            let mut lenders = Vec::new();
            let mut hard = Vec::new();
            for h in &entry.holders {
                debug_assert_ne!(h.owner, owner);
                if h.mode.compatible(mode) {
                    continue;
                }
                if self.opt_lending && self.prepared.contains(&h.owner) {
                    lenders.push(h.owner);
                } else {
                    hard.push(h.owner);
                }
            }
            if hard.is_empty() {
                entry.holders.push(Holder { owner, mode });
                self.held.entry(owner).or_default().insert(page, mode);
                self.note_borrows(owner, &lenders);
                return RequestOutcome::Granted {
                    borrowed_from: lenders,
                };
            }
        }
        let entry = self.pages.get_mut(&page).expect("entry just created");
        entry.queue.push_back(WaitReq {
            owner,
            mode,
            upgrade: false,
        });
        self.waiting.insert(owner, page);
        RequestOutcome::Blocked {
            blockers: self.compute_blockers(owner, page),
        }
    }

    fn request_upgrade(&mut self, owner: OwnerId, page: PageId) -> RequestOutcome {
        let entry = self
            .pages
            .get_mut(&page)
            .expect("holder implies page entry");
        let mut lenders = Vec::new();
        let mut hard = Vec::new();
        for h in &entry.holders {
            if h.owner == owner {
                continue;
            }
            // Any other holder conflicts with an upgrade to Update.
            if self.opt_lending && self.prepared.contains(&h.owner) {
                lenders.push(h.owner);
            } else {
                hard.push(h.owner);
            }
        }
        if hard.is_empty() {
            for h in entry.holders.iter_mut().filter(|h| h.owner == owner) {
                h.mode = LockMode::Update;
            }
            self.held
                .entry(owner)
                .or_default()
                .insert(page, LockMode::Update);
            self.note_borrows(owner, &lenders);
            return RequestOutcome::Granted {
                borrowed_from: lenders,
            };
        }
        // Upgrades wait at the *front* of the queue (they hold a read
        // lock already; anything granted ahead of them could only
        // deadlock against that read lock).
        entry.queue.push_front(WaitReq {
            owner,
            mode: LockMode::Update,
            upgrade: true,
        });
        self.waiting.insert(owner, page);
        RequestOutcome::Blocked {
            blockers: self.compute_blockers(owner, page),
        }
    }

    fn note_borrows(&mut self, borrower: OwnerId, lenders: &[OwnerId]) {
        if lenders.is_empty() {
            return;
        }
        self.borrow_grants += 1;
        for &l in lenders {
            debug_assert!(self.prepared.contains(&l));
            self.lends.entry(l).or_default().insert(borrower);
            self.borrows.entry(borrower).or_default().insert(l);
        }
    }

    /// Live blocker set for a waiting owner: conflicting (non-lendable)
    /// holders plus conflicting queued requests ahead of it. Used to
    /// build the global wait-for graph at deadlock-check time, so it is
    /// always computed from live state (no stale edges).
    pub fn compute_blockers(&self, owner: OwnerId, page: PageId) -> Vec<OwnerId> {
        let Some(entry) = self.pages.get(&page) else {
            return Vec::new();
        };
        let Some(pos) = entry.queue.iter().position(|w| w.owner == owner) else {
            return Vec::new();
        };
        let mode = entry.queue[pos].mode;
        let mut blockers = Vec::new();
        for h in &entry.holders {
            if h.owner == owner {
                continue; // own read lock during an upgrade wait
            }
            if h.mode.compatible(mode) {
                continue;
            }
            if self.opt_lending && self.prepared.contains(&h.owner) {
                continue; // lendable: would not block once queue clears
            }
            blockers.push(h.owner);
        }
        for w in entry.queue.iter().take(pos) {
            if !w.mode.compatible(mode) || !mode.compatible(w.mode) {
                blockers.push(w.owner);
            }
        }
        blockers.sort_unstable();
        blockers.dedup();
        blockers
    }

    /// Blockers of `owner`'s outstanding request, if it has one.
    pub fn blockers_of(&self, owner: OwnerId) -> Vec<OwnerId> {
        match self.waiting.get(&owner) {
            Some(&page) => self.compute_blockers(owner, page),
            None => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // State changes
    // ------------------------------------------------------------------

    /// Mark `owner` prepared. With lending enabled this may unblock
    /// waiters on every page it holds; the resulting grants are
    /// returned.
    pub fn mark_prepared(&mut self, owner: OwnerId) -> Vec<Grant> {
        let newly = self.prepared.insert(owner);
        debug_assert!(newly, "owner {owner} prepared twice");
        if !self.opt_lending {
            return Vec::new();
        }
        // Sorted so grant order is independent of HashMap iteration order
        // (runs must be bit-for-bit reproducible given a seed).
        let mut pages: Vec<PageId> = self
            .held
            .get(&owner)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        pages.sort_unstable();
        let mut grants = Vec::new();
        for p in pages {
            self.drain_queue(p, &mut grants);
        }
        grants
    }

    /// Release `owner`'s read locks (the paper: on PREPARE receipt "the
    /// cohort releases all its read locks but retains its update
    /// locks"). Returns grants unblocked by the release.
    pub fn release_read_locks(&mut self, owner: OwnerId) -> Vec<Grant> {
        let mut pages: Vec<PageId> = self
            .held
            .get(&owner)
            .map(|m| {
                m.iter()
                    .filter(|&(_, &mode)| mode == LockMode::Read)
                    .map(|(&p, _)| p)
                    .collect()
            })
            .unwrap_or_default();
        pages.sort_unstable();
        let mut grants = Vec::new();
        for p in pages {
            self.remove_holder(owner, p);
            self.drain_queue(p, &mut grants);
        }
        grants
    }

    /// Release every lock `owner` holds and cancel its waiting request,
    /// if any. Clears prepared status. Returns grants unblocked by the
    /// release.
    ///
    /// Borrow edges are *not* touched — call [`LockManager::settle_borrows`]
    /// (for a decided lender) and/or [`LockManager::drop_borrower`] (for
    /// an aborting borrower) first.
    pub fn release_all(&mut self, owner: OwnerId) -> Vec<Grant> {
        let mut grants = Vec::new();
        if let Some(page) = self.waiting.remove(&owner) {
            if let Some(entry) = self.pages.get_mut(&page) {
                entry.queue.retain(|w| w.owner != owner);
            }
            // Removing a queued conflicting request can unblock those behind it.
            self.drain_queue(page, &mut grants);
        }
        let mut pages: Vec<PageId> = self
            .held
            .remove(&owner)
            .map(|m| m.into_keys().collect())
            .unwrap_or_default();
        pages.sort_unstable();
        for p in pages {
            self.remove_holder_entry_only(owner, p);
            self.drain_queue(p, &mut grants);
        }
        self.prepared.remove(&owner);
        grants
    }

    /// A lender's global decision arrived: dissolve its borrow edges and
    /// return its (former) borrowers. On commit the engine re-checks
    /// each borrower's shelf condition; on abort it aborts them all —
    /// the abort chain of OPT, bounded at length one.
    pub fn settle_borrows(&mut self, lender: OwnerId) -> Vec<OwnerId> {
        let mut borrowers: Vec<OwnerId> = self
            .lends
            .remove(&lender)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        borrowers.sort_unstable(); // deterministic processing order
        for &b in &borrowers {
            if let Some(ls) = self.borrows.get_mut(&b) {
                ls.remove(&lender);
                if ls.is_empty() {
                    self.borrows.remove(&b);
                }
            }
        }
        borrowers
    }

    /// A borrower is going away (abort or full release): drop its
    /// borrow edges from both directions.
    pub fn drop_borrower(&mut self, borrower: OwnerId) {
        if let Some(lenders) = self.borrows.remove(&borrower) {
            for l in lenders {
                if let Some(bs) = self.lends.get_mut(&l) {
                    bs.remove(&borrower);
                    if bs.is_empty() {
                        self.lends.remove(&l);
                    }
                }
            }
        }
    }

    fn remove_holder(&mut self, owner: OwnerId, page: PageId) {
        self.remove_holder_entry_only(owner, page);
        if let Some(m) = self.held.get_mut(&owner) {
            m.remove(&page);
            if m.is_empty() {
                self.held.remove(&owner);
            }
        }
    }

    fn remove_holder_entry_only(&mut self, owner: OwnerId, page: PageId) {
        if let Some(entry) = self.pages.get_mut(&page) {
            entry.holders.retain(|h| h.owner != owner);
            if entry.holders.is_empty() && entry.queue.is_empty() {
                self.pages.remove(&page);
            }
        }
    }

    /// Greedily grant from the head of `page`'s queue.
    fn drain_queue(&mut self, page: PageId, grants: &mut Vec<Grant>) {
        loop {
            let Some(entry) = self.pages.get(&page) else {
                return;
            };
            let Some(head) = entry.queue.front() else {
                return;
            };
            let owner = head.owner;
            let mode = head.mode;
            let upgrade = head.upgrade;
            let mut lenders = Vec::new();
            let mut grantable = true;
            for h in &entry.holders {
                if h.owner == owner {
                    debug_assert!(upgrade);
                    continue;
                }
                if h.mode.compatible(mode) {
                    continue;
                }
                if self.opt_lending && self.prepared.contains(&h.owner) {
                    lenders.push(h.owner);
                } else {
                    grantable = false;
                    break;
                }
            }
            if !grantable {
                return;
            }
            let entry = self.pages.get_mut(&page).expect("checked above");
            entry.queue.pop_front();
            if upgrade {
                // Promote the read lock in place; if the owner released
                // its read locks while the upgrade was queued (legal for
                // a caller, even if the engine never does it), the
                // upgrade degenerates into a fresh grant.
                let mut promoted = false;
                for h in entry.holders.iter_mut().filter(|h| h.owner == owner) {
                    h.mode = LockMode::Update;
                    promoted = true;
                }
                if !promoted {
                    entry.holders.push(Holder { owner, mode });
                }
            } else {
                entry.holders.push(Holder { owner, mode });
            }
            self.held.entry(owner).or_default().insert(page, mode);
            self.waiting.remove(&owner);
            self.note_borrows(owner, &lenders);
            grants.push(Grant {
                owner,
                page,
                mode,
                borrowed_from: lenders,
            });
        }
    }

    // ------------------------------------------------------------------
    // Auditing (used by the integration test-suite)
    // ------------------------------------------------------------------

    /// Check internal invariants; returns a description of the first
    /// violation found, if any.
    ///
    /// 1. No two holders of a page conflict unless one of them is
    ///    prepared and lending is enabled.
    /// 2. A non-empty queue's head must not be grantable (no missed
    ///    grants).
    /// 3. The `waiting` index matches the queues exactly.
    /// 4. The `held` index matches the holder lists exactly.
    /// 5. Borrow edges reference prepared lenders only.
    pub fn audit(&self) -> Result<(), String> {
        for (&page, entry) in &self.pages {
            for (i, a) in entry.holders.iter().enumerate() {
                for b in entry.holders.iter().skip(i + 1) {
                    if a.owner == b.owner {
                        return Err(format!("page {page}: duplicate holder {}", a.owner));
                    }
                    if !a.mode.compatible(b.mode) || !b.mode.compatible(a.mode) {
                        let lendable = self.opt_lending
                            && (self.prepared.contains(&a.owner)
                                || self.prepared.contains(&b.owner));
                        if !lendable {
                            return Err(format!(
                                "page {page}: conflicting holders {} and {} with no prepared lender",
                                a.owner, b.owner
                            ));
                        }
                    }
                }
            }
            if let Some(head) = entry.queue.front() {
                let blocked = entry.holders.iter().any(|h| {
                    h.owner != head.owner
                        && !h.mode.compatible(head.mode)
                        && !(self.opt_lending && self.prepared.contains(&h.owner))
                });
                if !blocked {
                    return Err(format!(
                        "page {page}: queue head {} is grantable but still waiting",
                        head.owner
                    ));
                }
            }
            for w in &entry.queue {
                if self.waiting.get(&w.owner) != Some(&page) {
                    return Err(format!(
                        "page {page}: queued owner {} not in waiting index",
                        w.owner
                    ));
                }
            }
        }
        for (&owner, &page) in &self.waiting {
            let ok = self
                .pages
                .get(&page)
                .is_some_and(|e| e.queue.iter().any(|w| w.owner == owner));
            if !ok {
                return Err(format!(
                    "waiting index has {owner}@{page} but no queued request"
                ));
            }
        }
        for (&owner, pages) in &self.held {
            for (&page, &mode) in pages {
                let ok = self
                    .pages
                    .get(&page)
                    .is_some_and(|e| e.holders.iter().any(|h| h.owner == owner && h.mode == mode));
                if !ok {
                    return Err(format!(
                        "held index has {owner}@{page}:{mode:?} but no holder entry"
                    ));
                }
            }
        }
        for (&lender, borrowers) in &self.lends {
            if !self.prepared.contains(&lender) && self.held.contains_key(&lender) {
                return Err(format!(
                    "lender {lender} has live borrows but is not prepared"
                ));
            }
            for &b in borrowers {
                if !self.borrows.get(&b).is_some_and(|s| s.contains(&lender)) {
                    return Err(format!("asymmetric borrow edge {lender} -> {b}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn granted(o: &RequestOutcome) -> bool {
        matches!(o, RequestOutcome::Granted { .. })
    }

    #[test]
    fn read_read_shares() {
        let mut lm = LockManager::new(false);
        assert!(granted(&lm.request(1, 100, LockMode::Read)));
        assert!(granted(&lm.request(2, 100, LockMode::Read)));
        lm.audit().unwrap();
    }

    #[test]
    fn update_excludes() {
        let mut lm = LockManager::new(false);
        assert!(granted(&lm.request(1, 100, LockMode::Update)));
        let out = lm.request(2, 100, LockMode::Read);
        assert_eq!(out, RequestOutcome::Blocked { blockers: vec![1] });
        let out = lm.request(3, 100, LockMode::Update);
        assert_eq!(
            out,
            RequestOutcome::Blocked {
                blockers: vec![1, 2]
            }
        );
        lm.audit().unwrap();
    }

    #[test]
    fn already_held_is_idempotent() {
        let mut lm = LockManager::new(false);
        assert!(granted(&lm.request(1, 5, LockMode::Update)));
        assert_eq!(
            lm.request(1, 5, LockMode::Update),
            RequestOutcome::AlreadyHeld
        );
        assert_eq!(
            lm.request(1, 5, LockMode::Read),
            RequestOutcome::AlreadyHeld
        );
    }

    #[test]
    fn release_grants_fcfs() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Update);
        lm.request(2, 9, LockMode::Update);
        lm.request(3, 9, LockMode::Read);
        lm.request(4, 9, LockMode::Read);
        let grants = lm.release_all(1);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, 2);
        let grants = lm.release_all(2);
        // both reads batch-grant together
        assert_eq!(
            grants.iter().map(|g| g.owner).collect::<Vec<_>>(),
            vec![3, 4]
        );
        lm.audit().unwrap();
    }

    #[test]
    fn new_reader_does_not_bypass_queued_writer() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Read);
        lm.request(2, 9, LockMode::Update); // queues
        let out = lm.request(3, 9, LockMode::Read); // must not bypass 2
        assert!(matches!(out, RequestOutcome::Blocked { .. }));
        if let RequestOutcome::Blocked { blockers } = out {
            assert!(blockers.contains(&2));
        }
        lm.audit().unwrap();
    }

    #[test]
    fn upgrade_succeeds_when_alone() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Read);
        assert!(granted(&lm.request(1, 9, LockMode::Update)));
        assert_eq!(lm.mode_held(1, 9), Some(LockMode::Update));
    }

    #[test]
    fn upgrade_waits_for_other_reader_and_jumps_queue() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Read);
        lm.request(2, 9, LockMode::Read);
        lm.request(3, 9, LockMode::Update); // queues behind readers
        let out = lm.request(1, 9, LockMode::Update); // upgrade, ahead of 3
        assert!(matches!(out, RequestOutcome::Blocked { .. }));
        let grants = lm.release_all(2);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, 1);
        assert_eq!(lm.mode_held(1, 9), Some(LockMode::Update));
        lm.audit().unwrap();
    }

    #[test]
    fn queued_upgrade_survives_read_release() {
        // Regression (found by proptest): owner 5 queues an upgrade
        // behind reader 6, then releases its read locks; when 6 leaves,
        // the upgrade must grant as a fresh update lock with a
        // consistent holder entry.
        let mut lm = LockManager::new(false);
        lm.request(6, 3, LockMode::Read);
        lm.request(5, 3, LockMode::Read);
        assert!(matches!(
            lm.request(5, 3, LockMode::Update),
            RequestOutcome::Blocked { .. }
        ));
        lm.release_read_locks(5);
        lm.audit().unwrap();
        let grants = lm.release_read_locks(6);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, 5);
        assert_eq!(lm.mode_held(5, 3), Some(LockMode::Update));
        lm.audit().unwrap();
    }

    #[test]
    fn release_read_locks_keeps_updates() {
        let mut lm = LockManager::new(false);
        lm.request(1, 1, LockMode::Read);
        lm.request(1, 2, LockMode::Update);
        lm.request(2, 1, LockMode::Update); // waits on the read lock
        let grants = lm.release_read_locks(1);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, 2);
        assert_eq!(lm.mode_held(1, 1), None);
        assert_eq!(lm.mode_held(1, 2), Some(LockMode::Update));
        lm.audit().unwrap();
    }

    #[test]
    fn cancel_waiting_request_on_release_all() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Update);
        lm.request(2, 9, LockMode::Update);
        lm.request(3, 9, LockMode::Read);
        assert!(lm.is_waiting(2));
        // 2 aborts while waiting; 3 is still blocked by 1 (holder).
        let grants = lm.release_all(2);
        assert!(grants.is_empty());
        assert!(!lm.is_waiting(2));
        // now 1 releases: 3 gets the lock
        let grants = lm.release_all(1);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, 3);
        lm.audit().unwrap();
    }

    #[test]
    fn removing_queued_conflict_unblocks_followers() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Read);
        lm.request(2, 9, LockMode::Update); // queued
        lm.request(3, 9, LockMode::Read); // queued behind the update
        let grants = lm.release_all(2); // cancel the update while 1 still holds
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, 3);
        assert_eq!(grants[0].mode, LockMode::Read);
        lm.audit().unwrap();
    }

    // ---------------- lending (OPT) ----------------

    #[test]
    fn prepared_update_lock_is_lendable() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.mark_prepared(1);
        let out = lm.request(2, 9, LockMode::Read);
        assert_eq!(
            out,
            RequestOutcome::Granted {
                borrowed_from: vec![1]
            }
        );
        assert!(lm.has_live_borrows(2));
        assert_eq!(lm.borrowers_of(1).collect::<Vec<_>>(), vec![2]);
        assert_eq!(lm.borrow_grants(), 1);
        lm.audit().unwrap();
    }

    #[test]
    fn lending_disabled_without_opt() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Update);
        lm.mark_prepared(1);
        let out = lm.request(2, 9, LockMode::Read);
        assert!(matches!(out, RequestOutcome::Blocked { .. }));
    }

    #[test]
    fn mark_prepared_unblocks_existing_waiters() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        let out = lm.request(2, 9, LockMode::Update);
        assert!(matches!(out, RequestOutcome::Blocked { .. }));
        let grants = lm.mark_prepared(1);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, 2);
        assert_eq!(grants[0].borrowed_from, vec![1]);
        lm.audit().unwrap();
    }

    #[test]
    fn lender_commit_dissolves_edges() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.mark_prepared(1);
        lm.request(2, 9, LockMode::Update);
        let borrowers = lm.settle_borrows(1);
        assert_eq!(borrowers, vec![2]);
        assert!(!lm.has_live_borrows(2));
        lm.release_all(1);
        lm.audit().unwrap();
    }

    #[test]
    fn borrower_abort_drops_edges() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.mark_prepared(1);
        lm.request(2, 9, LockMode::Read);
        lm.drop_borrower(2);
        lm.release_all(2);
        assert!(lm.borrowers_of(1).next().is_none());
        lm.audit().unwrap();
    }

    #[test]
    fn multiple_borrowers_from_one_lender() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.request(1, 10, LockMode::Update);
        lm.mark_prepared(1);
        assert!(granted(&lm.request(2, 9, LockMode::Update)));
        assert!(granted(&lm.request(3, 10, LockMode::Update)));
        let mut bs = lm.settle_borrows(1);
        bs.sort_unstable();
        assert_eq!(bs, vec![2, 3]);
        lm.audit().unwrap();
    }

    #[test]
    fn borrow_from_multiple_lenders() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.request(2, 10, LockMode::Update);
        lm.mark_prepared(1);
        lm.mark_prepared(2);
        assert!(granted(&lm.request(3, 9, LockMode::Read)));
        assert!(granted(&lm.request(3, 10, LockMode::Read)));
        let mut lenders: Vec<_> = lm.lenders_of(3).collect();
        lenders.sort_unstable();
        assert_eq!(lenders, vec![1, 2]);
        // first lender decides; the borrow from the second is still live
        lm.settle_borrows(1);
        assert!(lm.has_live_borrows(3));
        lm.settle_borrows(2);
        assert!(!lm.has_live_borrows(3));
    }

    #[test]
    fn lending_does_not_bypass_queue() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.request(2, 9, LockMode::Update); // queues (1 not prepared yet)
        lm.mark_prepared(1); // grants 2 by borrowing
                             // 3 arrives now; queue is empty so it can also borrow? No: 2 now
                             // *holds* an update lock and is active, so 3 must wait.
        let out = lm.request(3, 9, LockMode::Update);
        assert_eq!(out, RequestOutcome::Blocked { blockers: vec![2] });
        lm.audit().unwrap();
    }

    #[test]
    fn blockers_exclude_lendable_holders() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.request(2, 9, LockMode::Update); // blocked by 1 (active)
        assert_eq!(lm.blockers_of(2), vec![1]);
        lm.request(3, 9, LockMode::Update); // blocked by 1 and queued 2
        assert_eq!(lm.blockers_of(3), vec![1, 2]);
        let grants = lm.mark_prepared(1);
        // 2 borrows; 3 blocked by 2 only (1 is lendable now)
        assert_eq!(grants.len(), 1);
        assert_eq!(lm.blockers_of(3), vec![2]);
    }

    #[test]
    fn waiter_behind_borrower_unblocks_in_order() {
        // lender prepared; two waiters queue behind an active holder;
        // the queue drains in order once the active holder leaves.
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update); // will prepare (lender)
        lm.request(2, 9, LockMode::Update); // active waiter
        lm.request(3, 9, LockMode::Update); // behind 2
        let grants = lm.mark_prepared(1);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, 2); // borrows from 1
                                        // 3 still blocked by active borrower 2
        assert_eq!(lm.blockers_of(3), vec![2]);
        lm.drop_borrower(2);
        lm.settle_borrows(2);
        let grants = lm.release_all(2);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].owner, 3);
        assert_eq!(grants[0].borrowed_from, vec![1]); // 1 still prepared
        lm.audit().unwrap();
    }

    #[test]
    fn read_borrowers_share_the_lent_page() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.mark_prepared(1);
        // several concurrent read borrowers are mutually compatible
        assert!(granted(&lm.request(2, 9, LockMode::Read)));
        assert!(granted(&lm.request(3, 9, LockMode::Read)));
        assert!(granted(&lm.request(4, 9, LockMode::Read)));
        let mut bs = lm.settle_borrows(1);
        bs.sort_unstable();
        assert_eq!(bs, vec![2, 3, 4]);
        lm.audit().unwrap();
    }

    #[test]
    fn update_borrower_blocks_later_readers() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.mark_prepared(1);
        assert!(granted(&lm.request(2, 9, LockMode::Update))); // borrows
                                                               // a later reader conflicts with the *active* borrower
        assert!(matches!(
            lm.request(3, 9, LockMode::Read),
            RequestOutcome::Blocked { .. }
        ));
        lm.audit().unwrap();
    }

    #[test]
    fn settle_is_idempotent_and_isolated() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Update);
        lm.request(2, 10, LockMode::Update);
        lm.mark_prepared(1);
        lm.mark_prepared(2);
        lm.request(3, 9, LockMode::Read); // borrows from 1
        lm.request(3, 10, LockMode::Read); // borrows from 2
        assert_eq!(lm.settle_borrows(1), vec![3]);
        assert_eq!(
            lm.settle_borrows(1),
            Vec::<u64>::new(),
            "second settle is empty"
        );
        assert!(lm.has_live_borrows(3), "edge to lender 2 must survive");
        assert_eq!(lm.settle_borrows(2), vec![3]);
        assert!(!lm.has_live_borrows(3));
    }

    #[test]
    fn release_all_on_unknown_owner_is_a_noop() {
        let mut lm = LockManager::new(false);
        assert!(lm.release_all(99).is_empty());
        assert!(lm.release_read_locks(99).is_empty());
        lm.drop_borrower(99);
        assert!(lm.settle_borrows(99).is_empty());
        lm.audit().unwrap();
    }

    #[test]
    fn waiting_count_tracks_queues() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Update);
        lm.request(2, 9, LockMode::Update);
        lm.request(3, 9, LockMode::Update);
        assert_eq!(lm.waiting_count(), 2);
        lm.release_all(1);
        assert_eq!(lm.waiting_count(), 1);
        lm.release_all(2);
        assert_eq!(lm.waiting_count(), 0);
    }

    #[test]
    fn pages_held_and_mode_queries() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Read);
        lm.request(1, 10, LockMode::Update);
        assert_eq!(lm.pages_held(1), 2);
        assert_eq!(lm.mode_held(1, 9), Some(LockMode::Read));
        assert_eq!(lm.mode_held(1, 10), Some(LockMode::Update));
        assert_eq!(lm.mode_held(1, 11), None);
        assert_eq!(lm.pages_held(2), 0);
        assert!(!lm.is_prepared(1));
        lm.mark_prepared(1);
        assert!(lm.is_prepared(1));
    }

    #[test]
    fn borrow_grant_counter_counts_page_grants_not_edges() {
        let mut lm = LockManager::new(true);
        lm.request(1, 9, LockMode::Read);
        lm.request(2, 9, LockMode::Read);
        lm.mark_prepared(1);
        lm.mark_prepared(2);
        // reads are compatible with the prepared read-holders: no borrow
        assert!(granted(&lm.request(3, 9, LockMode::Read)));
        assert_eq!(lm.borrow_grants(), 0);
        lm.release_all(3);
        // an update through two prepared read-holders is one borrow
        // grant with two lenders
        assert!(granted(&lm.request(4, 9, LockMode::Update)));
        assert_eq!(lm.borrow_grants(), 1);
        let mut lenders: Vec<_> = lm.lenders_of(4).collect();
        lenders.sort_unstable();
        assert_eq!(lenders, vec![1, 2]);
    }

    #[test]
    fn audit_detects_conflicting_holders() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Update);
        // Corrupt the table directly to prove audit sees it.
        lm.pages.get_mut(&9).unwrap().holders.push(Holder {
            owner: 2,
            mode: LockMode::Update,
        });
        assert!(lm.audit().is_err());
    }

    #[test]
    #[should_panic(expected = "already has a waiting request")]
    fn double_wait_panics() {
        let mut lm = LockManager::new(false);
        lm.request(1, 9, LockMode::Update);
        lm.request(2, 9, LockMode::Update);
        lm.request(2, 10, LockMode::Update);
    }
}

// Seeded-loop generative tests (former proptest suite, rewritten as
// deterministic randomized loops over the same op space).
#[cfg(test)]
mod generative_tests {
    use super::*;
    use simkernel::SimRng;

    #[derive(Debug, Clone)]
    enum Op {
        Request { owner: u8, page: u8, update: bool },
        ReleaseAll { owner: u8 },
        ReleaseReads { owner: u8 },
        Prepare { owner: u8 },
        Settle { owner: u8 },
    }

    fn random_op(r: &mut SimRng) -> Op {
        let owner = r.uniform_u64(0, 7) as u8;
        match r.uniform_u64(0, 4) {
            0 => Op::Request {
                owner,
                page: r.uniform_u64(0, 5) as u8,
                update: r.chance(0.5),
            },
            1 => Op::ReleaseAll { owner },
            2 => Op::ReleaseReads { owner },
            3 => Op::Prepare { owner },
            _ => Op::Settle { owner },
        }
    }

    fn random_ops(r: &mut SimRng, max_len: usize) -> Vec<Op> {
        let len = r.uniform_usize(1, max_len);
        (0..len).map(|_| random_op(r)).collect()
    }

    /// Random op sequences keep every audit invariant intact, with and
    /// without lending.
    #[test]
    fn random_ops_never_violate_invariants() {
        let mut r = SimRng::new(0x10CC_7AB1);
        for case in 0..300 {
            let lending = case % 2 == 0;
            let ops = random_ops(&mut r, 119);
            let mut lm = LockManager::new(lending);
            let mut prepared = std::collections::HashSet::new();
            for op in ops {
                match op {
                    Op::Request {
                        owner,
                        page,
                        update,
                    } => {
                        let owner = owner as u64;
                        if lm.is_waiting(owner) || prepared.contains(&owner) {
                            continue;
                        }
                        let mode = if update {
                            LockMode::Update
                        } else {
                            LockMode::Read
                        };
                        let _ = lm.request(owner, page as u64, mode);
                    }
                    Op::ReleaseAll { owner } => {
                        let owner = owner as u64;
                        lm.drop_borrower(owner);
                        lm.settle_borrows(owner);
                        lm.release_all(owner);
                        prepared.remove(&owner);
                    }
                    Op::ReleaseReads { owner } => {
                        lm.release_read_locks(owner as u64);
                    }
                    Op::Prepare { owner } => {
                        let owner = owner as u64;
                        // only owners not waiting and not already prepared
                        if !lm.is_waiting(owner)
                            && !prepared.contains(&owner)
                            && lm.pages_held(owner) > 0
                            && !lm.has_live_borrows(owner)
                        {
                            lm.mark_prepared(owner);
                            prepared.insert(owner);
                        }
                    }
                    Op::Settle { owner } => {
                        let owner = owner as u64;
                        if prepared.contains(&owner) {
                            lm.settle_borrows(owner);
                            lm.release_all(owner);
                            prepared.remove(&owner);
                        }
                    }
                }
                if let Err(e) = lm.audit() {
                    panic!("audit failed (lending={lending}): {e}");
                }
            }
        }
    }

    /// Without lending, conflicting pages serialize: at most one update
    /// holder, and never an update holder together with any other holder.
    #[test]
    fn no_lending_means_strict_exclusivity() {
        let mut r = SimRng::new(0x10CC_7AB2);
        for _ in 0..300 {
            let ops = random_ops(&mut r, 99);
            let mut lm = LockManager::new(false);
            for op in ops {
                match op {
                    Op::Request {
                        owner,
                        page,
                        update,
                    } => {
                        let owner = owner as u64;
                        if lm.is_waiting(owner) {
                            continue;
                        }
                        let mode = if update {
                            LockMode::Update
                        } else {
                            LockMode::Read
                        };
                        let _ = lm.request(owner, page as u64, mode);
                    }
                    Op::ReleaseAll { owner } => {
                        lm.release_all(owner as u64);
                    }
                    _ => {}
                }
                assert!(lm.audit().is_ok());
            }
        }
    }
}
