//! # distlocks — strict 2PL with prepared-data lending
//!
//! The concurrency-control substrate of the SIGMOD'97 commit-processing
//! study. Each site of the distributed database runs one
//! [`LockManager`]: a strict two-phase-locking table with read/update
//! modes, FCFS queues, and — when the OPT commit protocol is in use —
//! **lending** of data held by *prepared* cohorts (§3 of the paper):
//!
//! > "prepared cohorts lend uncommitted data to concurrently executing
//! > transactions … there is no danger of incurring cascading aborts
//! > since the borrowing is done in a controlled manner."
//!
//! The lock manager tracks borrow edges so that, when a lender's global
//! decision arrives, the engine can either dissolve the edges (commit)
//! or abort every immediate borrower (abort) — the abort chain is
//! bounded at length one because a borrower is never allowed to reach
//! the prepared state while it has live borrows.
//!
//! Deadlock handling follows §4.2: detection is *immediate* (checked at
//! every lock conflict) and *global* (the wait-for graph spans sites).
//! [`deadlock::find_cycle`] runs the detection over a caller-supplied
//! edge expansion so the engine can stitch the per-site blocker sets
//! into one transaction-level graph.

pub mod deadlock;
pub mod table;

pub use table::{Grant, LockManager, LockMode, OwnerId, PageId, RequestOutcome};
