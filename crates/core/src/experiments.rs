//! Ready-made experiment presets — one per table/figure of the paper's
//! evaluation section (§5). See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for the paper-vs-measured record.
//!
//! Every preset returns an [`Experiment`]: a set of per-protocol series
//! over the multiprogramming level, carrying full [`SimReport`]s so a
//! single sweep yields the throughput figure *and* the companion block-
//! and borrow-ratio figures (the paper plots them from the same runs).

use crate::config::{ConfigError, SystemConfig, TransType};
use crate::engine::{Series, SeriesConfig, Simulation};
use crate::metrics::SimReport;
use crate::runner;
use commitproto::ProtocolSpec;

/// Run-length scaling for an experiment sweep.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Warm-up commits per run.
    pub warmup: u64,
    /// Measured commits per run.
    pub measured: u64,
    /// MPL values to sweep (the paper's x-axis, 1..10).
    pub mpls: Vec<u32>,
    /// Base RNG seed; each (protocol, MPL, replication) cell derives
    /// its own via [`cell_seed`].
    pub seed: u64,
    /// Independent replications per (protocol, MPL) cell. Each runs
    /// with its own derived seed; results are merged by
    /// [`SimReport::merge_replications`], so with 2 or more the
    /// throughput confidence interval is computed across replications.
    /// 1 (the default) is bit-identical to the pre-replication sweep.
    pub replications: u32,
    /// Worker threads for the sweep: `None` defers to
    /// [`runner::default_jobs`] (`DISTCOMMIT_JOBS`, then available
    /// cores). Results are identical for every value — parallelism
    /// changes wall-clock time, never numbers.
    pub jobs: Option<usize>,
}

impl Scale {
    /// Quick scale for CI and `cargo bench` defaults.
    pub fn quick() -> Self {
        Scale {
            warmup: 400,
            measured: 4_000,
            mpls: (1..=10).collect(),
            seed: 42,
            replications: 1,
            jobs: None,
        }
    }

    /// Paper scale: "each experiment having been run until at least
    /// 50000 transactions were processed by the system".
    pub fn full() -> Self {
        Scale {
            warmup: 2_000,
            measured: 50_000,
            mpls: (1..=10).collect(),
            seed: 42,
            replications: 1,
            jobs: None,
        }
    }

    /// Scale selected by the `DISTCOMMIT_FULL` environment variable
    /// (`1`/`true` → [`Scale::full`], anything else → [`Scale::quick`]).
    pub fn from_env() -> Self {
        match std::env::var("DISTCOMMIT_FULL").as_deref() {
            Ok("1") | Ok("true") => Scale::full(),
            _ => Scale::quick(),
        }
    }

    /// Set the per-run length: `warmup` commits before statistics,
    /// then `measured` commits in the window. Chainable, so scales
    /// compose from a preset: `Scale::quick().with_runs(100, 1_000)`.
    #[must_use]
    pub fn with_runs(mut self, warmup: u64, measured: u64) -> Self {
        self.warmup = warmup;
        self.measured = measured;
        self
    }

    /// Set the MPL axis.
    #[must_use]
    pub fn with_mpls(mut self, mpls: Vec<u32>) -> Self {
        self.mpls = mpls;
        self
    }

    /// Set the base RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the replication count per (protocol, MPL) cell.
    #[must_use]
    pub fn with_replications(mut self, replications: u32) -> Self {
        self.replications = replications;
        self
    }

    /// Set the worker-thread count (`None` lets the runner pick).
    #[must_use]
    pub fn with_jobs(mut self, jobs: Option<usize>) -> Self {
        self.jobs = jobs;
        self
    }

    fn apply(&self, cfg: &SystemConfig) -> SystemConfig {
        let mut cfg = cfg.clone();
        cfg.run.warmup_transactions = self.warmup;
        cfg.run.measured_transactions = self.measured;
        cfg
    }
}

/// One protocol's sweep over MPL.
#[derive(Debug, Clone)]
pub struct ProtocolSeries {
    /// Display label (protocol name, possibly with a parameter suffix
    /// such as `"OPT p=5%"` in the surprise-abort experiment).
    pub label: String,
    /// One report per MPL value, in sweep order.
    pub points: Vec<SimReport>,
}

impl ProtocolSeries {
    /// Peak (maximum) throughput over the sweep — the paper's headline
    /// comparison metric.
    pub fn peak_throughput(&self) -> f64 {
        self.points.iter().map(|r| r.throughput).fold(0.0, f64::max)
    }

    /// The MPL at which the peak occurs.
    pub fn peak_mpl(&self) -> u32 {
        self.points
            .iter()
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
            .map(|r| r.mpl)
            .unwrap_or(0)
    }
}

/// A complete experiment: several protocol series over one workload.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Short id (`"fig1"`, `"fig3a"`, ...), matching DESIGN.md.
    pub id: String,
    /// Human title as in the paper's figure caption.
    pub title: String,
    /// The configuration common to all series (MPL varies per point).
    pub config: SystemConfig,
    /// The per-protocol sweeps.
    pub series: Vec<ProtocolSeries>,
}

impl Experiment {
    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&ProtocolSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// MPL axis of the experiment.
    pub fn mpls(&self) -> Vec<u32> {
        self.series
            .first()
            .map(|s| s.points.iter().map(|r| r.mpl).collect())
            .unwrap_or_default()
    }
}

/// Seed for one (series, MPL-index, replication) cell of a sweep grid.
///
/// The three indices occupy disjoint bit ranges of the base seed and
/// the XOR is finalized with a bijective mixer, so distinct cells can
/// never share a seed (see `simkernel::rng::mix_seed`) — replications
/// are genuinely independent and adding a replication never perturbs
/// any other cell's stream.
pub fn cell_seed(base: u64, series: usize, mpl_index: usize, replication: u32) -> u64 {
    simkernel::mix_seed(base, series as u64, mpl_index as u64, replication as u64)
}

/// Sweep `specs` over the scale's MPL axis on `cfg`.
///
/// Every (protocol, MPL, replication) cell is an independent
/// [`Simulation::run`] with its own [`cell_seed`]; the grid is executed
/// on [`runner::run_ordered`] worker threads (`scale.jobs`) and
/// reassembled in grid order, so the returned series — and anything
/// rendered from them — are byte-identical for any worker count.
/// Replications of a cell are merged with
/// [`SimReport::merge_replications`].
pub fn sweep(
    cfg: &SystemConfig,
    specs: &[(String, ProtocolSpec, SystemConfig)],
    scale: &Scale,
) -> Result<Vec<ProtocolSeries>, ConfigError> {
    let _ = cfg; // the per-spec override already embeds the base
    let reps = scale.replications.clamp(1, u16::MAX as u32);

    // Flat job grid in output order: series-major, then MPL, then
    // replication.
    let mut grid: Vec<(SystemConfig, ProtocolSpec, u64)> =
        Vec::with_capacity(specs.len() * scale.mpls.len() * reps as usize);
    for (si, (_, spec, cfg_override)) in specs.iter().enumerate() {
        for (mi, &mpl) in scale.mpls.iter().enumerate() {
            let mut cell_cfg = scale.apply(cfg_override);
            cell_cfg.mpl = mpl;
            for rep in 0..reps {
                grid.push((cell_cfg.clone(), *spec, cell_seed(scale.seed, si, mi, rep)));
            }
        }
    }

    let jobs = runner::resolve_jobs(scale.jobs);
    let progress = runner::Progress::new("sweep", grid.len());
    let results = runner::run_ordered(&grid, jobs, |(cell_cfg, spec, seed)| {
        let t0 = std::time::Instant::now();
        let out = Simulation::run_auto(cell_cfg, *spec, *seed);
        progress.cell_done(
            &format!("{} mpl {} seed {}", spec.name(), cell_cfg.mpl, seed),
            t0.elapsed().as_secs_f64(),
        );
        out
    });

    let mut it = results.into_iter();
    let mut out = Vec::with_capacity(specs.len());
    for (label, _, _) in specs {
        let mut points = Vec::with_capacity(scale.mpls.len());
        for _ in &scale.mpls {
            let cell: Vec<SimReport> = (0..reps)
                .map(|_| it.next().expect("grid covers every cell"))
                .collect::<Result<_, _>>()?;
            points.push(SimReport::merge_replications(&cell));
        }
        out.push(ProtocolSeries {
            label: label.clone(),
            points,
        });
    }
    Ok(out)
}

/// One grid cell's windowed metric series from [`sweep_with_series`].
#[derive(Debug, Clone)]
pub struct SeriesCell {
    /// Series label (protocol name or parameterized variant).
    pub label: String,
    /// Per-site multiprogramming level of the cell.
    pub mpl: u32,
    /// Replication index within the (series, MPL) cell.
    pub replication: u32,
    /// The cell's windowed series.
    pub series: Series,
}

/// Like [`sweep`], but every cell additionally records a windowed
/// metric time series via [`Simulation::run_with_series`].
///
/// Returns the merged per-protocol report series (identical to what
/// [`sweep`] returns for the same inputs — recording does not perturb
/// a run) plus one [`SeriesCell`] per grid cell in grid order:
/// series-major, then MPL, then replication. Replications are *not*
/// merged on the series side — windows are per-run observations, so
/// each replication keeps its own cell. Like [`sweep`], the grid runs
/// on [`runner::run_ordered`] workers and both return values are
/// byte-identical for any worker count.
///
/// # Errors
/// Propagates the first cell's [`ConfigError`], like [`sweep`].
pub fn sweep_with_series(
    cfg: &SystemConfig,
    specs: &[(String, ProtocolSpec, SystemConfig)],
    scale: &Scale,
    series_cfg: &SeriesConfig,
) -> Result<(Vec<ProtocolSeries>, Vec<SeriesCell>), ConfigError> {
    let _ = cfg; // the per-spec override already embeds the base
    let reps = scale.replications.clamp(1, u16::MAX as u32);

    let mut grid: Vec<(SystemConfig, ProtocolSpec, u64)> =
        Vec::with_capacity(specs.len() * scale.mpls.len() * reps as usize);
    for (si, (_, spec, cfg_override)) in specs.iter().enumerate() {
        for (mi, &mpl) in scale.mpls.iter().enumerate() {
            let mut cell_cfg = scale.apply(cfg_override);
            cell_cfg.mpl = mpl;
            for rep in 0..reps {
                grid.push((cell_cfg.clone(), *spec, cell_seed(scale.seed, si, mi, rep)));
            }
        }
    }

    let jobs = runner::resolve_jobs(scale.jobs);
    let progress = runner::Progress::new("sweep", grid.len());
    let results = runner::run_ordered(&grid, jobs, |(cell_cfg, spec, seed)| {
        let t0 = std::time::Instant::now();
        let out = Simulation::run_auto_with_series(cell_cfg, *spec, *seed, series_cfg);
        progress.cell_done(
            &format!("{} mpl {} seed {}", spec.name(), cell_cfg.mpl, seed),
            t0.elapsed().as_secs_f64(),
        );
        out
    });

    let mut it = results.into_iter();
    let mut out = Vec::with_capacity(specs.len());
    let mut cells = Vec::with_capacity(specs.len() * scale.mpls.len() * reps as usize);
    for (label, _, _) in specs {
        let mut points = Vec::with_capacity(scale.mpls.len());
        for &mpl in &scale.mpls {
            let mut cell_reports = Vec::with_capacity(reps as usize);
            for rep in 0..reps {
                let (report, series) = it.next().expect("grid covers every cell")?;
                cell_reports.push(report);
                cells.push(SeriesCell {
                    label: label.clone(),
                    mpl,
                    replication: rep,
                    series,
                });
            }
            points.push(SimReport::merge_replications(&cell_reports));
        }
        out.push(ProtocolSeries {
            label: label.clone(),
            points,
        });
    }
    Ok((out, cells))
}

fn plain(cfg: &SystemConfig, specs: &[ProtocolSpec]) -> Vec<(String, ProtocolSpec, SystemConfig)> {
    specs
        .iter()
        .map(|&s| (s.name().to_string(), s, cfg.clone()))
        .collect()
}

/// The protocol set of Figures 1 and 2: both baselines, the four
/// classical protocols, and OPT.
pub fn figure12_protocols() -> Vec<ProtocolSpec> {
    vec![
        ProtocolSpec::CENT,
        ProtocolSpec::DPCC,
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
    ]
}

/// **Experiment 1 / Figures 1a–1c** — resource *and* data contention:
/// the reconstructed Table 2 baseline, all seven protocol lines.
/// Fig 1a = throughput, Fig 1b = block ratio, Fig 1c = borrow ratio.
pub fn fig1(scale: &Scale) -> Result<Experiment, ConfigError> {
    let cfg = SystemConfig::paper_baseline();
    let series = sweep(&cfg, &plain(&cfg, &figure12_protocols()), scale)?;
    Ok(Experiment {
        id: "fig1".into(),
        title: "Expt 1: Resource and Data Contention (RC+DC)".into(),
        config: cfg,
        series,
    })
}

/// **Experiment 2 / Figures 2a–2c** — pure data contention: identical
/// workload but infinite physical resources (§5.3).
pub fn fig2(scale: &Scale) -> Result<Experiment, ConfigError> {
    let cfg = SystemConfig::pure_data_contention();
    let series = sweep(&cfg, &plain(&cfg, &figure12_protocols()), scale)?;
    Ok(Experiment {
        id: "fig2".into(),
        title: "Expt 2: Pure Data Contention (DC)".into(),
        config: cfg,
        series,
    })
}

/// **Experiment 3** — fast network interface (`MsgCPU` = 1 ms, §5.4),
/// under RC+DC and under pure DC. The paper discusses this experiment
/// in prose (graphs are in the companion TR), so the harness prints
/// both regimes.
pub fn expt3(scale: &Scale) -> Result<(Experiment, Experiment), ConfigError> {
    let protocols = figure12_protocols();
    let rc = SystemConfig::paper_baseline().fast_network();
    let dc = SystemConfig::pure_data_contention().fast_network();
    let rc_series = sweep(&rc, &plain(&rc, &protocols), scale)?;
    let dc_series = sweep(&dc, &plain(&dc, &protocols), scale)?;
    Ok((
        Experiment {
            id: "expt3-rcdc".into(),
            title: "Expt 3: Fast Network Interface (RC+DC, MsgCPU = 1 ms)".into(),
            config: rc,
            series: rc_series,
        },
        Experiment {
            id: "expt3-dc".into(),
            title: "Expt 3: Fast Network Interface (DC, MsgCPU = 1 ms)".into(),
            config: dc,
            series: dc_series,
        },
    ))
}

/// **Experiment 4 / Figures 3a–3b** — higher degree of distribution:
/// six cohorts of three pages (§5.5), with OPT-PC added to the lineup.
pub fn fig3(scale: &Scale) -> Result<(Experiment, Experiment), ConfigError> {
    let mut protocols = figure12_protocols();
    protocols.push(ProtocolSpec::OPT_PC);
    let rc = SystemConfig::paper_baseline().higher_distribution();
    let dc = SystemConfig::pure_data_contention().higher_distribution();
    let rc_series = sweep(&rc, &plain(&rc, &protocols), scale)?;
    let dc_series = sweep(&dc, &plain(&dc, &protocols), scale)?;
    Ok((
        Experiment {
            id: "fig3a".into(),
            title: "Expt 4 / Fig 3a: Distribution = 6 (RC+DC)".into(),
            config: rc,
            series: rc_series,
        },
        Experiment {
            id: "fig3b".into(),
            title: "Expt 4 / Fig 3b: Distribution = 6 (DC)".into(),
            config: dc,
            series: dc_series,
        },
    ))
}

/// **Experiment 5 / Figures 4a–4b** — non-blocking OPT: 2PC, 3PC, OPT
/// and OPT-3PC under RC+DC and pure DC (§5.6).
pub fn fig4(scale: &Scale) -> Result<(Experiment, Experiment), ConfigError> {
    let protocols = vec![
        ProtocolSpec::TWO_PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_3PC,
    ];
    let rc = SystemConfig::paper_baseline();
    let dc = SystemConfig::pure_data_contention();
    let rc_series = sweep(&rc, &plain(&rc, &protocols), scale)?;
    let dc_series = sweep(&dc, &plain(&dc, &protocols), scale)?;
    Ok((
        Experiment {
            id: "fig4a".into(),
            title: "Expt 5 / Fig 4a: Non-Blocking (RC+DC)".into(),
            config: rc,
            series: rc_series,
        },
        Experiment {
            id: "fig4b".into(),
            title: "Expt 5 / Fig 4b: Non-Blocking (DC)".into(),
            config: dc,
            series: dc_series,
        },
    ))
}

/// **Experiment 6 / Figures 5a–5b** — surprise aborts (§5.7): cohorts
/// vote NO with probability 1%, 5% or 10% (≈ 3%, 15%, 27% transaction
/// abort probability at `DistDegree` 3), for 2PC, PA, OPT and OPT-PA.
pub fn fig5(scale: &Scale) -> Result<(Experiment, Experiment), ConfigError> {
    let protocols = [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_PA,
    ];
    let probs = [(0.01, "3%"), (0.05, "15%"), (0.10, "27%")];
    let build = |base: SystemConfig| -> Vec<(String, ProtocolSpec, SystemConfig)> {
        let mut specs = Vec::new();
        for &(p, label) in &probs {
            for spec in protocols {
                let mut cfg = base.clone();
                cfg.cohort_abort_prob = p;
                specs.push((format!("{} abort={}", spec.name(), label), spec, cfg));
            }
        }
        specs
    };
    let rc = SystemConfig::paper_baseline();
    let dc = SystemConfig::pure_data_contention();
    let rc_series = sweep(&rc, &build(rc.clone()), scale)?;
    let dc_series = sweep(&dc, &build(dc.clone()), scale)?;
    Ok((
        Experiment {
            id: "fig5a".into(),
            title: "Expt 6 / Fig 5a: Surprise Aborts (RC+DC)".into(),
            config: rc,
            series: rc_series,
        },
        Experiment {
            id: "fig5b".into(),
            title: "Expt 6 / Fig 5b: Surprise Aborts (DC)".into(),
            config: dc,
            series: dc_series,
        },
    ))
}

/// **§5.7 extension** — PA vs 2PC under surprise aborts at a *higher
/// degree of distribution* (heavily CPU-bound), where the paper found
/// PA's savings finally "sufficient to make it perform clearly better
/// than 2PC".
pub fn expt6_high_distribution(scale: &Scale) -> Result<Experiment, ConfigError> {
    let mut cfg = SystemConfig::paper_baseline().higher_distribution();
    cfg.cohort_abort_prob = 0.10;
    let protocols = [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::OPT_PA,
    ];
    let series = sweep(&cfg, &plain(&cfg, &protocols), scale)?;
    Ok(Experiment {
        id: "expt6x".into(),
        title: "Expt 6 extension: Surprise Aborts at DistDegree = 6 (RC+DC)".into(),
        config: cfg,
        series,
    })
}

/// **§5.8** — sequential transactions: the same baseline with cohorts
/// executing one after another; protocol differences shrink because the
/// commit-to-execution ratio drops.
pub fn seq(scale: &Scale) -> Result<Experiment, ConfigError> {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.trans_type = TransType::Sequential;
    let protocols = vec![
        ProtocolSpec::CENT,
        ProtocolSpec::DPCC,
        ProtocolSpec::TWO_PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_2PC,
    ];
    let series = sweep(&cfg, &plain(&cfg, &protocols), scale)?;
    Ok(Experiment {
        id: "seq".into(),
        title: "§5.8: Sequential Transactions (RC+DC)".into(),
        config: cfg,
        series,
    })
}

/// **Failure extension** (beyond the paper, quantifying §2.4's blocking
/// argument): throughput vs master-crash probability for 2PC, OPT,
/// 3PC and OPT-3PC. Crashed blocking-protocol masters hold their
/// prepared cohorts' locks for the full recovery time; 3PC cohorts
/// detect the crash and terminate on their own.
pub fn failures(scale: &Scale) -> Result<Experiment, ConfigError> {
    use crate::config::FailureConfig;
    let base = SystemConfig::paper_baseline();
    let protocols = [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::OPT_2PC,
        ProtocolSpec::THREE_PC,
        ProtocolSpec::OPT_3PC,
    ];
    let mut specs = Vec::new();
    for &(p, label) in &[(0.0, "0%"), (0.002, "0.2%"), (0.01, "1%"), (0.05, "5%")] {
        for spec in protocols {
            let mut cfg = base.clone();
            if p > 0.0 {
                cfg.failures = Some(FailureConfig::master_crashes(p));
            }
            specs.push((format!("{} crash={}", spec.name(), label), spec, cfg));
        }
    }
    // The failure sweep holds MPL fixed and varies the crash rate, so a
    // single-MPL scale keeps the series readable.
    let mut scale = scale.clone();
    scale.mpls = vec![4];
    let series = sweep(&base, &specs, &scale)?;
    Ok(Experiment {
        id: "failures".into(),
        title: "Extension: Master Failures — blocking vs non-blocking".into(),
        config: base,
        series,
    })
}

/// **Fault-injection extension** — blocked time vs crash probability
/// at a fixed MPL, across the protocol spread that spans the blocking
/// spectrum: 2PC, presumed-abort, presumed-commit, non-blocking 3PC,
/// and Paxos Commit at F = 1. The headline curve is the per-series
/// mean blocked-on-crash time from
/// [`FaultCounters`](crate::metrics::FaultCounters), which makes
/// §2.4's blocking argument measurable: the 2PC family's blocked
/// time tracks the full
/// recovery time and grows with the crash rate, 3PC stays bounded by
/// the detection timeout plus termination rounds, and replicated
/// Paxos Commit fails over to surviving acceptors after detection.
/// The CLI renders this metric as an extra table/CSV block for this
/// preset (`experiment faults [--csv]`).
pub fn fault_injection(scale: &Scale) -> Result<Experiment, ConfigError> {
    use crate::config::FailureConfig;
    let base = SystemConfig::paper_baseline();
    let family: [(&str, ProtocolSpec, u32); 5] = [
        ("2PC", ProtocolSpec::TWO_PC, 0),
        ("PA", ProtocolSpec::PA, 0),
        ("PC", ProtocolSpec::PC, 0),
        ("3PC", ProtocolSpec::THREE_PC, 0),
        ("PAXOS f=1", ProtocolSpec::PAXOS, 1),
    ];
    let mut specs = Vec::new();
    for &(mc, plabel) in &[(0.005, "0.5%"), (0.01, "1%"), (0.02, "2%"), (0.04, "4%")] {
        for (name, spec, f) in family {
            let mut cfg = base.clone().with_replication(f);
            cfg.failures = Some(FailureConfig::master_crashes(mc));
            specs.push((format!("{name} mc={plabel}"), spec, cfg));
        }
    }
    // Like the master-failure sweep, hold MPL fixed and vary the crash
    // rate instead.
    let mut scale = scale.clone();
    scale.mpls = vec![4];
    let series = sweep(&base, &specs, &scale)?;
    Ok(Experiment {
        id: "faults".into(),
        title: "Extension: Blocked Time vs Crash Probability".into(),
        config: base,
        series,
    })
}

/// **Replication extension** — the replicated-shard commit family
/// under master crashes at a fixed MPL. The headline contrast: a 2PC
/// master replicating its decision to 2F standby coordinators
/// (REP2PC) still *blocks* its prepared cohorts for the full recovery
/// time when it crashes — replication protects the decision record,
/// not availability — while Paxos Commit at the same F fails over to
/// the surviving acceptors after the detection timeout, keeping the
/// blocked time bounded. PAXOS at F = 0 runs the same schedule as
/// plain 2PC (the degenerate case), pinning the family to the
/// Tables 3–4 baseline.
pub fn replication(scale: &Scale) -> Result<Experiment, ConfigError> {
    use crate::config::FailureConfig;
    let base = SystemConfig::paper_baseline();
    let family: [(&str, ProtocolSpec, u32); 5] = [
        ("2PC", ProtocolSpec::TWO_PC, 0),
        ("PAXOS f=0", ProtocolSpec::PAXOS, 0),
        ("PAXOS f=1", ProtocolSpec::PAXOS, 1),
        ("REP2PC f=1", ProtocolSpec::REP_2PC, 1),
        ("3PC", ProtocolSpec::THREE_PC, 0),
    ];
    let mut specs = Vec::new();
    for &(p, plabel) in &[(0.0, "0%"), (0.01, "1%"), (0.05, "5%")] {
        for (label, spec, f) in family {
            let mut cfg = base.clone().with_replication(f);
            if p > 0.0 {
                cfg.failures = Some(FailureConfig::master_crashes(p));
            }
            specs.push((format!("{label} crash={plabel}"), spec, cfg));
        }
    }
    // Like the other failure sweeps: hold MPL fixed, vary the crash
    // rate across the family.
    let mut scale = scale.clone();
    scale.mpls = vec![4];
    let series = sweep(&base, &specs, &scale)?;
    Ok(Experiment {
        id: "replication".into(),
        title: "Extension: Replicated Commit — Paxos Commit vs replicated 2PC".into(),
        config: base,
        series,
    })
}

/// **Scale extension** (ROADMAP item 2) — commit protocols at
/// production scale: 256 sites at the paper's page density, Zipf-skewed
/// page access, and a two-class LAN/WAN topology. Each protocol runs
/// under three network/skew mixes at a fixed MPL, so the rendered
/// ranking shows how wire latency, contention skew, and a hot site
/// reorder the paper's 8-site LAN-era conclusions.
pub fn at_scale(scale: &Scale) -> Result<Experiment, ConfigError> {
    use crate::config::{Topology, Zipf};
    let mut base = SystemConfig::paper_baseline();
    base.num_sites = 256;
    // Keep the paper's 1000 pages/site so per-site contention is
    // comparable; the *global* database is 32× the baseline.
    base.db_size = 1_000 * base.num_sites as u64;
    let wan: Topology = "regions=8,lan-ms=1,wan-ms=40,jitter=0.1"
        .parse()
        .expect("literal topology");
    let hot = Topology {
        hot_site_prob: 0.2,
        ..wan
    };
    let protocols = [
        ProtocolSpec::TWO_PC,
        ProtocolSpec::PA,
        ProtocolSpec::PC,
        ProtocolSpec::OPT_2PC,
    ];
    let mixes: [(&str, Option<Topology>, Option<Zipf>); 3] = [
        ("lan uniform", None, None),
        ("wan zipf0.9", Some(wan), Some(Zipf { theta: 0.9 })),
        ("wan+hot zipf0.9", Some(hot), Some(Zipf { theta: 0.9 })),
    ];
    let mut specs = Vec::new();
    for (label, topo, zipf) in mixes {
        for spec in protocols {
            let mut cfg = base.clone();
            cfg.topology = topo;
            cfg.zipf = zipf;
            specs.push((format!("{} {}", spec.name(), label), spec, cfg));
        }
    }
    // Like the failure sweeps: hold MPL fixed, vary the mix.
    let mut scale = scale.clone();
    scale.mpls = vec![4];
    let series = sweep(&base, &specs, &scale)?;
    Ok(Experiment {
        id: "scale".into(),
        title: "Extension: Commit Protocols at Production Scale (256 sites, Zipf, WAN)".into(),
        config: base,
        series,
    })
}

/// Measure the per-committed-transaction overheads in a conflict-free
/// configuration (huge database, MPL 1) — the simulation counterpart of
/// Tables 3 and 4, used to validate the engine against the analytic
/// model.
pub fn measured_overheads(
    dist_degree: u32,
    spec: ProtocolSpec,
    seed: u64,
) -> Result<SimReport, ConfigError> {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.dist_degree = dist_degree;
    cfg.cohort_size = if dist_degree >= 6 { 3 } else { 6 };
    cfg.num_sites = dist_degree.max(3) as usize * 2;
    cfg.db_size = 100_000 * cfg.num_sites as u64; // conflicts vanish
    cfg.mpl = 1;
    cfg.run.warmup_transactions = 50;
    cfg.run.measured_transactions = 500;
    Simulation::run_auto(&cfg, spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale::quick()
            .with_runs(20, 120)
            .with_mpls(vec![2])
            .with_seed(7)
            .with_jobs(Some(1))
    }

    #[test]
    fn sweep_produces_labeled_series() {
        let cfg = SystemConfig::paper_baseline();
        let specs = plain(&cfg, &[ProtocolSpec::TWO_PC, ProtocolSpec::OPT_2PC]);
        let series = sweep(&cfg, &specs, &tiny()).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].label, "2PC");
        assert_eq!(series[1].label, "OPT");
        assert_eq!(series[0].points.len(), 1);
        assert!(series[0].points[0].throughput > 0.0);
    }

    #[test]
    fn experiment_lookup_and_axis() {
        let cfg = SystemConfig::paper_baseline();
        let specs = plain(&cfg, &[ProtocolSpec::TWO_PC]);
        let series = sweep(&cfg, &specs, &tiny()).unwrap();
        let e = Experiment {
            id: "t".into(),
            title: "t".into(),
            config: cfg,
            series,
        };
        assert!(e.series("2PC").is_some());
        assert!(e.series("nope").is_none());
        assert_eq!(e.mpls(), vec![2]);
    }

    #[test]
    fn peak_throughput_math() {
        let cfg = SystemConfig::paper_baseline();
        let mut scale = tiny();
        scale.mpls = vec![1, 3];
        let specs = plain(&cfg, &[ProtocolSpec::DPCC]);
        let series = sweep(&cfg, &specs, &scale).unwrap();
        let s = &series[0];
        let peak = s.peak_throughput();
        assert!(s.points.iter().all(|p| p.throughput <= peak));
        assert!(s.points.iter().any(|p| p.mpl == s.peak_mpl()));
    }

    /// The exact same grid run on 1 and on 4 workers must agree on
    /// every number — parallelism is wall-clock only.
    #[test]
    fn sweep_is_invariant_under_worker_count() {
        let cfg = SystemConfig::paper_baseline();
        let specs = plain(&cfg, &[ProtocolSpec::TWO_PC, ProtocolSpec::DPCC]);
        let mut scale = tiny();
        scale.mpls = vec![1, 3];
        scale.replications = 2;
        scale.jobs = Some(1);
        let serial = sweep(&cfg, &specs, &scale).unwrap();
        scale.jobs = Some(4);
        let parallel = sweep(&cfg, &specs, &scale).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            for (x, y) in a.points.iter().zip(&b.points) {
                assert_eq!(x.events, y.events);
                assert_eq!(x.committed, y.committed);
                assert_eq!(x.throughput.to_bits(), y.throughput.to_bits());
                assert_eq!(
                    x.throughput_ci.half_width.to_bits(),
                    y.throughput_ci.half_width.to_bits()
                );
            }
        }
    }

    /// One replication must reproduce the plain single-run sweep
    /// bit for bit (`merge_replications` is the identity at n = 1).
    #[test]
    fn single_replication_matches_plain_sweep() {
        let cfg = SystemConfig::paper_baseline();
        let specs = plain(&cfg, &[ProtocolSpec::TWO_PC]);
        let scale = tiny();
        let series = sweep(&cfg, &specs, &scale).unwrap();
        let direct = {
            let mut c = scale.apply(&cfg);
            c.mpl = scale.mpls[0];
            Simulation::run(&c, ProtocolSpec::TWO_PC, cell_seed(scale.seed, 0, 0, 0)).unwrap()
        };
        assert_eq!(series[0].points[0].events, direct.events);
        assert_eq!(
            series[0].points[0].throughput.to_bits(),
            direct.throughput.to_bits()
        );
    }

    /// Replications merge into one point per MPL, averaged across
    /// genuinely different runs, with a cross-replication CI.
    #[test]
    fn replications_merge_into_one_point_per_mpl() {
        let cfg = SystemConfig::paper_baseline();
        let specs = plain(&cfg, &[ProtocolSpec::TWO_PC]);
        let mut scale = tiny();
        scale.replications = 3;
        let series = sweep(&cfg, &specs, &scale).unwrap();
        assert_eq!(series[0].points.len(), 1);
        let p = &series[0].points[0];
        assert_eq!(p.throughput_ci.batches, 3);
        assert!(
            p.throughput_ci.half_width > 0.0,
            "distinct seeds must differ"
        );
        // merged point averages the three independent runs
        let singles: Vec<f64> = (0..3)
            .map(|rep| {
                let mut c = scale.apply(&cfg);
                c.mpl = scale.mpls[0];
                Simulation::run(&c, ProtocolSpec::TWO_PC, cell_seed(scale.seed, 0, 0, rep))
                    .unwrap()
                    .throughput
            })
            .collect();
        let mean = singles.iter().sum::<f64>() / 3.0;
        assert!((p.throughput - mean).abs() < 1e-12);
    }

    /// Cell seeds never collide across the whole (series, MPL, rep)
    /// grid of the largest preset.
    #[test]
    fn cell_seeds_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for series in 0..16 {
            for mpl_index in 0..10 {
                for rep in 0..8 {
                    assert!(
                        seen.insert(cell_seed(42, series, mpl_index, rep)),
                        "seed collision at ({series}, {mpl_index}, {rep})"
                    );
                }
            }
        }
    }

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // (no env var set in tests)
        let s = Scale::from_env();
        assert_eq!(s.measured, Scale::quick().measured);
    }

    #[test]
    fn measured_overheads_runs_clean() {
        let r = measured_overheads(3, ProtocolSpec::TWO_PC, 1).unwrap();
        assert_eq!(r.total_aborts(), 0, "conflict-free config must not abort");
        assert!(r.committed >= 500);
    }

    /// Every preset constructor produces a well-formed experiment at a
    /// micro scale: the right series labels, one point per MPL, and
    /// positive throughputs.
    #[test]
    fn all_presets_construct() {
        let micro = Scale {
            warmup: 5,
            measured: 40,
            mpls: vec![2],
            seed: 3,
            replications: 1,
            jobs: None,
        };
        let check = |e: &Experiment, min_series: usize| {
            assert!(
                e.series.len() >= min_series,
                "{}: {} series",
                e.id,
                e.series.len()
            );
            for s in &e.series {
                assert_eq!(s.points.len(), 1, "{}/{}", e.id, s.label);
                assert!(s.points[0].throughput > 0.0, "{}/{}", e.id, s.label);
            }
            assert!(!e.title.is_empty());
        };
        check(&fig1(&micro).unwrap(), 7);
        check(&fig2(&micro).unwrap(), 7);
        let (a, b) = expt3(&micro).unwrap();
        check(&a, 7);
        check(&b, 7);
        let (a, b) = fig3(&micro).unwrap();
        check(&a, 8); // + OPT-PC
        check(&b, 8);
        let (a, b) = fig4(&micro).unwrap();
        check(&a, 4);
        check(&b, 4);
        let (a, b) = fig5(&micro).unwrap();
        check(&a, 12); // 4 protocols x 3 abort levels
        check(&b, 12);
        check(&expt6_high_distribution(&micro).unwrap(), 4);
        check(&seq(&micro).unwrap(), 5);
        check(&failures(&micro).unwrap(), 16); // 4 protocols x 4 crash rates
        check(&fault_injection(&micro).unwrap(), 20); // 5 protocols x 4 crash rates
    }

    /// The scale preset pins MPL, spans 4 protocols × 3 network/skew
    /// mixes, and actually runs at 256 sites.
    #[test]
    fn at_scale_preset_shape() {
        let micro = Scale {
            warmup: 2,
            measured: 10,
            mpls: vec![1, 2],
            seed: 6,
            replications: 1,
            jobs: None,
        };
        let e = at_scale(&micro).unwrap();
        assert_eq!(e.id, "scale");
        assert_eq!(e.mpls(), vec![4]);
        assert_eq!(e.series.len(), 12);
        assert_eq!(e.config.num_sites, 256);
        assert!(e.series("2PC lan uniform").is_some());
        assert!(e.series("OPT wan+hot zipf0.9").is_some());
        for s in &e.series {
            assert!(s.points[0].throughput > 0.0, "{}", s.label);
        }
    }

    #[test]
    fn fig5_labels_carry_abort_levels() {
        let micro = Scale {
            warmup: 5,
            measured: 30,
            mpls: vec![1],
            seed: 4,
            replications: 1,
            jobs: None,
        };
        let (rc, _) = fig5(&micro).unwrap();
        assert!(rc.series("2PC abort=3%").is_some());
        assert!(rc.series("OPT-PA abort=27%").is_some());
    }

    #[test]
    fn failures_preset_pins_mpl() {
        let micro = Scale {
            warmup: 5,
            measured: 30,
            mpls: vec![1, 2, 3],
            seed: 5,
            replications: 1,
            jobs: None,
        };
        let e = failures(&micro).unwrap();
        // the failure sweep intentionally collapses the MPL axis
        assert_eq!(e.mpls(), vec![4]);
        assert!(e.series("2PC crash=0%").is_some());
        assert!(e.series("OPT-3PC crash=5%").is_some());
    }
}
