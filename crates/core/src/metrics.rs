//! Run metrics and the public simulation report.
//!
//! The paper's primary metric is *transaction throughput* (committed
//! transactions per second); the secondary metrics are the *block
//! ratio* ("the average fraction of transactions that are in the
//! blocked state", Fig 1b/2b) and OPT's *borrow ratio* ("the average
//! number of data items (pages) borrowed per transaction", Fig 1c/2c).
//! We additionally report per-committed-transaction message and
//! forced-write counts — these validate the simulator against the
//! paper's Tables 3 and 4 — plus response times, abort breakdowns and
//! resource utilizations.

use simkernel::stats::{
    BatchMeans, ConfidenceInterval, Counter, DurationHistogram, Tally, TimeWeighted,
};
use simkernel::{SimDuration, SimTime};

/// Why a transaction incarnation aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Chosen as the youngest victim of a deadlock cycle.
    Deadlock,
    /// A cohort voted NO in the voting phase (§5.7 surprise aborts).
    SurpriseVote,
    /// A lender it had borrowed from aborted (OPT's bounded abort
    /// chain, §3.1).
    BorrowerCascade,
}

/// Live accumulation during a run. Reset at the end of warm-up.
#[derive(Debug)]
pub(crate) struct Metrics {
    pub start: SimTime,
    pub committed: Counter,
    pub aborted_deadlock: Counter,
    pub aborted_surprise: Counter,
    pub aborted_borrower: Counter,
    pub exec_messages: Counter,
    pub commit_messages: Counter,
    pub forced_writes: Counter,
    pub borrowed_pages: Counter,
    pub master_crashes: Counter,
    pub response: Tally,
    pub response_hist: DurationHistogram,
    pub attempt_response: Tally,
    pub shelf_time: Tally,
    pub prepared_time: Tally,
    pub blocked_txns: TimeWeighted,
    pub live_txns: TimeWeighted,
    pub throughput_batches: BatchMeans,
    batch_size: u64,
    batch_count_in_progress: u64,
    batch_started: SimTime,
}

impl Metrics {
    pub fn new(now: SimTime, measured: u64, batches: u64) -> Self {
        let batch_size = (measured / batches).max(1);
        Metrics {
            start: now,
            committed: Counter::default(),
            aborted_deadlock: Counter::default(),
            aborted_surprise: Counter::default(),
            aborted_borrower: Counter::default(),
            exec_messages: Counter::default(),
            commit_messages: Counter::default(),
            forced_writes: Counter::default(),
            borrowed_pages: Counter::default(),
            master_crashes: Counter::default(),
            response: Tally::new(),
            response_hist: DurationHistogram::new(),
            attempt_response: Tally::new(),
            shelf_time: Tally::new(),
            prepared_time: Tally::new(),
            blocked_txns: TimeWeighted::new(now, 0.0),
            live_txns: TimeWeighted::new(now, 0.0),
            throughput_batches: BatchMeans::new(1), // placeholder, see below
            batch_size,
            batch_count_in_progress: 0,
            batch_started: now,
        }
    }

    /// Reset counters at the end of warm-up, preserving current levels.
    pub fn reset(&mut self, now: SimTime) {
        self.start = now;
        self.committed = Counter::default();
        self.aborted_deadlock = Counter::default();
        self.aborted_surprise = Counter::default();
        self.aborted_borrower = Counter::default();
        self.exec_messages = Counter::default();
        self.commit_messages = Counter::default();
        self.forced_writes = Counter::default();
        self.borrowed_pages = Counter::default();
        self.master_crashes = Counter::default();
        self.response = Tally::new();
        self.response_hist = DurationHistogram::new();
        self.attempt_response = Tally::new();
        self.shelf_time = Tally::new();
        self.prepared_time = Tally::new();
        self.blocked_txns.reset(now);
        self.live_txns.reset(now);
        self.throughput_batches = BatchMeans::new(1);
        self.batch_count_in_progress = 0;
        self.batch_started = now;
    }

    /// Record a commit at `now` with the given response times.
    pub fn record_commit(&mut self, now: SimTime, response: SimDuration, attempt: SimDuration) {
        self.committed.bump();
        self.response.record_duration(response);
        self.response_hist.record(response);
        self.attempt_response.record_duration(attempt);
        // Throughput batches: every `batch_size` commits, record the
        // batch's rate as one sample.
        self.batch_count_in_progress += 1;
        if self.batch_count_in_progress == self.batch_size {
            let span = now.since(self.batch_started).as_secs_f64();
            if span > 0.0 {
                self.throughput_batches
                    .record(self.batch_size as f64 / span);
            }
            self.batch_count_in_progress = 0;
            self.batch_started = now;
        }
    }

    pub fn record_abort(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::Deadlock => self.aborted_deadlock.bump(),
            AbortReason::SurpriseVote => self.aborted_surprise.bump(),
            AbortReason::BorrowerCascade => self.aborted_borrower.bump(),
        }
    }
}

/// Per-resource-class mean utilization over the measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Utilizations {
    /// CPUs, averaged over all sites.
    pub cpu: f64,
    /// Data disks, averaged over all sites and disks.
    pub data_disk: f64,
    /// Log disks, averaged over all sites and disks.
    pub log_disk: f64,
}

/// The result of one simulation run — everything the experiment
/// harness and the figures need.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Protocol name (paper spelling, e.g. "OPT-3PC").
    pub protocol: String,
    /// Per-site multiprogramming level of the run.
    pub mpl: u32,
    /// Length of the measurement window in simulated seconds.
    pub sim_seconds: f64,
    /// Transactions committed inside the window.
    pub committed: u64,
    /// Deadlock-victim aborts inside the window.
    pub aborted_deadlock: u64,
    /// Surprise-vote aborts inside the window.
    pub aborted_surprise: u64,
    /// Borrower-cascade aborts inside the window (OPT only).
    pub aborted_borrower: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Batch-means 90% confidence interval on the throughput.
    pub throughput_ci: ConfidenceInterval,
    /// Mean response time (submission to master commit decision,
    /// restarts included), seconds.
    pub mean_response_s: f64,
    /// Median response time, seconds (±6.25% bucket resolution).
    pub p50_response_s: f64,
    /// 95th-percentile response time, seconds.
    pub p95_response_s: f64,
    /// 99th-percentile response time, seconds.
    pub p99_response_s: f64,
    /// Mean per-incarnation response time, seconds.
    pub mean_attempt_response_s: f64,
    /// Time-average of (blocked transactions / live transactions).
    pub block_ratio: f64,
    /// Pages borrowed per committed transaction (0 unless OPT).
    pub borrow_ratio: f64,
    /// Execution-phase messages per committed transaction.
    pub exec_messages_per_commit: f64,
    /// Commit-phase messages per committed transaction.
    pub commit_messages_per_commit: f64,
    /// Forced log writes per committed transaction.
    pub forced_writes_per_commit: f64,
    /// Mean time cohorts spent on the OPT shelf, seconds.
    pub mean_shelf_time_s: f64,
    /// Mean time cohorts spent in the prepared state, seconds.
    pub mean_prepared_time_s: f64,
    /// Resource utilizations over the window.
    pub utilizations: Utilizations,
    /// Mean forced writes per log-disk service (1.0 without group
    /// commit; higher when batching actually groups writes; 0 when no
    /// log write completed).
    pub mean_log_batch: f64,
    /// Masters crashed at their decision point inside the window
    /// (failure injection; 0 in the paper's no-failure experiments).
    pub master_crashes: u64,
    /// Total simulation events dispatched (diagnostics).
    pub events: u64,
}

impl SimReport {
    /// Committed transactions per second — the paper's headline metric.
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// All aborts inside the window.
    pub fn total_aborts(&self) -> u64 {
        self.aborted_deadlock + self.aborted_surprise + self.aborted_borrower
    }

    /// Fraction of incarnations that aborted.
    pub fn abort_fraction(&self) -> f64 {
        let attempts = self.committed + self.total_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / attempts as f64
        }
    }

    /// Merge independent replications of the *same* (protocol, MPL)
    /// cell into one report.
    ///
    /// Counts (commits, aborts, messages, events) and simulated time
    /// are summed; rates, ratios and response times are averaged
    /// unweighted (every replication runs the same number of measured
    /// transactions). The throughput confidence interval is computed
    /// *across replications* — mean ± `t₀.₉₅(n−1)·s/√n` over the
    /// per-replication throughputs — which is the textbook independent-
    /// replications estimator and supersedes the per-run batch-means
    /// interval. A single replication is returned unchanged, so
    /// `replications = 1` is bit-identical to a plain run.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn merge_replications(reports: &[SimReport]) -> SimReport {
        assert!(!reports.is_empty(), "cannot merge zero replications");
        if reports.len() == 1 {
            return reports[0].clone();
        }
        let n = reports.len() as f64;
        let mean = |f: &dyn Fn(&SimReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
        let sum = |f: &dyn Fn(&SimReport) -> u64| reports.iter().map(f).sum::<u64>();

        let mut throughputs = Tally::new();
        for r in reports {
            throughputs.record(r.throughput);
        }
        let df = throughputs.count().saturating_sub(1);
        let half_width = simkernel::stats::t_critical_90(df) * throughputs.std_dev()
            / (throughputs.count() as f64).sqrt();

        SimReport {
            protocol: reports[0].protocol.clone(),
            mpl: reports[0].mpl,
            sim_seconds: reports.iter().map(|r| r.sim_seconds).sum(),
            committed: sum(&|r| r.committed),
            aborted_deadlock: sum(&|r| r.aborted_deadlock),
            aborted_surprise: sum(&|r| r.aborted_surprise),
            aborted_borrower: sum(&|r| r.aborted_borrower),
            throughput: throughputs.mean(),
            throughput_ci: ConfidenceInterval {
                mean: throughputs.mean(),
                half_width,
                batches: throughputs.count(),
            },
            mean_response_s: mean(&|r| r.mean_response_s),
            p50_response_s: mean(&|r| r.p50_response_s),
            p95_response_s: mean(&|r| r.p95_response_s),
            p99_response_s: mean(&|r| r.p99_response_s),
            mean_attempt_response_s: mean(&|r| r.mean_attempt_response_s),
            block_ratio: mean(&|r| r.block_ratio),
            borrow_ratio: mean(&|r| r.borrow_ratio),
            exec_messages_per_commit: mean(&|r| r.exec_messages_per_commit),
            commit_messages_per_commit: mean(&|r| r.commit_messages_per_commit),
            forced_writes_per_commit: mean(&|r| r.forced_writes_per_commit),
            mean_shelf_time_s: mean(&|r| r.mean_shelf_time_s),
            mean_prepared_time_s: mean(&|r| r.mean_prepared_time_s),
            utilizations: Utilizations {
                cpu: mean(&|r| r.utilizations.cpu),
                data_disk: mean(&|r| r.utilizations.data_disk),
                log_disk: mean(&|r| r.utilizations.log_disk),
            },
            mean_log_batch: mean(&|r| r.mean_log_batch),
            master_crashes: sum(&|r| r.master_crashes),
            events: sum(&|r| r.events),
        }
    }

    /// One-line summary for logs and examples.
    pub fn summary(&self) -> String {
        format!(
            "{:<8} MPL {:>2}: {:>7.2} txn/s (±{:>4.1}%), resp {:>6.3}s, block {:>5.3}, borrow {:>5.3}, aborts {:.1}%",
            self.protocol,
            self.mpl,
            self.throughput,
            self.throughput_ci.relative_half_width() * 100.0,
            self.mean_response_s,
            self.block_ratio,
            self.borrow_ratio,
            self.abort_fraction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn metrics_batching_produces_throughput_samples() {
        let mut m = Metrics::new(SimTime::ZERO, 100, 10);
        let mut t = 0;
        for _ in 0..100 {
            t += 100; // one commit per 100 ms => 10 txn/s
            m.record_commit(
                at(t),
                SimDuration::from_millis(50),
                SimDuration::from_millis(50),
            );
        }
        let ci = m.throughput_batches.confidence_interval();
        assert_eq!(ci.batches, 10);
        assert!((ci.mean - 10.0).abs() < 1e-9, "mean {}", ci.mean);
        assert!(ci.half_width < 1e-9);
    }

    #[test]
    fn metrics_reset_clears_counts() {
        let mut m = Metrics::new(SimTime::ZERO, 100, 10);
        m.record_commit(
            at(5),
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
        );
        m.record_abort(AbortReason::Deadlock);
        m.exec_messages.add(4);
        m.reset(at(10));
        assert_eq!(m.committed.get(), 0);
        assert_eq!(m.aborted_deadlock.get(), 0);
        assert_eq!(m.exec_messages.get(), 0);
        assert_eq!(m.response.count(), 0);
        assert_eq!(m.start, at(10));
    }

    #[test]
    fn abort_reasons_are_split() {
        let mut m = Metrics::new(SimTime::ZERO, 10, 2);
        m.record_abort(AbortReason::Deadlock);
        m.record_abort(AbortReason::SurpriseVote);
        m.record_abort(AbortReason::SurpriseVote);
        m.record_abort(AbortReason::BorrowerCascade);
        assert_eq!(m.aborted_deadlock.get(), 1);
        assert_eq!(m.aborted_surprise.get(), 2);
        assert_eq!(m.aborted_borrower.get(), 1);
    }

    fn sample_report() -> SimReport {
        SimReport {
            protocol: "2PC".into(),
            mpl: 4,
            sim_seconds: 100.0,
            committed: 900,
            aborted_deadlock: 50,
            aborted_surprise: 25,
            aborted_borrower: 25,
            throughput: 9.0,
            throughput_ci: ConfidenceInterval {
                mean: 9.0,
                half_width: 0.5,
                batches: 10,
            },
            mean_response_s: 0.4,
            p50_response_s: 0.35,
            p95_response_s: 0.9,
            p99_response_s: 1.4,
            mean_attempt_response_s: 0.3,
            block_ratio: 0.2,
            borrow_ratio: 0.0,
            exec_messages_per_commit: 4.0,
            commit_messages_per_commit: 8.0,
            forced_writes_per_commit: 7.0,
            mean_shelf_time_s: 0.0,
            mean_prepared_time_s: 0.05,
            utilizations: Utilizations::default(),
            mean_log_batch: 1.0,
            master_crashes: 0,
            events: 1,
        }
    }

    #[test]
    fn report_derived_quantities() {
        let r = sample_report();
        assert_eq!(r.total_aborts(), 100);
        assert!((r.abort_fraction() - 0.1).abs() < 1e-12);
        let s = r.summary();
        assert!(s.contains("2PC"));
        assert!(s.contains("9.00"));
    }

    #[test]
    fn merge_of_one_replication_is_identity() {
        let r = sample_report();
        let m = SimReport::merge_replications(std::slice::from_ref(&r));
        assert_eq!(m.throughput, r.throughput);
        assert_eq!(m.throughput_ci.half_width, r.throughput_ci.half_width);
        assert_eq!(m.committed, r.committed);
        assert_eq!(m.events, r.events);
    }

    #[test]
    fn merge_averages_rates_and_sums_counts() {
        let a = sample_report();
        let mut b = sample_report();
        b.throughput = 11.0;
        b.committed = 1_100;
        b.block_ratio = 0.4;
        b.mean_response_s = 0.6;
        b.events = 3;
        let m = SimReport::merge_replications(&[a.clone(), b]);
        assert!((m.throughput - 10.0).abs() < 1e-12); // mean of 9 and 11
        assert_eq!(m.committed, 2_000);
        assert_eq!(m.events, 4);
        assert!((m.block_ratio - 0.3).abs() < 1e-12);
        assert!((m.mean_response_s - 0.5).abs() < 1e-12);
        assert_eq!(m.protocol, a.protocol);
        assert_eq!(m.mpl, a.mpl);
        // CI across the two replications: t(1) * s / sqrt(2), s = sqrt(2)
        let expected = simkernel::stats::t_critical_90(1) * 2.0_f64.sqrt() / 2.0_f64.sqrt();
        assert_eq!(m.throughput_ci.batches, 2);
        assert!((m.throughput_ci.mean - 10.0).abs() < 1e-12);
        assert!((m.throughput_ci.half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn merge_of_identical_replications_has_zero_width() {
        let reports = vec![sample_report(); 5];
        let m = SimReport::merge_replications(&reports);
        assert!((m.throughput - 9.0).abs() < 1e-12);
        assert!(m.throughput_ci.half_width < 1e-9);
        assert_eq!(m.throughput_ci.batches, 5);
        assert_eq!(m.sim_seconds, 500.0);
    }
}
