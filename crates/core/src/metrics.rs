//! Run metrics and the public simulation report.
//!
//! The paper's primary metric is *transaction throughput* (committed
//! transactions per second); the secondary metrics are the *block
//! ratio* ("the average fraction of transactions that are in the
//! blocked state", Fig 1b/2b) and OPT's *borrow ratio* ("the average
//! number of data items (pages) borrowed per transaction", Fig 1c/2c).
//! We additionally report per-committed-transaction message and
//! forced-write counts — these validate the simulator against the
//! paper's Tables 3 and 4 — plus response times, abort breakdowns and
//! resource utilizations.

use simkernel::stats::{
    BatchMeans, ConfidenceInterval, Counter, DurationHistogram, Tally, TimeWeighted,
};
use simkernel::{SimDuration, SimTime};

/// Why a transaction incarnation aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Chosen as the youngest victim of a deadlock cycle.
    Deadlock,
    /// A cohort voted NO in the voting phase (§5.7 surprise aborts).
    SurpriseVote,
    /// A lender it had borrowed from aborted (OPT's bounded abort
    /// chain, §3.1).
    BorrowerCascade,
    /// A cohort crashed during the execution phase, before anything
    /// reached stable storage; recovery presumes abort and the
    /// transaction restarts.
    CohortCrash,
}

/// Live accumulation during a run. Reset at the end of warm-up.
#[derive(Debug)]
pub(crate) struct Metrics {
    pub start: SimTime,
    pub committed: Counter,
    pub aborted_deadlock: Counter,
    pub aborted_surprise: Counter,
    pub aborted_borrower: Counter,
    pub aborted_crash: Counter,
    pub exec_messages: Counter,
    pub commit_messages: Counter,
    pub forced_writes: Counter,
    pub borrowed_pages: Counter,
    pub master_crashes: Counter,
    pub cohort_crashes: Counter,
    pub messages_lost: Counter,
    pub retransmissions: Counter,
    pub retry_escalations: Counter,
    pub termination_rounds: Counter,
    pub master_crash_trials: Counter,
    pub cohort_crash_trials: Counter,
    pub message_loss_trials: Counter,
    pub blocked_on_crash_cohorts: Counter,
    /// Per-cohort time spent prepared *and* waiting out a crash, from
    /// the later of (crash instant, prepared instant) to the decision.
    pub crash_block_time: Tally,
    pub response: Tally,
    pub response_hist: DurationHistogram,
    pub attempt_response: Tally,
    pub shelf_time: Tally,
    pub prepared_time: Tally,
    /// Submission → WORKDONE collection complete, committed txns only.
    pub phase_execution: DurationHistogram,
    /// Commit-protocol start → master decision logged.
    pub phase_voting: DurationHistogram,
    /// Master decision → last cohort acknowledged (protocol fully drained).
    pub phase_decision: DurationHistogram,
    /// Running cross-check of measured per-commit overheads against the
    /// analytic model (Tables 3–4).
    pub overhead_check: OverheadCheck,
    pub blocked_txns: TimeWeighted,
    pub live_txns: TimeWeighted,
    pub throughput_batches: BatchMeans,
    batch_size: u64,
    batch_count_in_progress: u64,
    batch_started: SimTime,
    /// Steady-state detection samples: one throughput observation per
    /// `batch_size` commits from t = 0 — warm-up *included*, and never
    /// cleared by [`Metrics::reset`], because the detector has to see
    /// the initial transient to judge whether the warm-up covered it.
    conv_rates: Vec<f64>,
    /// Start time of each convergence sample's batch.
    conv_starts: Vec<SimTime>,
    conv_count_in_progress: u64,
    conv_batch_started: SimTime,
}

impl Metrics {
    pub fn new(now: SimTime, measured: u64, batches: u64) -> Self {
        let batch_size = (measured / batches).max(1);
        Metrics {
            start: now,
            committed: Counter::default(),
            aborted_deadlock: Counter::default(),
            aborted_surprise: Counter::default(),
            aborted_borrower: Counter::default(),
            aborted_crash: Counter::default(),
            exec_messages: Counter::default(),
            commit_messages: Counter::default(),
            forced_writes: Counter::default(),
            borrowed_pages: Counter::default(),
            master_crashes: Counter::default(),
            cohort_crashes: Counter::default(),
            messages_lost: Counter::default(),
            retransmissions: Counter::default(),
            retry_escalations: Counter::default(),
            termination_rounds: Counter::default(),
            master_crash_trials: Counter::default(),
            cohort_crash_trials: Counter::default(),
            message_loss_trials: Counter::default(),
            blocked_on_crash_cohorts: Counter::default(),
            crash_block_time: Tally::new(),
            response: Tally::new(),
            response_hist: DurationHistogram::new(),
            attempt_response: Tally::new(),
            shelf_time: Tally::new(),
            prepared_time: Tally::new(),
            phase_execution: DurationHistogram::new(),
            phase_voting: DurationHistogram::new(),
            phase_decision: DurationHistogram::new(),
            overhead_check: OverheadCheck::default(),
            blocked_txns: TimeWeighted::new(now, 0.0),
            live_txns: TimeWeighted::new(now, 0.0),
            throughput_batches: BatchMeans::new(1), // placeholder, see below
            batch_size,
            batch_count_in_progress: 0,
            batch_started: now,
            conv_rates: Vec::new(),
            conv_starts: Vec::new(),
            conv_count_in_progress: 0,
            conv_batch_started: now,
        }
    }

    /// Reset counters at the end of warm-up, preserving current levels.
    pub fn reset(&mut self, now: SimTime) {
        self.start = now;
        self.committed = Counter::default();
        self.aborted_deadlock = Counter::default();
        self.aborted_surprise = Counter::default();
        self.aborted_borrower = Counter::default();
        self.aborted_crash = Counter::default();
        self.exec_messages = Counter::default();
        self.commit_messages = Counter::default();
        self.forced_writes = Counter::default();
        self.borrowed_pages = Counter::default();
        self.master_crashes = Counter::default();
        self.cohort_crashes = Counter::default();
        self.messages_lost = Counter::default();
        self.retransmissions = Counter::default();
        self.retry_escalations = Counter::default();
        self.termination_rounds = Counter::default();
        self.master_crash_trials = Counter::default();
        self.cohort_crash_trials = Counter::default();
        self.message_loss_trials = Counter::default();
        self.blocked_on_crash_cohorts = Counter::default();
        self.crash_block_time = Tally::new();
        self.response = Tally::new();
        self.response_hist = DurationHistogram::new();
        self.attempt_response = Tally::new();
        self.shelf_time = Tally::new();
        self.prepared_time = Tally::new();
        self.phase_execution = DurationHistogram::new();
        self.phase_voting = DurationHistogram::new();
        self.phase_decision = DurationHistogram::new();
        self.overhead_check = OverheadCheck::default();
        self.blocked_txns.reset(now);
        self.live_txns.reset(now);
        self.throughput_batches = BatchMeans::new(1);
        self.batch_count_in_progress = 0;
        self.batch_started = now;
        // Deliberately NOT reset: conv_rates / conv_starts /
        // conv_count_in_progress / conv_batch_started — steady-state
        // detection spans the whole run, warm-up included.
    }

    /// Record a commit at `now` with the given response times.
    pub fn record_commit(&mut self, now: SimTime, response: SimDuration, attempt: SimDuration) {
        self.committed.bump();
        self.response.record_duration(response);
        self.response_hist.record(response);
        self.attempt_response.record_duration(attempt);
        // Throughput batches: every `batch_size` commits, record the
        // batch's rate as one sample.
        self.batch_count_in_progress += 1;
        if self.batch_count_in_progress == self.batch_size {
            let span = now.since(self.batch_started).as_secs_f64();
            if span > 0.0 {
                self.throughput_batches
                    .record(self.batch_size as f64 / span);
            }
            self.batch_count_in_progress = 0;
            self.batch_started = now;
        }
        // Convergence samples run on their own cursor so the warm-up
        // reset cannot disturb them.
        self.conv_count_in_progress += 1;
        if self.conv_count_in_progress == self.batch_size {
            let span = now.since(self.conv_batch_started).as_secs_f64();
            if span > 0.0 {
                self.conv_rates.push(self.batch_size as f64 / span);
                self.conv_starts.push(self.conv_batch_started);
            }
            self.conv_count_in_progress = 0;
            self.conv_batch_started = now;
        }
    }

    /// Run the MSER steady-state scan over the whole-run throughput
    /// samples and relate the detected transient to where the
    /// configured warm-up actually ended.
    pub fn convergence(&self) -> ConvergenceReport {
        let ss = simkernel::stats::mser_truncation(&self.conv_rates);
        let steady_from_s = if ss.converged {
            self.conv_starts[ss.truncated].as_secs_f64()
        } else {
            f64::NAN
        };
        // `start` is reset to the warm-up boundary when warm-up ends
        // (and stays 0 for warmup = 0 runs).
        let warmup_ended_s = self.start.as_secs_f64();
        ConvergenceReport {
            samples: ss.samples as u64,
            converged: ss.converged,
            steady_from_s,
            warmup_ended_s,
            warmup_sufficient: ss.converged && steady_from_s <= warmup_ended_s,
        }
    }

    pub fn record_abort(&mut self, reason: AbortReason) {
        match reason {
            AbortReason::Deadlock => self.aborted_deadlock.bump(),
            AbortReason::SurpriseVote => self.aborted_surprise.bump(),
            AbortReason::BorrowerCascade => self.aborted_borrower.bump(),
            AbortReason::CohortCrash => self.aborted_crash.bump(),
        }
    }
}

/// Per-resource-class mean utilization over the measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Utilizations {
    /// CPUs, averaged over all sites.
    pub cpu: f64,
    /// Data disks, averaged over all sites and disks.
    pub data_disk: f64,
    /// Log disks, averaged over all sites and disks.
    pub log_disk: f64,
}

/// Summary statistics of one latency distribution, in seconds.
/// Percentiles come from a log-linear histogram (≤6.25% bucket
/// resolution); the mean is exact.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Observations the summary is based on.
    pub count: u64,
    /// Exact mean, seconds.
    pub mean_s: f64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 90th percentile, seconds.
    pub p90_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
}

impl LatencySummary {
    pub(crate) fn from_histogram(h: &DurationHistogram) -> Self {
        LatencySummary {
            count: h.count(),
            mean_s: h.mean().as_secs_f64(),
            p50_s: h.p50().as_secs_f64(),
            p90_s: h.p90().as_secs_f64(),
            p99_s: h.p99().as_secs_f64(),
        }
    }
}

/// Where a committed transaction's time went, split at the commit
/// protocol's phase boundaries (the decomposition behind Tables 3–4:
/// execution messages vs. voting-phase vs. decision-phase overheads).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseLatencies {
    /// Submission to WORKDONE collection complete (execution phase).
    pub execution: LatencySummary,
    /// Commit-protocol start to the master's decision being durable
    /// (voting phase, plus PC's collecting / 3PC's precommit rounds).
    pub voting: LatencySummary,
    /// Master decision to the last cohort acknowledgment (decision/ack
    /// drain; the transaction holds no locks for most of it).
    pub decision: LatencySummary,
}

/// Observed behaviour of one resource class over the window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceStats {
    /// Mean utilization per server (or mean concurrency when infinite).
    pub utilization: f64,
    /// Time-averaged queue length (jobs waiting, not in service).
    pub mean_queue_depth: f64,
    /// Largest queue length seen at any single station of the class.
    pub max_queue_depth: u64,
    /// Mean queueing delay per served job, seconds.
    pub mean_wait_s: f64,
    /// Time-weighted median queue depth (from the occupancy histogram;
    /// fractional after averaging across sites or replications).
    pub queue_depth_p50: f64,
    /// Queue depth not exceeded 90% of the time.
    pub queue_depth_p90: f64,
    /// Queue depth not exceeded 99% of the time — the tail the paper's
    /// mean-based resource metrics cannot show.
    pub queue_depth_p99: f64,
}

/// Queue-depth and utilization report for the three station classes of
/// the paper's physical model (§4).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceReport {
    /// CPUs (common queue per site).
    pub cpu: ResourceStats,
    /// Data disks.
    pub data_disk: ResourceStats,
    /// Log disks (including group-commit batchers when enabled).
    pub log_disk: ResourceStats,
}

impl ResourceReport {
    /// Average a set of per-site reports into one class-level view:
    /// utilizations, queue depths, waits and occupancy percentiles are
    /// averaged; max queue depth is the max over sites. Returns the
    /// default (all-zero) report for an empty slice.
    pub fn average(sites: &[ResourceReport]) -> ResourceReport {
        if sites.is_empty() {
            return ResourceReport::default();
        }
        let avg = |f: &dyn Fn(&ResourceReport) -> &ResourceStats| {
            let n = sites.len() as f64;
            let mean =
                |g: &dyn Fn(&ResourceStats) -> f64| sites.iter().map(|r| g(f(r))).sum::<f64>() / n;
            ResourceStats {
                utilization: mean(&|s| s.utilization),
                mean_queue_depth: mean(&|s| s.mean_queue_depth),
                max_queue_depth: sites
                    .iter()
                    .map(|r| f(r).max_queue_depth)
                    .max()
                    .unwrap_or(0),
                mean_wait_s: mean(&|s| s.mean_wait_s),
                queue_depth_p50: mean(&|s| s.queue_depth_p50),
                queue_depth_p90: mean(&|s| s.queue_depth_p90),
                queue_depth_p99: mean(&|s| s.queue_depth_p99),
            }
        };
        ResourceReport {
            cpu: avg(&|r| &r.cpu),
            data_disk: avg(&|r| &r.data_disk),
            log_disk: avg(&|r| &r.log_disk),
        }
    }
}

/// Runtime cross-check of measured per-commit message/forced-write
/// counts against the analytic model of Tables 3–4
/// (`commitproto`'s `committed_overheads`). Every cleanly committed
/// transaction (no restarts in its history, no master crash) is
/// compared against the model at its actual degree of distribution;
/// any divergence is a simulator bug, not workload noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverheadCheck {
    /// Clean commits whose counters were compared against the model.
    pub checked_commits: u64,
    /// Checked commits whose counters diverged from the prediction.
    pub mismatched_commits: u64,
    /// Sum of |measured − predicted| messages over checked commits.
    pub message_delta: u64,
    /// Sum of |measured − predicted| forced writes over checked commits.
    pub forced_write_delta: u64,
}

impl OverheadCheck {
    /// True when every checked commit matched the analytic model.
    pub fn is_clean(&self) -> bool {
        self.mismatched_commits == 0
    }

    /// Fold one commit's comparison into the running check.
    pub(crate) fn record(&mut self, message_delta: u64, forced_write_delta: u64) {
        self.checked_commits += 1;
        if message_delta != 0 || forced_write_delta != 0 {
            self.mismatched_commits += 1;
            self.message_delta += message_delta;
            self.forced_write_delta += forced_write_delta;
        }
    }
}

/// Fault-injection observability: what the failure subsystem actually
/// did during the measurement window (§2.4 failure experiments).
///
/// The `*_trials` fields count RNG rolls, so observed fault rates
/// (`master_crashes / master_crash_trials`, …) can be cross-checked
/// against the configured probabilities the same way the Tables 3–4
/// overhead check validates message counts. Everything is exactly zero
/// when `failures: None` — the fault paths are never entered.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultCounters {
    /// Masters crashed at their decision point.
    pub master_crashes: u64,
    /// Cohorts crashed right after forcing a prepare/precommit record.
    pub cohort_crashes: u64,
    /// Coordinator messages dropped in transit.
    pub messages_lost: u64,
    /// Timeout-driven retransmissions actually sent.
    pub retransmissions: u64,
    /// Retransmissions that exhausted the retry budget and escalated to
    /// a reliable send.
    pub retry_escalations: u64,
    /// 3PC termination-protocol elections run after a master crash.
    pub termination_rounds: u64,
    /// Master-crash RNG rolls (denominator for the observed crash rate).
    pub master_crash_trials: u64,
    /// Cohort-crash RNG rolls.
    pub cohort_crash_trials: u64,
    /// Message-loss RNG rolls.
    pub message_loss_trials: u64,
    /// Prepared cohorts that spent time blocked behind a crash.
    pub blocked_on_crash_cohorts: u64,
    /// Mean per-cohort blocked-on-crash time, seconds: from the later
    /// of (crash instant, prepared instant) to the cohort's decision.
    /// This is the §2.4 blocking metric — unbounded recovery wait under
    /// 2PC, bounded by detection timeout + termination under 3PC.
    pub mean_blocked_on_crash_s: f64,
}

impl FaultCounters {
    /// True when no fault of any kind fired (the no-failure invariant).
    pub fn is_quiet(&self) -> bool {
        self.master_crashes == 0
            && self.cohort_crashes == 0
            && self.messages_lost == 0
            && self.retransmissions == 0
            && self.retry_escalations == 0
            && self.termination_rounds == 0
            && self.master_crash_trials == 0
            && self.cohort_crash_trials == 0
            && self.message_loss_trials == 0
            && self.blocked_on_crash_cohorts == 0
            && self.mean_blocked_on_crash_s == 0.0
    }

    /// Merge replications: counts sum; the blocked-time mean is
    /// weighted by each replication's blocked-cohort count.
    pub(crate) fn merge(reports: &[SimReport]) -> FaultCounters {
        let sum = |f: &dyn Fn(&FaultCounters) -> u64| reports.iter().map(|r| f(&r.faults)).sum();
        let blocked: u64 = reports
            .iter()
            .map(|r| r.faults.blocked_on_crash_cohorts)
            .sum();
        let mean_blocked = if blocked == 0 {
            0.0
        } else {
            reports
                .iter()
                .map(|r| {
                    r.faults.mean_blocked_on_crash_s * r.faults.blocked_on_crash_cohorts as f64
                })
                .sum::<f64>()
                / blocked as f64
        };
        FaultCounters {
            master_crashes: sum(&|f| f.master_crashes),
            cohort_crashes: sum(&|f| f.cohort_crashes),
            messages_lost: sum(&|f| f.messages_lost),
            retransmissions: sum(&|f| f.retransmissions),
            retry_escalations: sum(&|f| f.retry_escalations),
            termination_rounds: sum(&|f| f.termination_rounds),
            master_crash_trials: sum(&|f| f.master_crash_trials),
            cohort_crash_trials: sum(&|f| f.cohort_crash_trials),
            message_loss_trials: sum(&|f| f.message_loss_trials),
            blocked_on_crash_cohorts: blocked,
            mean_blocked_on_crash_s: mean_blocked,
        }
    }
}

/// Steady-state verdict for one run: did the measured window actually
/// sit in steady state, and did the configured warm-up cover the
/// initial transient? Computed by an MSER scan
/// ([`simkernel::stats::mser_truncation`]) over whole-run throughput
/// samples (warm-up included), so it replaces blind trust in the fixed
/// warm-up commit count.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConvergenceReport {
    /// Throughput batch samples the detector examined (whole run).
    pub samples: u64,
    /// Whether a credible steady state was found.
    pub converged: bool,
    /// Simulated time at which steady state begins (NaN when not
    /// converged).
    pub steady_from_s: f64,
    /// Simulated time at which the configured warm-up ended.
    pub warmup_ended_s: f64,
    /// True when the run converged *and* the warm-up ended at or after
    /// the detected transient — i.e. the measured window is clean.
    pub warmup_sufficient: bool,
}

impl ConvergenceReport {
    /// Merge replications: samples sum; the run is converged only if
    /// every replication converged; steady-state onset is the latest
    /// (most conservative) across replications.
    pub(crate) fn merge(reports: &[SimReport]) -> ConvergenceReport {
        let converged = reports.iter().all(|r| r.convergence.converged);
        let steady_from_s = if converged {
            reports
                .iter()
                .map(|r| r.convergence.steady_from_s)
                .fold(0.0, f64::max)
        } else {
            f64::NAN
        };
        let n = reports.len() as f64;
        ConvergenceReport {
            samples: reports.iter().map(|r| r.convergence.samples).sum(),
            converged,
            steady_from_s,
            warmup_ended_s: reports
                .iter()
                .map(|r| r.convergence.warmup_ended_s)
                .sum::<f64>()
                / n,
            warmup_sufficient: reports.iter().all(|r| r.convergence.warmup_sufficient),
        }
    }
}

/// The result of one simulation run — everything the experiment
/// harness and the figures need.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Protocol name (paper spelling, e.g. "OPT-3PC").
    pub protocol: String,
    /// Per-site multiprogramming level of the run.
    pub mpl: u32,
    /// Length of the measurement window in simulated seconds.
    pub sim_seconds: f64,
    /// Transactions committed inside the window.
    pub committed: u64,
    /// Deadlock-victim aborts inside the window.
    pub aborted_deadlock: u64,
    /// Surprise-vote aborts inside the window.
    pub aborted_surprise: u64,
    /// Borrower-cascade aborts inside the window (OPT only).
    pub aborted_borrower: u64,
    /// Execution-phase cohort-crash aborts inside the window: the
    /// cohort went down before logging anything, so recovery presumed
    /// abort and the transaction restarted.
    pub aborted_crash: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Batch-means 90% confidence interval on the throughput.
    pub throughput_ci: ConfidenceInterval,
    /// Mean response time (submission to master commit decision,
    /// restarts included), seconds.
    pub mean_response_s: f64,
    /// Median response time, seconds (±6.25% bucket resolution).
    pub p50_response_s: f64,
    /// 95th-percentile response time, seconds.
    pub p95_response_s: f64,
    /// 99th-percentile response time, seconds.
    pub p99_response_s: f64,
    /// Mean per-incarnation response time, seconds.
    pub mean_attempt_response_s: f64,
    /// Time-average of (blocked transactions / live transactions).
    pub block_ratio: f64,
    /// Pages borrowed per committed transaction (0 unless OPT).
    pub borrow_ratio: f64,
    /// Execution-phase messages per committed transaction.
    pub exec_messages_per_commit: f64,
    /// Commit-phase messages per committed transaction.
    pub commit_messages_per_commit: f64,
    /// Forced log writes per committed transaction.
    pub forced_writes_per_commit: f64,
    /// Mean time cohorts spent on the OPT shelf, seconds.
    pub mean_shelf_time_s: f64,
    /// Mean time cohorts spent in the prepared state, seconds.
    pub mean_prepared_time_s: f64,
    /// Per-phase latency breakdown of committed transactions.
    pub phase_latencies: PhaseLatencies,
    /// Resource utilizations over the window.
    pub utilizations: Utilizations,
    /// Queue-depth/wait/utilization detail per resource class, one
    /// entry per (effective) site. The site-averaged view is derived by
    /// [`SimReport::resources`], not stored.
    pub site_resources: Vec<ResourceReport>,
    /// Measured-vs-analytic overhead cross-check (Tables 3–4).
    pub overhead_check: OverheadCheck,
    /// Mean forced writes per log-disk service (1.0 without group
    /// commit; higher when batching actually groups writes; 0 when no
    /// log write completed).
    pub mean_log_batch: f64,
    /// Fault-injection counters (all zero in the paper's no-failure
    /// experiments).
    pub faults: FaultCounters,
    /// Steady-state detection verdict for the run.
    pub convergence: ConvergenceReport,
    /// Total simulation events dispatched (diagnostics).
    pub events: u64,
}

fn merge_latency(
    reports: &[SimReport],
    f: &dyn Fn(&SimReport) -> &LatencySummary,
) -> LatencySummary {
    let n = reports.len() as f64;
    let mean =
        |g: &dyn Fn(&LatencySummary) -> f64| reports.iter().map(|r| g(f(r))).sum::<f64>() / n;
    LatencySummary {
        count: reports.iter().map(|r| f(r).count).sum(),
        mean_s: mean(&|l| l.mean_s),
        p50_s: mean(&|l| l.p50_s),
        p90_s: mean(&|l| l.p90_s),
        p99_s: mean(&|l| l.p99_s),
    }
}

fn merge_resource(
    reports: &[SimReport],
    f: &dyn Fn(&SimReport) -> &ResourceStats,
) -> ResourceStats {
    let n = reports.len() as f64;
    let mean = |g: &dyn Fn(&ResourceStats) -> f64| reports.iter().map(|r| g(f(r))).sum::<f64>() / n;
    ResourceStats {
        utilization: mean(&|s| s.utilization),
        mean_queue_depth: mean(&|s| s.mean_queue_depth),
        max_queue_depth: reports
            .iter()
            .map(|r| f(r).max_queue_depth)
            .max()
            .unwrap_or(0),
        mean_wait_s: mean(&|s| s.mean_wait_s),
        queue_depth_p50: mean(&|s| s.queue_depth_p50),
        queue_depth_p90: mean(&|s| s.queue_depth_p90),
        queue_depth_p99: mean(&|s| s.queue_depth_p99),
    }
}

/// Output format for [`SimReport::render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// The human-readable detail block `distcommit run` prints.
    Table,
    /// Long-format CSV: one `section,key,value` row per metric,
    /// including per-site resource rows.
    Csv,
    /// A single JSON object with every report field (hand-rolled, no
    /// serde; non-finite floats serialize as `null`).
    Json,
}

impl std::str::FromStr for ReportFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "table" => Ok(ReportFormat::Table),
            "csv" => Ok(ReportFormat::Csv),
            "json" => Ok(ReportFormat::Json),
            _ => Err(format!("unknown format {s:?} (table|csv|json)")),
        }
    }
}

/// A finite float for JSON (`null` otherwise — JSON has no Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl SimReport {
    /// Committed transactions per second — the paper's headline metric.
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// The site-averaged resource view, derived from
    /// [`SimReport::site_resources`].
    pub fn resources(&self) -> ResourceReport {
        ResourceReport::average(&self.site_resources)
    }

    /// All aborts inside the window.
    pub fn total_aborts(&self) -> u64 {
        self.aborted_deadlock + self.aborted_surprise + self.aborted_borrower + self.aborted_crash
    }

    /// Fraction of incarnations that aborted.
    pub fn abort_fraction(&self) -> f64 {
        let attempts = self.committed + self.total_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / attempts as f64
        }
    }

    /// Merge independent replications of the *same* (protocol, MPL)
    /// cell into one report.
    ///
    /// Counts (commits, aborts, messages, events) and simulated time
    /// are summed; rates, ratios and response times are averaged
    /// unweighted (every replication runs the same number of measured
    /// transactions). The throughput confidence interval is computed
    /// *across replications* — mean ± `t₀.₉₅(n−1)·s/√n` over the
    /// per-replication throughputs — which is the textbook independent-
    /// replications estimator and supersedes the per-run batch-means
    /// interval. A single replication is returned unchanged, so
    /// `replications = 1` is bit-identical to a plain run.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn merge_replications(reports: &[SimReport]) -> SimReport {
        assert!(!reports.is_empty(), "cannot merge zero replications");
        if reports.len() == 1 {
            return reports[0].clone();
        }
        let n = reports.len() as f64;
        let mean = |f: &dyn Fn(&SimReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
        let sum = |f: &dyn Fn(&SimReport) -> u64| reports.iter().map(f).sum::<u64>();

        let mut throughputs = Tally::new();
        for r in reports {
            throughputs.record(r.throughput);
        }
        let df = throughputs.count().saturating_sub(1);
        let half_width = simkernel::stats::t_critical_90(df) * throughputs.std_dev()
            / (throughputs.count() as f64).sqrt();

        SimReport {
            protocol: reports[0].protocol.clone(),
            mpl: reports[0].mpl,
            sim_seconds: reports.iter().map(|r| r.sim_seconds).sum(),
            committed: sum(&|r| r.committed),
            aborted_deadlock: sum(&|r| r.aborted_deadlock),
            aborted_surprise: sum(&|r| r.aborted_surprise),
            aborted_borrower: sum(&|r| r.aborted_borrower),
            aborted_crash: sum(&|r| r.aborted_crash),
            throughput: throughputs.mean(),
            throughput_ci: ConfidenceInterval {
                mean: throughputs.mean(),
                half_width,
                batches: throughputs.count(),
            },
            mean_response_s: mean(&|r| r.mean_response_s),
            p50_response_s: mean(&|r| r.p50_response_s),
            p95_response_s: mean(&|r| r.p95_response_s),
            p99_response_s: mean(&|r| r.p99_response_s),
            mean_attempt_response_s: mean(&|r| r.mean_attempt_response_s),
            block_ratio: mean(&|r| r.block_ratio),
            borrow_ratio: mean(&|r| r.borrow_ratio),
            exec_messages_per_commit: mean(&|r| r.exec_messages_per_commit),
            commit_messages_per_commit: mean(&|r| r.commit_messages_per_commit),
            forced_writes_per_commit: mean(&|r| r.forced_writes_per_commit),
            mean_shelf_time_s: mean(&|r| r.mean_shelf_time_s),
            mean_prepared_time_s: mean(&|r| r.mean_prepared_time_s),
            phase_latencies: PhaseLatencies {
                execution: merge_latency(reports, &|r| &r.phase_latencies.execution),
                voting: merge_latency(reports, &|r| &r.phase_latencies.voting),
                decision: merge_latency(reports, &|r| &r.phase_latencies.decision),
            },
            utilizations: Utilizations {
                cpu: mean(&|r| r.utilizations.cpu),
                data_disk: mean(&|r| r.utilizations.data_disk),
                log_disk: mean(&|r| r.utilizations.log_disk),
            },
            site_resources: {
                let sites = reports.iter().map(|r| r.site_resources.len()).min();
                (0..sites.unwrap_or(0))
                    .map(|i| ResourceReport {
                        cpu: merge_resource(reports, &|r| &r.site_resources[i].cpu),
                        data_disk: merge_resource(reports, &|r| &r.site_resources[i].data_disk),
                        log_disk: merge_resource(reports, &|r| &r.site_resources[i].log_disk),
                    })
                    .collect()
            },
            overhead_check: OverheadCheck {
                checked_commits: sum(&|r| r.overhead_check.checked_commits),
                mismatched_commits: sum(&|r| r.overhead_check.mismatched_commits),
                message_delta: sum(&|r| r.overhead_check.message_delta),
                forced_write_delta: sum(&|r| r.overhead_check.forced_write_delta),
            },
            mean_log_batch: mean(&|r| r.mean_log_batch),
            faults: FaultCounters::merge(reports),
            convergence: ConvergenceReport::merge(reports),
            events: sum(&|r| r.events),
        }
    }

    /// Compact summary for logs and examples: the headline line, the
    /// abort-reason breakdown, and the per-phase latency percentiles.
    pub fn summary(&self) -> String {
        let phase = |l: &LatencySummary| {
            format!(
                "{:.1}/{:.1}/{:.1}",
                l.p50_s * 1e3,
                l.p90_s * 1e3,
                l.p99_s * 1e3
            )
        };
        let avg = self.resources();
        let mut s = format!(
            "{:<8} MPL {:>2}: {:>7.2} txn/s (±{:>4.1}%), resp {:>6.3}s, block {:>5.3}, borrow {:>5.3}, \
             aborts {:.1}% (deadlock {}, vote {}, cascade {}, crash {})\n         \
             phase p50/p90/p99 ms: exec {} | vote {} | ack {} \
             | occ p99 cpu/data/log {:.0}/{:.0}/{:.0}",
            self.protocol,
            self.mpl,
            self.throughput,
            self.throughput_ci.relative_half_width() * 100.0,
            self.mean_response_s,
            self.block_ratio,
            self.borrow_ratio,
            self.abort_fraction() * 100.0,
            self.aborted_deadlock,
            self.aborted_surprise,
            self.aborted_borrower,
            self.aborted_crash,
            phase(&self.phase_latencies.execution),
            phase(&self.phase_latencies.voting),
            phase(&self.phase_latencies.decision),
            avg.cpu.queue_depth_p99,
            avg.data_disk.queue_depth_p99,
            avg.log_disk.queue_depth_p99,
        );
        if !self.faults.is_quiet() {
            let f = &self.faults;
            s.push_str(&format!(
                "\n         faults: master crashes {}, cohort crashes {}, lost {}, \
                 retransmits {} (escalated {}), termination rounds {}, \
                 blocked-on-crash {} cohorts, mean {:.3}s",
                f.master_crashes,
                f.cohort_crashes,
                f.messages_lost,
                f.retransmissions,
                f.retry_escalations,
                f.termination_rounds,
                f.blocked_on_crash_cohorts,
                f.mean_blocked_on_crash_s,
            ));
        }
        let c = &self.convergence;
        if !c.converged {
            s.push_str(&format!(
                "\n         WARNING: NOT CONVERGED — no steady state detected over {} \
                 throughput samples; lengthen the run before trusting these numbers",
                c.samples
            ));
        } else if !c.warmup_sufficient {
            s.push_str(&format!(
                "\n         WARNING: warm-up too short — steady state begins at t={:.2}s \
                 but warm-up ended at t={:.2}s; early transient leaks into the window",
                c.steady_from_s, c.warmup_ended_s
            ));
        }
        s
    }

    /// Render the full report in the requested format. This is the
    /// single entry point the CLI uses, so every subcommand shows the
    /// same numbers the same way.
    pub fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Table => self.render_table(),
            ReportFormat::Csv => self.render_csv(),
            ReportFormat::Json => self.render_json(),
        }
    }

    fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.summary());
        let _ = writeln!(out);
        let _ = writeln!(out, "committed            {}", self.committed);
        let _ = writeln!(
            out,
            "aborts               {} deadlock, {} surprise, {} cascade, {} crash",
            self.aborted_deadlock, self.aborted_surprise, self.aborted_borrower, self.aborted_crash
        );
        let _ = writeln!(
            out,
            "throughput           {:.3} txn/s (90% CI ±{:.1}%)",
            self.throughput,
            self.throughput_ci.relative_half_width() * 100.0
        );
        let _ = writeln!(
            out,
            "response             {:.4}s mean",
            self.mean_response_s
        );
        let _ = writeln!(out, "block ratio          {:.4}", self.block_ratio);
        let _ = writeln!(
            out,
            "borrow ratio         {:.4} pages/txn",
            self.borrow_ratio
        );
        let _ = writeln!(
            out,
            "messages / commit    {:.2} exec + {:.2} commit",
            self.exec_messages_per_commit, self.commit_messages_per_commit
        );
        let _ = writeln!(
            out,
            "forced writes        {:.2} / commit",
            self.forced_writes_per_commit
        );
        for (name, l) in [
            ("exec", &self.phase_latencies.execution),
            ("vote", &self.phase_latencies.voting),
            ("ack", &self.phase_latencies.decision),
        ] {
            let _ = writeln!(
                out,
                "phase {name:<14} mean {:7.2} ms, p50 {:7.2}, p90 {:7.2}, p99 {:7.2}",
                l.mean_s * 1e3,
                l.p50_s * 1e3,
                l.p90_s * 1e3,
                l.p99_s * 1e3
            );
        }
        let resources = self.resources();
        for (name, s) in [
            ("cpu", &resources.cpu),
            ("data disk", &resources.data_disk),
            ("log disk", &resources.log_disk),
        ] {
            let _ = writeln!(
                out,
                "{name:<20} util {:.2}, queue mean {:.2} / max {}, wait {:.4}s",
                s.utilization, s.mean_queue_depth, s.max_queue_depth, s.mean_wait_s
            );
        }
        let _ = writeln!(
            out,
            "occupancy p50/90/99  cpu {:.1}/{:.1}/{:.1} | data {:.1}/{:.1}/{:.1} | \
             log {:.1}/{:.1}/{:.1}",
            resources.cpu.queue_depth_p50,
            resources.cpu.queue_depth_p90,
            resources.cpu.queue_depth_p99,
            resources.data_disk.queue_depth_p50,
            resources.data_disk.queue_depth_p90,
            resources.data_disk.queue_depth_p99,
            resources.log_disk.queue_depth_p50,
            resources.log_disk.queue_depth_p90,
            resources.log_disk.queue_depth_p99,
        );
        for (i, site) in self.site_resources.iter().enumerate() {
            let name = format!("site {i}");
            let _ = writeln!(
                out,
                "{name:<20} util {:.2}/{:.2}/{:.2}, occ p99 {:.0}/{:.0}/{:.0} (cpu/data/log)",
                site.cpu.utilization,
                site.data_disk.utilization,
                site.log_disk.utilization,
                site.cpu.queue_depth_p99,
                site.data_disk.queue_depth_p99,
                site.log_disk.queue_depth_p99,
            );
        }
        let oc = &self.overhead_check;
        let _ = writeln!(
            out,
            "overhead model       {}/{} commits match Tables 3-4{}",
            oc.checked_commits - oc.mismatched_commits,
            oc.checked_commits,
            if oc.is_clean() {
                String::new()
            } else {
                format!(
                    " (MISMATCH: msg delta {}, forced-write delta {})",
                    oc.message_delta, oc.forced_write_delta
                )
            }
        );
        if self.mean_log_batch > 1.0 {
            let _ = writeln!(
                out,
                "log batch            {:.2} writes / service",
                self.mean_log_batch
            );
        }
        let c = &self.convergence;
        if c.converged {
            let _ = writeln!(
                out,
                "convergence          converged at t={:.2}s ({} samples, warm-up ended t={:.2}s{})",
                c.steady_from_s,
                c.samples,
                c.warmup_ended_s,
                if c.warmup_sufficient {
                    ""
                } else {
                    ", WARM-UP TOO SHORT"
                }
            );
        } else {
            let _ = writeln!(
                out,
                "convergence          NOT CONVERGED ({} samples)",
                c.samples
            );
        }
        out
    }

    fn render_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("section,key,value\n");
        {
            let kv = |out: &mut String, sec: &str, key: &str, val: String| {
                let _ = writeln!(out, "{sec},{key},{val}");
            };
            let f = |v: f64| format!("{v:.6}");
            kv(&mut out, "run", "protocol", self.protocol.clone());
            kv(&mut out, "run", "mpl", self.mpl.to_string());
            kv(&mut out, "run", "sim_seconds", f(self.sim_seconds));
            kv(&mut out, "run", "committed", self.committed.to_string());
            kv(
                &mut out,
                "run",
                "aborted_deadlock",
                self.aborted_deadlock.to_string(),
            );
            kv(
                &mut out,
                "run",
                "aborted_surprise",
                self.aborted_surprise.to_string(),
            );
            kv(
                &mut out,
                "run",
                "aborted_borrower",
                self.aborted_borrower.to_string(),
            );
            kv(
                &mut out,
                "run",
                "aborted_crash",
                self.aborted_crash.to_string(),
            );
            kv(&mut out, "run", "throughput", f(self.throughput));
            kv(
                &mut out,
                "run",
                "throughput_ci90",
                f(if self.throughput_ci.half_width.is_finite() {
                    self.throughput_ci.half_width
                } else {
                    0.0
                }),
            );
            kv(&mut out, "run", "mean_response_s", f(self.mean_response_s));
            kv(&mut out, "run", "p50_response_s", f(self.p50_response_s));
            kv(&mut out, "run", "p95_response_s", f(self.p95_response_s));
            kv(&mut out, "run", "p99_response_s", f(self.p99_response_s));
            kv(&mut out, "run", "block_ratio", f(self.block_ratio));
            kv(&mut out, "run", "borrow_ratio", f(self.borrow_ratio));
            kv(
                &mut out,
                "run",
                "exec_messages_per_commit",
                f(self.exec_messages_per_commit),
            );
            kv(
                &mut out,
                "run",
                "commit_messages_per_commit",
                f(self.commit_messages_per_commit),
            );
            kv(
                &mut out,
                "run",
                "forced_writes_per_commit",
                f(self.forced_writes_per_commit),
            );
            kv(&mut out, "run", "mean_log_batch", f(self.mean_log_batch));
            kv(&mut out, "run", "events", self.events.to_string());
            let c = &self.convergence;
            kv(&mut out, "convergence", "samples", c.samples.to_string());
            kv(
                &mut out,
                "convergence",
                "converged",
                (c.converged as u8).to_string(),
            );
            kv(
                &mut out,
                "convergence",
                "steady_from_s",
                f(if c.steady_from_s.is_finite() {
                    c.steady_from_s
                } else {
                    0.0
                }),
            );
            kv(
                &mut out,
                "convergence",
                "warmup_ended_s",
                f(c.warmup_ended_s),
            );
            kv(
                &mut out,
                "convergence",
                "warmup_sufficient",
                (c.warmup_sufficient as u8).to_string(),
            );
            for (name, l) in [
                ("exec", &self.phase_latencies.execution),
                ("vote", &self.phase_latencies.voting),
                ("ack", &self.phase_latencies.decision),
            ] {
                kv(&mut out, "phase", &format!("{name}_p50_s"), f(l.p50_s));
                kv(&mut out, "phase", &format!("{name}_p90_s"), f(l.p90_s));
                kv(&mut out, "phase", &format!("{name}_p99_s"), f(l.p99_s));
            }
            let mut resource_rows = |sec: String, r: &ResourceReport| {
                for (name, s) in [
                    ("cpu", &r.cpu),
                    ("data_disk", &r.data_disk),
                    ("log_disk", &r.log_disk),
                ] {
                    kv(&mut out, &sec, &format!("{name}_util"), f(s.utilization));
                    kv(
                        &mut out,
                        &sec,
                        &format!("{name}_queue_mean"),
                        f(s.mean_queue_depth),
                    );
                    kv(
                        &mut out,
                        &sec,
                        &format!("{name}_queue_max"),
                        s.max_queue_depth.to_string(),
                    );
                    kv(&mut out, &sec, &format!("{name}_wait_s"), f(s.mean_wait_s));
                    kv(
                        &mut out,
                        &sec,
                        &format!("{name}_occ_p50"),
                        f(s.queue_depth_p50),
                    );
                    kv(
                        &mut out,
                        &sec,
                        &format!("{name}_occ_p90"),
                        f(s.queue_depth_p90),
                    );
                    kv(
                        &mut out,
                        &sec,
                        &format!("{name}_occ_p99"),
                        f(s.queue_depth_p99),
                    );
                }
            };
            resource_rows("resources".to_string(), &self.resources());
            for (i, site) in self.site_resources.iter().enumerate() {
                resource_rows(format!("site{i}"), site);
            }
        }
        out
    }

    fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let latency = |l: &LatencySummary| {
            format!(
                "{{\"count\":{},\"mean_s\":{},\"p50_s\":{},\"p90_s\":{},\"p99_s\":{}}}",
                l.count,
                json_f64(l.mean_s),
                json_f64(l.p50_s),
                json_f64(l.p90_s),
                json_f64(l.p99_s)
            )
        };
        let stats = |s: &ResourceStats| {
            format!(
                "{{\"utilization\":{},\"mean_queue_depth\":{},\"max_queue_depth\":{},\
                 \"mean_wait_s\":{},\"queue_depth_p50\":{},\"queue_depth_p90\":{},\
                 \"queue_depth_p99\":{}}}",
                json_f64(s.utilization),
                json_f64(s.mean_queue_depth),
                s.max_queue_depth,
                json_f64(s.mean_wait_s),
                json_f64(s.queue_depth_p50),
                json_f64(s.queue_depth_p90),
                json_f64(s.queue_depth_p99)
            )
        };
        let report = |r: &ResourceReport| {
            format!(
                "{{\"cpu\":{},\"data_disk\":{},\"log_disk\":{}}}",
                stats(&r.cpu),
                stats(&r.data_disk),
                stats(&r.log_disk)
            )
        };
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"protocol\":\"{}\",\"mpl\":{},\"sim_seconds\":{},\"committed\":{},\
             \"aborted_deadlock\":{},\"aborted_surprise\":{},\"aborted_borrower\":{},\
             \"aborted_crash\":{},\"throughput\":{},\"throughput_ci90\":{},\"mean_response_s\":{},\
             \"p50_response_s\":{},\"p95_response_s\":{},\"p99_response_s\":{},\
             \"mean_attempt_response_s\":{},\"block_ratio\":{},\"borrow_ratio\":{},\
             \"exec_messages_per_commit\":{},\"commit_messages_per_commit\":{},\
             \"forced_writes_per_commit\":{},\"mean_shelf_time_s\":{},\
             \"mean_prepared_time_s\":{},\"mean_log_batch\":{},\"events\":{}",
            self.protocol,
            self.mpl,
            json_f64(self.sim_seconds),
            self.committed,
            self.aborted_deadlock,
            self.aborted_surprise,
            self.aborted_borrower,
            self.aborted_crash,
            json_f64(self.throughput),
            json_f64(self.throughput_ci.half_width),
            json_f64(self.mean_response_s),
            json_f64(self.p50_response_s),
            json_f64(self.p95_response_s),
            json_f64(self.p99_response_s),
            json_f64(self.mean_attempt_response_s),
            json_f64(self.block_ratio),
            json_f64(self.borrow_ratio),
            json_f64(self.exec_messages_per_commit),
            json_f64(self.commit_messages_per_commit),
            json_f64(self.forced_writes_per_commit),
            json_f64(self.mean_shelf_time_s),
            json_f64(self.mean_prepared_time_s),
            json_f64(self.mean_log_batch),
            self.events
        );
        let _ = write!(
            out,
            ",\"phase_latencies\":{{\"execution\":{},\"voting\":{},\"decision\":{}}}",
            latency(&self.phase_latencies.execution),
            latency(&self.phase_latencies.voting),
            latency(&self.phase_latencies.decision)
        );
        let _ = write!(
            out,
            ",\"utilizations\":{{\"cpu\":{},\"data_disk\":{},\"log_disk\":{}}}",
            json_f64(self.utilizations.cpu),
            json_f64(self.utilizations.data_disk),
            json_f64(self.utilizations.log_disk)
        );
        let _ = write!(out, ",\"resources\":{}", report(&self.resources()));
        out.push_str(",\"site_resources\":[");
        for (i, site) in self.site_resources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&report(site));
        }
        out.push(']');
        let oc = &self.overhead_check;
        let _ = write!(
            out,
            ",\"overhead_check\":{{\"checked_commits\":{},\"mismatched_commits\":{},\
             \"message_delta\":{},\"forced_write_delta\":{}}}",
            oc.checked_commits, oc.mismatched_commits, oc.message_delta, oc.forced_write_delta
        );
        let fc = &self.faults;
        let _ = write!(
            out,
            ",\"faults\":{{\"master_crashes\":{},\"cohort_crashes\":{},\"messages_lost\":{},\
             \"retransmissions\":{},\"retry_escalations\":{},\"termination_rounds\":{},\
             \"master_crash_trials\":{},\"cohort_crash_trials\":{},\"message_loss_trials\":{},\
             \"blocked_on_crash_cohorts\":{},\"mean_blocked_on_crash_s\":{}}}",
            fc.master_crashes,
            fc.cohort_crashes,
            fc.messages_lost,
            fc.retransmissions,
            fc.retry_escalations,
            fc.termination_rounds,
            fc.master_crash_trials,
            fc.cohort_crash_trials,
            fc.message_loss_trials,
            fc.blocked_on_crash_cohorts,
            json_f64(fc.mean_blocked_on_crash_s)
        );
        let c = &self.convergence;
        let _ = write!(
            out,
            ",\"convergence\":{{\"samples\":{},\"converged\":{},\"steady_from_s\":{},\
             \"warmup_ended_s\":{},\"warmup_sufficient\":{}}}",
            c.samples,
            c.converged,
            json_f64(c.steady_from_s),
            json_f64(c.warmup_ended_s),
            c.warmup_sufficient
        );
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn metrics_batching_produces_throughput_samples() {
        let mut m = Metrics::new(SimTime::ZERO, 100, 10);
        let mut t = 0;
        for _ in 0..100 {
            t += 100; // one commit per 100 ms => 10 txn/s
            m.record_commit(
                at(t),
                SimDuration::from_millis(50),
                SimDuration::from_millis(50),
            );
        }
        let ci = m.throughput_batches.confidence_interval();
        assert_eq!(ci.batches, 10);
        assert!((ci.mean - 10.0).abs() < 1e-9, "mean {}", ci.mean);
        assert!(ci.half_width < 1e-9);
    }

    #[test]
    fn metrics_reset_clears_counts() {
        let mut m = Metrics::new(SimTime::ZERO, 100, 10);
        m.record_commit(
            at(5),
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
        );
        m.record_abort(AbortReason::Deadlock);
        m.exec_messages.add(4);
        m.reset(at(10));
        assert_eq!(m.committed.get(), 0);
        assert_eq!(m.aborted_deadlock.get(), 0);
        assert_eq!(m.exec_messages.get(), 0);
        assert_eq!(m.response.count(), 0);
        assert_eq!(m.start, at(10));
    }

    #[test]
    fn abort_reasons_are_split() {
        let mut m = Metrics::new(SimTime::ZERO, 10, 2);
        m.record_abort(AbortReason::Deadlock);
        m.record_abort(AbortReason::SurpriseVote);
        m.record_abort(AbortReason::SurpriseVote);
        m.record_abort(AbortReason::BorrowerCascade);
        m.record_abort(AbortReason::CohortCrash);
        assert_eq!(m.aborted_deadlock.get(), 1);
        assert_eq!(m.aborted_surprise.get(), 2);
        assert_eq!(m.aborted_borrower.get(), 1);
        assert_eq!(m.aborted_crash.get(), 1);
    }

    fn sample_report() -> SimReport {
        SimReport {
            protocol: "2PC".into(),
            mpl: 4,
            sim_seconds: 100.0,
            committed: 900,
            aborted_deadlock: 50,
            aborted_surprise: 25,
            aborted_borrower: 25,
            aborted_crash: 0,
            throughput: 9.0,
            throughput_ci: ConfidenceInterval {
                mean: 9.0,
                half_width: 0.5,
                batches: 10,
            },
            mean_response_s: 0.4,
            p50_response_s: 0.35,
            p95_response_s: 0.9,
            p99_response_s: 1.4,
            mean_attempt_response_s: 0.3,
            block_ratio: 0.2,
            borrow_ratio: 0.0,
            exec_messages_per_commit: 4.0,
            commit_messages_per_commit: 8.0,
            forced_writes_per_commit: 7.0,
            mean_shelf_time_s: 0.0,
            mean_prepared_time_s: 0.05,
            phase_latencies: PhaseLatencies {
                execution: LatencySummary {
                    count: 900,
                    mean_s: 0.3,
                    p50_s: 0.28,
                    p90_s: 0.4,
                    p99_s: 0.5,
                },
                voting: LatencySummary {
                    count: 900,
                    mean_s: 0.08,
                    p50_s: 0.07,
                    p90_s: 0.1,
                    p99_s: 0.12,
                },
                decision: LatencySummary {
                    count: 900,
                    mean_s: 0.02,
                    p50_s: 0.02,
                    p90_s: 0.03,
                    p99_s: 0.04,
                },
            },
            utilizations: Utilizations::default(),
            site_resources: vec![ResourceReport {
                cpu: ResourceStats {
                    utilization: 0.5,
                    mean_queue_depth: 1.5,
                    max_queue_depth: 6,
                    mean_wait_s: 0.001,
                    queue_depth_p50: 1.0,
                    queue_depth_p90: 3.0,
                    queue_depth_p99: 5.0,
                },
                data_disk: ResourceStats::default(),
                log_disk: ResourceStats::default(),
            }],
            overhead_check: OverheadCheck {
                checked_commits: 900,
                mismatched_commits: 0,
                message_delta: 0,
                forced_write_delta: 0,
            },
            mean_log_batch: 1.0,
            faults: FaultCounters::default(),
            convergence: ConvergenceReport {
                samples: 11,
                converged: true,
                steady_from_s: 2.0,
                warmup_ended_s: 5.0,
                warmup_sufficient: true,
            },
            events: 1,
        }
    }

    #[test]
    fn report_derived_quantities() {
        let r = sample_report();
        assert_eq!(r.total_aborts(), 100);
        assert!((r.abort_fraction() - 0.1).abs() < 1e-12);
        let s = r.summary();
        assert!(s.contains("2PC"));
        assert!(s.contains("9.00"));
    }

    #[test]
    fn merge_of_one_replication_is_identity() {
        let r = sample_report();
        let m = SimReport::merge_replications(std::slice::from_ref(&r));
        assert_eq!(m.throughput, r.throughput);
        assert_eq!(m.throughput_ci.half_width, r.throughput_ci.half_width);
        assert_eq!(m.committed, r.committed);
        assert_eq!(m.events, r.events);
    }

    #[test]
    fn merge_averages_rates_and_sums_counts() {
        let a = sample_report();
        let mut b = sample_report();
        b.throughput = 11.0;
        b.committed = 1_100;
        b.block_ratio = 0.4;
        b.mean_response_s = 0.6;
        b.events = 3;
        let m = SimReport::merge_replications(&[a.clone(), b]);
        assert!((m.throughput - 10.0).abs() < 1e-12); // mean of 9 and 11
        assert_eq!(m.committed, 2_000);
        assert_eq!(m.events, 4);
        assert!((m.block_ratio - 0.3).abs() < 1e-12);
        assert!((m.mean_response_s - 0.5).abs() < 1e-12);
        assert_eq!(m.protocol, a.protocol);
        assert_eq!(m.mpl, a.mpl);
        // CI across the two replications: t(1) * s / sqrt(2), s = sqrt(2)
        let expected = simkernel::stats::t_critical_90(1) * 2.0_f64.sqrt() / 2.0_f64.sqrt();
        assert_eq!(m.throughput_ci.batches, 2);
        assert!((m.throughput_ci.mean - 10.0).abs() < 1e-12);
        assert!((m.throughput_ci.half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn merge_of_identical_replications_has_zero_width() {
        let reports = vec![sample_report(); 5];
        let m = SimReport::merge_replications(&reports);
        assert!((m.throughput - 9.0).abs() < 1e-12);
        assert!(m.throughput_ci.half_width < 1e-9);
        assert_eq!(m.throughput_ci.batches, 5);
        assert_eq!(m.sim_seconds, 500.0);
    }

    #[test]
    fn merge_covers_observability_fields() {
        let a = sample_report();
        let mut b = sample_report();
        b.phase_latencies.voting.p90_s = 0.2;
        b.site_resources[0].cpu.max_queue_depth = 10;
        b.site_resources[0].cpu.mean_queue_depth = 2.5;
        b.overhead_check.checked_commits = 100;
        b.overhead_check.mismatched_commits = 1;
        b.overhead_check.message_delta = 2;
        let m = SimReport::merge_replications(&[a, b]);
        // Phase percentiles average, counts sum.
        assert!((m.phase_latencies.voting.p90_s - 0.15).abs() < 1e-12);
        assert_eq!(m.phase_latencies.voting.count, 1_800);
        // Queue depth means average, max is the max over replications.
        assert!((m.site_resources[0].cpu.mean_queue_depth - 2.0).abs() < 1e-12);
        assert_eq!(m.site_resources[0].cpu.max_queue_depth, 10);
        // The derived average view reflects the merged per-site stats.
        assert!((m.resources().cpu.mean_queue_depth - 2.0).abs() < 1e-12);
        // Overhead checks sum, and any mismatch survives the merge.
        assert_eq!(m.overhead_check.checked_commits, 1_000);
        assert_eq!(m.overhead_check.mismatched_commits, 1);
        assert_eq!(m.overhead_check.message_delta, 2);
        assert!(!m.overhead_check.is_clean());
    }

    #[test]
    fn merge_sums_fault_counts_and_weights_blocked_time() {
        let mut a = sample_report();
        a.faults = FaultCounters {
            master_crashes: 2,
            cohort_crashes: 1,
            messages_lost: 3,
            retransmissions: 4,
            retry_escalations: 1,
            termination_rounds: 2,
            master_crash_trials: 100,
            cohort_crash_trials: 50,
            message_loss_trials: 200,
            blocked_on_crash_cohorts: 1,
            mean_blocked_on_crash_s: 5.0,
        };
        let mut b = sample_report();
        b.faults.blocked_on_crash_cohorts = 3;
        b.faults.mean_blocked_on_crash_s = 1.0;
        b.faults.master_crash_trials = 100;
        let m = SimReport::merge_replications(&[a, b]);
        assert_eq!(m.faults.master_crashes, 2);
        assert_eq!(m.faults.messages_lost, 3);
        assert_eq!(m.faults.retransmissions, 4);
        assert_eq!(m.faults.termination_rounds, 2);
        assert_eq!(m.faults.master_crash_trials, 200);
        assert_eq!(m.faults.blocked_on_crash_cohorts, 4);
        // Weighted: (1*5.0 + 3*1.0) / 4 = 2.0
        assert!((m.faults.mean_blocked_on_crash_s - 2.0).abs() < 1e-12);
        assert!(!m.faults.is_quiet());
    }

    #[test]
    fn quiet_faults_are_quiet_and_stay_out_of_the_summary() {
        let r = sample_report();
        assert!(r.faults.is_quiet());
        assert!(!r.summary().contains("faults:"));
        let mut f = sample_report();
        f.faults.master_crashes = 7;
        f.faults.master_crash_trials = 90;
        assert!(!f.faults.is_quiet());
        assert!(f.summary().contains("master crashes 7"), "{}", f.summary());
    }

    #[test]
    fn summary_renders_abort_breakdown_and_phases() {
        let s = sample_report().summary();
        assert!(s.contains("deadlock 50"), "{s}");
        assert!(s.contains("vote 25"), "{s}");
        assert!(s.contains("cascade 25"), "{s}");
        assert!(s.contains("phase p50/p90/p99"), "{s}");
        assert!(s.contains("exec 280.0/400.0/500.0"), "{s}");
    }

    #[test]
    fn report_format_parses_and_rejects() {
        assert_eq!(
            "table".parse::<ReportFormat>().unwrap(),
            ReportFormat::Table
        );
        assert_eq!("CSV".parse::<ReportFormat>().unwrap(), ReportFormat::Csv);
        assert_eq!("json".parse::<ReportFormat>().unwrap(), ReportFormat::Json);
        let err = "xml".parse::<ReportFormat>().unwrap_err();
        assert!(err.contains("xml"), "{err}");
        assert!(err.contains("table|csv|json"), "{err}");
    }

    #[test]
    fn resource_average_means_stats_and_maxes_depth() {
        let a = ResourceReport {
            cpu: ResourceStats {
                utilization: 0.2,
                mean_queue_depth: 1.0,
                max_queue_depth: 3,
                mean_wait_s: 0.01,
                queue_depth_p50: 1.0,
                queue_depth_p90: 2.0,
                queue_depth_p99: 3.0,
            },
            ..ResourceReport::default()
        };
        let b = ResourceReport {
            cpu: ResourceStats {
                utilization: 0.4,
                mean_queue_depth: 3.0,
                max_queue_depth: 7,
                mean_wait_s: 0.03,
                queue_depth_p50: 3.0,
                queue_depth_p90: 4.0,
                queue_depth_p99: 9.0,
            },
            ..ResourceReport::default()
        };
        let avg = ResourceReport::average(&[a, b]);
        assert!((avg.cpu.utilization - 0.3).abs() < 1e-12);
        assert!((avg.cpu.mean_queue_depth - 2.0).abs() < 1e-12);
        assert_eq!(avg.cpu.max_queue_depth, 7);
        assert!((avg.cpu.mean_wait_s - 0.02).abs() < 1e-12);
        assert!((avg.cpu.queue_depth_p99 - 6.0).abs() < 1e-12);
        // Empty slice degrades to the default rather than NaN.
        assert_eq!(ResourceReport::average(&[]).cpu.max_queue_depth, 0);
    }

    #[test]
    fn render_table_carries_core_lines_and_occupancy() {
        let t = sample_report().render(ReportFormat::Table);
        assert!(t.contains("committed            900"), "{t}");
        assert!(
            t.contains("throughput           9.000 txn/s (90% CI ±5.6%)"),
            "{t}"
        );
        assert!(
            t.contains("messages / commit    4.00 exec + 8.00 commit"),
            "{t}"
        );
        assert!(t.contains("occupancy p50/90/99  cpu 1.0/3.0/5.0"), "{t}");
        assert!(
            t.contains("site 0               util 0.50/0.00/0.00"),
            "{t}"
        );
        assert!(
            t.contains("overhead model       900/900 commits match Tables 3-4"),
            "{t}"
        );
    }

    #[test]
    fn render_csv_is_long_format_with_occupancy_columns() {
        let c = sample_report().render(ReportFormat::Csv);
        assert!(c.starts_with("section,key,value\n"), "{c}");
        assert!(c.contains("run,committed,900\n"), "{c}");
        assert!(c.contains("resources,cpu_occ_p99,5.000000\n"), "{c}");
        assert!(c.contains("site0,cpu_occ_p90,3.000000\n"), "{c}");
        // Every line is exactly three comma-separated fields.
        for line in c.lines() {
            assert_eq!(line.split(',').count(), 3, "{line}");
        }
    }

    #[test]
    fn render_json_is_balanced_and_nulls_non_finite() {
        let mut r = sample_report();
        r.throughput_ci.half_width = f64::INFINITY;
        let j = r.render(ReportFormat::Json);
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces: {j}"
        );
        assert!(j.contains("\"throughput_ci90\":null"), "{j}");
        assert!(j.contains("\"committed\":900"), "{j}");
        assert!(j.contains("\"site_resources\":[{"), "{j}");
        assert!(j.contains("\"queue_depth_p99\":5"), "{j}");
        assert!(!j.contains("inf"), "{j}");
        assert!(j.contains("\"convergence\":{\"samples\":11"), "{j}");
    }

    #[test]
    fn convergence_sampling_survives_warmup_reset() {
        let mut m = Metrics::new(SimTime::ZERO, 100, 10);
        let mut t = 0;
        for i in 0..60 {
            t += 100;
            m.record_commit(
                at(t),
                SimDuration::from_millis(50),
                SimDuration::from_millis(50),
            );
            if i == 29 {
                m.reset(at(t));
            }
        }
        // 60 commits at batch size 10 → 6 whole-run samples, even
        // though the warm-up reset wiped the measurement batches.
        let c = m.convergence();
        assert_eq!(c.samples, 6);
        assert!((c.warmup_ended_s - 3.0).abs() < 1e-9);
        assert_eq!(m.committed.get(), 30);
    }

    #[test]
    fn convergence_warnings_surface_in_summary_and_table() {
        let mut r = sample_report();
        r.convergence.converged = false;
        r.convergence.steady_from_s = f64::NAN;
        let s = r.summary();
        assert!(s.contains("NOT CONVERGED"), "{s}");
        let t = r.render(ReportFormat::Table);
        assert!(
            t.contains("convergence          NOT CONVERGED (11 samples)"),
            "{t}"
        );
        let j = r.render(ReportFormat::Json);
        assert!(j.contains("\"converged\":false"), "{j}");
        assert!(j.contains("\"steady_from_s\":null"), "{j}");

        let mut short = sample_report();
        short.convergence.warmup_sufficient = false;
        short.convergence.steady_from_s = 8.0;
        assert!(
            short.summary().contains("warm-up too short"),
            "{}",
            short.summary()
        );
        assert!(
            short
                .render(ReportFormat::Table)
                .contains("WARM-UP TOO SHORT"),
            "{}",
            short.render(ReportFormat::Table)
        );

        // A clean report stays warning-free.
        let clean = sample_report();
        assert!(!clean.summary().contains("WARNING"), "{}", clean.summary());
        assert!(clean.render(ReportFormat::Table).contains(
            "convergence          converged at t=2.00s (11 samples, warm-up ended t=5.00s)"
        ));
    }

    #[test]
    fn merge_convergence_is_conservative() {
        let a = sample_report();
        let mut b = sample_report();
        b.convergence.steady_from_s = 4.0;
        let m = SimReport::merge_replications(&[a.clone(), b.clone()]);
        assert!(m.convergence.converged);
        assert_eq!(m.convergence.samples, 22);
        assert!((m.convergence.steady_from_s - 4.0).abs() < 1e-12);
        assert!(m.convergence.warmup_sufficient);

        b.convergence.converged = false;
        b.convergence.warmup_sufficient = false;
        let m = SimReport::merge_replications(&[a, b]);
        assert!(!m.convergence.converged);
        assert!(!m.convergence.warmup_sufficient);
        assert!(m.convergence.steady_from_s.is_nan());
    }
}
