//! Deterministic parallel execution of independent simulation jobs.
//!
//! Every cell of an experiment grid — one (protocol, MPL, replication)
//! triple — is an independent [`crate::engine::Simulation::run`] with
//! its own derived seed, so the grid is embarrassingly parallel. This
//! module fans a job list out over `std::thread::scope` workers (the
//! repository is std-only by design) and reassembles the results **in
//! input order**, so the output of a sweep is byte-identical for any
//! worker count: parallelism changes wall-clock time, never results.
//!
//! The worker count comes from, in order of precedence: an explicit
//! request (the `--jobs` CLI flag), the `DISTCOMMIT_JOBS` environment
//! variable, and [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted by [`default_jobs`].
pub const JOBS_ENV: &str = "DISTCOMMIT_JOBS";

/// Environment variable consulted by [`default_shards`]: the intra-run
/// shard count used when a command does not pass `--shards`.
pub const SHARDS_ENV: &str = "DISTCOMMIT_SHARDS";

/// Environment variable consulted by [`progress_enabled`]: `0` (or
/// empty) forces progress lines off, any other value forces them on.
pub const PROGRESS_ENV: &str = "DISTCOMMIT_PROGRESS";

/// Whether grid progress lines should be emitted on stderr. Defaults
/// to "stderr is a terminal", so redirected/piped and CI runs stay
/// quiet; `DISTCOMMIT_PROGRESS` overrides in either direction.
///
/// Progress goes to *stderr* only — stdout carries the sweep results
/// and must stay byte-identical for any worker count.
pub fn progress_enabled() -> bool {
    use std::io::IsTerminal as _;
    match std::env::var(PROGRESS_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => std::io::stderr().is_terminal(),
    }
}

/// A thread-safe progress reporter for a grid of cells: each completed
/// cell logs `done/total`, the aggregate cell rate, and the cell's own
/// wall time to stderr (when [`progress_enabled`]).
pub struct Progress {
    enabled: bool,
    label: String,
    total: usize,
    done: AtomicUsize,
    start: std::time::Instant,
}

impl Progress {
    /// A reporter for `total` cells, labelled (e.g. `"sweep"`).
    pub fn new(label: impl Into<String>, total: usize) -> Self {
        Progress {
            enabled: progress_enabled(),
            label: label.into(),
            total,
            done: AtomicUsize::new(0),
            start: std::time::Instant::now(),
        }
    }

    /// Record one finished cell; `desc` identifies it (protocol, MPL,
    /// seed) and `cell_secs` is its individual wall time.
    pub fn cell_done(&self, desc: &str, cell_secs: f64) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        eprintln!(
            "{}",
            Self::line(&self.label, done, self.total, elapsed, desc, cell_secs)
        );
    }

    /// Render one progress line (pure; unit-tested separately from the
    /// stderr side effect).
    fn line(
        label: &str,
        done: usize,
        total: usize,
        elapsed_secs: f64,
        desc: &str,
        cell_secs: f64,
    ) -> String {
        let rate = if elapsed_secs > 0.0 {
            done as f64 / elapsed_secs
        } else {
            0.0
        };
        format!("[{label}] {done}/{total} cells, {rate:.2} cells/s — {desc} in {cell_secs:.2}s")
    }
}

/// Parse a jobs value: positive decimal integer, clamped to ≥ 1.
/// Returns `None` for anything unparsable so callers can fall through
/// to the next source.
pub fn parse_jobs(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The worker count used when the caller does not specify one:
/// `DISTCOMMIT_JOBS` if set and valid, else the machine's available
/// parallelism, else 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Some(n) = parse_jobs(&v) {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve an optional explicit request against [`default_jobs`].
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => default_jobs(),
    }
}

/// The intra-run shard count used when the CLI does not pass
/// `--shards`: `DISTCOMMIT_SHARDS` if set and a positive integer, else
/// 0 — the serial engine.
///
/// Unlike [`default_jobs`] this never falls back to the core count:
/// any shard count ≥ 1 produces identical output, but 0 (serial) and
/// ≥ 1 (parallel) are distinct deterministic families, so switching
/// engines must always be an explicit request — flag or environment —
/// never an artifact of the machine.
pub fn default_shards() -> u32 {
    if let Ok(v) = std::env::var(SHARDS_ENV) {
        if let Some(n) = parse_jobs(&v) {
            return u32::try_from(n).unwrap_or(u32::MAX);
        }
    }
    0
}

/// Map `f` over `inputs` on up to `jobs` worker threads, returning the
/// outputs **in input order** regardless of completion order.
///
/// Work is distributed dynamically (an atomic cursor), so stragglers —
/// e.g. high-MPL cells that simulate more events — do not serialize the
/// grid the way fixed chunking would. With `jobs <= 1` (or a single
/// input) this degenerates to a plain sequential map on the calling
/// thread, with no thread machinery at all.
pub fn run_ordered<I, O, F>(inputs: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return inputs.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<O>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(&inputs[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every input index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn progress_line_reports_count_rate_and_cell_time() {
        let line = Progress::line("sweep", 3, 40, 2.0, "2PC mpl 4 seed 42", 0.8125);
        assert_eq!(
            line,
            "[sweep] 3/40 cells, 1.50 cells/s — 2PC mpl 4 seed 42 in 0.81s"
        );
        // Zero elapsed time must not divide by zero.
        let line = Progress::line("x", 1, 1, 0.0, "d", 0.0);
        assert!(line.contains("0.00 cells/s"));
    }

    #[test]
    fn parse_jobs_accepts_positive_integers() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 12 "), Some(12));
        assert_eq!(parse_jobs("1"), Some(1));
        assert_eq!(parse_jobs("0"), None);
        assert_eq!(parse_jobs("-3"), None);
        assert_eq!(parse_jobs("many"), None);
        assert_eq!(parse_jobs(""), None);
    }

    #[test]
    fn resolve_jobs_clamps_explicit_zero() {
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert_eq!(resolve_jobs(Some(7)), 7);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn ordered_output_for_any_worker_count() {
        let inputs: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = inputs.iter().map(|x| x * x + 1).collect();
        for jobs in [1, 2, 3, 4, 8, 200] {
            let got = run_ordered(&inputs, jobs, |&x| x * x + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn uneven_work_still_reassembles_in_order() {
        // Make late indices cheap and early ones expensive so threads
        // finish far out of submission order.
        let inputs: Vec<usize> = (0..32).collect();
        let got = run_ordered(&inputs, 4, |&i| {
            let spins = (32 - i) * 2_000;
            let mut acc = i as u64;
            for k in 0..spins as u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            i
        });
        assert_eq!(got, inputs);
    }

    #[test]
    fn every_input_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let inputs: Vec<usize> = (0..50).collect();
        run_ordered(&inputs, 6, |&i| counters[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "input {i}");
        }
    }

    #[test]
    fn sequential_path_used_for_single_job() {
        // With jobs=1 the closure runs on the calling thread.
        let caller = std::thread::current().id();
        let ids = run_ordered(&[1, 2, 3], 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn errors_propagate_as_values() {
        let inputs = [1i32, -2, 3];
        let got: Result<Vec<i32>, String> = run_ordered(&inputs, 2, |&x| {
            if x < 0 {
                Err(format!("negative: {x}"))
            } else {
                Ok(x)
            }
        })
        .into_iter()
        .collect();
        assert_eq!(got, Err("negative: -2".to_string()));
    }
}
