//! Deterministic parallel execution of independent simulation jobs.
//!
//! Every cell of an experiment grid — one (protocol, MPL, replication)
//! triple — is an independent [`crate::engine::Simulation::run`] with
//! its own derived seed, so the grid is embarrassingly parallel. This
//! module fans a job list out over `std::thread::scope` workers (the
//! repository is std-only by design) and reassembles the results **in
//! input order**, so the output of a sweep is byte-identical for any
//! worker count: parallelism changes wall-clock time, never results.
//!
//! The worker count comes from, in order of precedence: an explicit
//! request (the `--jobs` CLI flag), the `DISTCOMMIT_JOBS` environment
//! variable, and [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted by [`default_jobs`].
pub const JOBS_ENV: &str = "DISTCOMMIT_JOBS";

/// Parse a jobs value: positive decimal integer, clamped to ≥ 1.
/// Returns `None` for anything unparsable so callers can fall through
/// to the next source.
pub fn parse_jobs(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The worker count used when the caller does not specify one:
/// `DISTCOMMIT_JOBS` if set and valid, else the machine's available
/// parallelism, else 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Some(n) = parse_jobs(&v) {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve an optional explicit request against [`default_jobs`].
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => default_jobs(),
    }
}

/// Map `f` over `inputs` on up to `jobs` worker threads, returning the
/// outputs **in input order** regardless of completion order.
///
/// Work is distributed dynamically (an atomic cursor), so stragglers —
/// e.g. high-MPL cells that simulate more events — do not serialize the
/// grid the way fixed chunking would. With `jobs <= 1` (or a single
/// input) this degenerates to a plain sequential map on the calling
/// thread, with no thread machinery at all.
pub fn run_ordered<I, O, F>(inputs: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return inputs.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<O>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(&inputs[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every input index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parse_jobs_accepts_positive_integers() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 12 "), Some(12));
        assert_eq!(parse_jobs("1"), Some(1));
        assert_eq!(parse_jobs("0"), None);
        assert_eq!(parse_jobs("-3"), None);
        assert_eq!(parse_jobs("many"), None);
        assert_eq!(parse_jobs(""), None);
    }

    #[test]
    fn resolve_jobs_clamps_explicit_zero() {
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert_eq!(resolve_jobs(Some(7)), 7);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn ordered_output_for_any_worker_count() {
        let inputs: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = inputs.iter().map(|x| x * x + 1).collect();
        for jobs in [1, 2, 3, 4, 8, 200] {
            let got = run_ordered(&inputs, jobs, |&x| x * x + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn uneven_work_still_reassembles_in_order() {
        // Make late indices cheap and early ones expensive so threads
        // finish far out of submission order.
        let inputs: Vec<usize> = (0..32).collect();
        let got = run_ordered(&inputs, 4, |&i| {
            let spins = (32 - i) * 2_000;
            let mut acc = i as u64;
            for k in 0..spins as u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            i
        });
        assert_eq!(got, inputs);
    }

    #[test]
    fn every_input_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let inputs: Vec<usize> = (0..50).collect();
        run_ordered(&inputs, 6, |&i| counters[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "input {i}");
        }
    }

    #[test]
    fn sequential_path_used_for_single_job() {
        // With jobs=1 the closure runs on the calling thread.
        let caller = std::thread::current().id();
        let ids = run_ordered(&[1, 2, 3], 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn errors_propagate_as_values() {
        let inputs = [1i32, -2, 3];
        let got: Result<Vec<i32>, String> = run_ordered(&inputs, 2, |&x| {
            if x < 0 {
                Err(format!("negative: {x}"))
            } else {
                Ok(x)
            }
        })
        .into_iter()
        .collect();
        assert_eq!(got, Err("negative: -2".to_string()));
    }
}
