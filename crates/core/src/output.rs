//! Plain-text rendering of experiment results: the "same rows/series
//! the paper reports", as protocol × MPL tables plus CSV for plotting.

use crate::engine::chrome::escape_json;
use crate::engine::SeriesFormat;
use crate::experiments::{Experiment, SeriesCell};
use crate::metrics::{ReportFormat, SimReport};
use std::fmt::Write as _;

/// A metric extracted from a [`SimReport`] for tabulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Committed transactions per second (Figs 1a, 2a, 3a/b, 4a/b, 5a/b).
    Throughput,
    /// Fraction of transactions blocked (Figs 1b, 2b).
    BlockRatio,
    /// Pages borrowed per transaction (Figs 1c, 2c).
    BorrowRatio,
    /// Mean response time in seconds.
    ResponseTime,
    /// 95th-percentile response time in seconds.
    ResponseP95,
    /// Fraction of incarnations aborted.
    AbortFraction,
    /// Forced log writes per committed transaction.
    ForcedWritesPerCommit,
    /// Total messages per committed transaction.
    MessagesPerCommit,
    /// Mean time a prepared cohort spent blocked on a crashed master
    /// (seconds) — the `faults` preset's headline curve, separating
    /// blocking protocols (blocked for the full recovery time) from
    /// 3PC termination and Paxos Commit failover.
    CrashBlockedTime,
}

impl Metric {
    /// Column header / figure-axis label.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Throughput => "Throughput (txn/s)",
            Metric::BlockRatio => "Block ratio",
            Metric::BorrowRatio => "Borrow ratio (pages/txn)",
            Metric::ResponseTime => "Mean response (s)",
            Metric::ResponseP95 => "p95 response (s)",
            Metric::AbortFraction => "Abort fraction",
            Metric::ForcedWritesPerCommit => "Forced writes / commit",
            Metric::MessagesPerCommit => "Messages / commit",
            Metric::CrashBlockedTime => "Blocked on crash (s)",
        }
    }

    /// Extract the metric from a report.
    pub fn of(self, r: &SimReport) -> f64 {
        match self {
            Metric::Throughput => r.throughput,
            Metric::BlockRatio => r.block_ratio,
            Metric::BorrowRatio => r.borrow_ratio,
            Metric::ResponseTime => r.mean_response_s,
            Metric::ResponseP95 => r.p95_response_s,
            Metric::AbortFraction => r.abort_fraction(),
            Metric::ForcedWritesPerCommit => r.forced_writes_per_commit,
            Metric::MessagesPerCommit => r.exec_messages_per_commit + r.commit_messages_per_commit,
            Metric::CrashBlockedTime => r.faults.mean_blocked_on_crash_s,
        }
    }
}

/// Render one metric of an experiment as an aligned text table with
/// MPL rows and one column per protocol series.
pub fn render_table(exp: &Experiment, metric: Metric) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", exp.title, metric.label());
    let width = exp
        .series
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(8)
        .max(8);
    let _ = write!(out, "{:>6}", "MPL");
    for s in &exp.series {
        let _ = write!(out, " {:>width$}", s.label, width = width);
    }
    let _ = writeln!(out);
    let mpls = exp.mpls();
    for (i, mpl) in mpls.iter().enumerate() {
        let _ = write!(out, "{mpl:>6}");
        for s in &exp.series {
            let v = s.points.get(i).map(|r| metric.of(r)).unwrap_or(f64::NAN);
            let _ = write!(out, " {:>width$.3}", v, width = width);
        }
        let _ = writeln!(out);
    }
    out
}

/// Render the throughput table with each cell as `mean ±hw`, where the
/// half-width is the 90% confidence interval — across replications for
/// replicated sweeps, batch-means within the single run otherwise.
pub fn render_table_ci(exp: &Experiment) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {} — Throughput (txn/s, mean ±90% CI) ==",
        exp.title
    );
    let cell = |r: &SimReport| format!("{:.2} ±{:.2}", r.throughput, r.throughput_ci.half_width);
    let width = exp
        .series
        .iter()
        .flat_map(|s| std::iter::once(s.label.len()).chain(s.points.iter().map(|r| cell(r).len())))
        .max()
        .unwrap_or(8)
        .max(8);
    let _ = write!(out, "{:>6}", "MPL");
    for s in &exp.series {
        let _ = write!(out, " {:>width$}", s.label, width = width);
    }
    let _ = writeln!(out);
    for (i, mpl) in exp.mpls().iter().enumerate() {
        let _ = write!(out, "{mpl:>6}");
        for s in &exp.series {
            let v = s.points.get(i).map(&cell).unwrap_or_else(|| "-".into());
            let _ = write!(out, " {v:>width$}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Throughput CSV with a `<series> ci90` half-width column after each
/// series mean — the plottable form of [`render_table_ci`].
pub fn render_csv_ci(exp: &Experiment) -> String {
    let mut out = String::new();
    let _ = write!(out, "mpl");
    for s in &exp.series {
        let label = s.label.replace(',', ";");
        let _ = write!(out, ",{label},{label} ci90");
    }
    let _ = writeln!(out);
    for (i, mpl) in exp.mpls().iter().enumerate() {
        let _ = write!(out, "{mpl}");
        for s in &exp.series {
            match s.points.get(i) {
                Some(r) => {
                    let _ = write!(
                        out,
                        ",{:.6},{:.6}",
                        r.throughput, r.throughput_ci.half_width
                    );
                }
                None => {
                    let _ = write!(out, ",NaN,NaN");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Per-phase latency percentiles as CSV: for every series, nine
/// columns — p50/p90/p99 of the execution, voting, and decision/ack
/// phases, in seconds. The plottable form of the phase line in
/// [`SimReport::summary`].
pub fn render_phase_csv(exp: &Experiment) -> String {
    let mut out = String::new();
    let _ = write!(out, "mpl");
    for s in &exp.series {
        let label = s.label.replace(',', ";");
        for phase in ["exec", "vote", "ack"] {
            for q in ["p50", "p90", "p99"] {
                let _ = write!(out, ",{label} {phase} {q}");
            }
        }
    }
    let _ = writeln!(out);
    for (i, mpl) in exp.mpls().iter().enumerate() {
        let _ = write!(out, "{mpl}");
        for s in &exp.series {
            match s.points.get(i) {
                Some(r) => {
                    let ph = &r.phase_latencies;
                    for l in [&ph.execution, &ph.voting, &ph.decision] {
                        let _ = write!(out, ",{:.6},{:.6},{:.6}", l.p50_s, l.p90_s, l.p99_s);
                    }
                }
                None => {
                    for _ in 0..9 {
                        let _ = write!(out, ",NaN");
                    }
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Per-site station-occupancy percentiles as CSV: one row per
/// (MPL, series, site) with the time-weighted p50/p90/p99 queue depth
/// of the site's CPU, data disks and log disks. The plottable form of
/// [`SimReport::site_resources`].
pub fn render_occupancy_csv(exp: &Experiment) -> String {
    let mut out = String::new();
    let _ = write!(out, "mpl,series,site");
    for station in ["cpu", "data", "log"] {
        for q in ["p50", "p90", "p99"] {
            let _ = write!(out, ",{station} occ {q}");
        }
    }
    let _ = writeln!(out);
    for (i, mpl) in exp.mpls().iter().enumerate() {
        for s in &exp.series {
            let Some(r) = s.points.get(i) else { continue };
            let label = s.label.replace(',', ";");
            for (site, res) in r.site_resources.iter().enumerate() {
                let _ = write!(out, "{mpl},{label},{site}");
                for st in [&res.cpu, &res.data_disk, &res.log_disk] {
                    let _ = write!(
                        out,
                        ",{:.6},{:.6},{:.6}",
                        st.queue_depth_p50, st.queue_depth_p90, st.queue_depth_p99
                    );
                }
                let _ = writeln!(out);
            }
        }
    }
    out
}

/// The sweep CLI's `--csv` output: the throughput CSV (means plus 90%
/// CI half-widths), the per-phase latency percentile CSV, and the
/// per-site occupancy percentile CSV — three machine-readable blocks
/// from the same runs, separated by blank lines. Like every renderer
/// over a [`sweep`](crate::experiments::sweep) result, the output is
/// byte-identical for every `--jobs` count.
pub fn render_sweep_csv(exp: &Experiment) -> String {
    let mut out = render_csv_ci(exp);
    out.push('\n');
    out.push_str(&render_phase_csv(exp));
    out.push('\n');
    out.push_str(&render_occupancy_csv(exp));
    out
}

/// The sweep CLI's `--format json` output: one JSON document carrying
/// the experiment identity and, per protocol series, the full
/// [`SimReport`] object of every point (the same
/// [`SimReport::render`] JSON the `run` subcommand emits), so every
/// number the table, CSV and chart views derive from is available to
/// machine consumers from a single sweep. Like every renderer over a
/// [`sweep`](crate::experiments::sweep) result, the output is
/// byte-identical for every `--jobs` count.
pub fn render_sweep_json(exp: &Experiment) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"id\":\"{}\",\"title\":\"{}\",\"series\":[",
        escape_json(&exp.id),
        escape_json(&exp.title)
    );
    for (si, s) in exp.series.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"points\":[",
            escape_json(&s.label)
        );
        for (pi, r) in s.points.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            out.push_str(&r.render(ReportFormat::Json));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// The sweep CLI's `--series-out` CSV: every grid cell's windowed
/// series concatenated into one rectangular table, each data row
/// prefixed with `series,mpl,rep` identity columns so a single file
/// holds the whole grid. Row contents per cell are byte-identical to a
/// standalone [`Series::render`](crate::engine::Series::render).
pub fn render_sweep_series_csv(cells: &[SeriesCell]) -> String {
    let mut out = String::new();
    for (i, c) in cells.iter().enumerate() {
        let rendered = c.series.render(SeriesFormat::Csv);
        let mut lines = rendered.lines();
        let Some(header) = lines.next() else { continue };
        if i == 0 {
            let _ = writeln!(out, "series,mpl,rep,{header}");
        }
        let label = c.label.replace(',', ";");
        for line in lines {
            let _ = writeln!(out, "{label},{},{},{line}", c.mpl, c.replication);
        }
    }
    out
}

/// The sweep CLI's `--series-out` JSON: one document with a `cells`
/// array, each element carrying the cell identity and the standalone
/// series document (exactly what
/// [`Series::render`](crate::engine::Series::render) produces) under
/// `data`.
pub fn render_sweep_series_json(cells: &[SeriesCell]) -> String {
    let mut out = String::from("{\"cells\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"series\":\"{}\",\"mpl\":{},\"rep\":{},\"data\":{}}}",
            escape_json(&c.label),
            c.mpl,
            c.replication,
            c.series.render(SeriesFormat::Json)
        );
    }
    out.push_str("]}\n");
    out
}

/// Render one metric as CSV (`mpl,<series...>`), for plotting.
pub fn render_csv(exp: &Experiment, metric: Metric) -> String {
    let mut out = String::new();
    let _ = write!(out, "mpl");
    for s in &exp.series {
        let _ = write!(out, ",{}", s.label.replace(',', ";"));
    }
    let _ = writeln!(out);
    for (i, mpl) in exp.mpls().iter().enumerate() {
        let _ = write!(out, "{mpl}");
        for s in &exp.series {
            let v = s.points.get(i).map(|r| metric.of(r)).unwrap_or(f64::NAN);
            let _ = write!(out, ",{v:.6}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Render one metric of an experiment as an ASCII chart in the style
/// of the paper's figures: MPL on the x-axis, one glyph per protocol
/// series, linear y-axis from zero.
pub fn render_ascii_chart(exp: &Experiment, metric: Metric, width: usize, height: usize) -> String {
    const GLYPHS: &[u8] = b"*+xo#@%&$~^=";
    let width = width.max(20);
    let height = height.max(5);
    let mpls = exp.mpls();
    if mpls.is_empty() || exp.series.is_empty() {
        return format!("== {} — {} ==\n(no data)\n", exp.title, metric.label());
    }
    let max_val = exp
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|r| metric.of(r)))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let min_mpl = *mpls.first().expect("non-empty") as f64;
    let max_mpl = *mpls.last().expect("non-empty") as f64;
    let x_span = (max_mpl - min_mpl).max(1e-9);

    let mut grid = vec![vec![b' '; width]; height];
    for (si, s) in exp.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for r in &s.points {
            let v = metric.of(r);
            if !v.is_finite() {
                continue;
            }
            let x = ((r.mpl as f64 - min_mpl) / x_span * (width - 1) as f64).round() as usize;
            let y = (v / max_val * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", exp.title, metric.label());
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max_val:>8.1} |")
        } else if i == height - 1 {
            format!("{:>8.1} |", 0.0)
        } else {
            format!("{:>8} |", "")
        };
        let _ = writeln!(out, "{label}{}", String::from_utf8_lossy(row));
    }
    let _ = writeln!(out, "{:>9}+{}", "", "-".repeat(width));
    let _ = writeln!(out, "{:>10}MPL {min_mpl:.0} .. {max_mpl:.0}", "");
    for (si, s) in exp.series.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>10}{} {}",
            "",
            GLYPHS[si % GLYPHS.len()] as char,
            s.label
        );
    }
    out
}

/// Per-series peak-throughput summary — the comparison the paper's
/// conclusions are phrased in.
pub fn render_peaks(exp: &Experiment) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {}: peak throughput --", exp.title);
    for s in &exp.series {
        let _ = writeln!(
            out,
            "{:<16} {:>8.2} txn/s at MPL {}",
            s.label,
            s.peak_throughput(),
            s.peak_mpl()
        );
    }
    out
}

/// Ranking table for single-MPL mix sweeps (the `scale` preset): every
/// series sorted by peak throughput, best first, alongside the metrics
/// that explain the ordering — under WAN latencies the response-time
/// and blocking columns are where the prepared-state protocols give
/// their rank away.
pub fn render_ranking(exp: &Experiment) -> String {
    let mut rows: Vec<_> = exp.series.iter().collect();
    rows.sort_by(|a, b| b.peak_throughput().total_cmp(&a.peak_throughput()));
    let mut out = String::new();
    let _ = writeln!(out, "-- {}: ranking --", exp.title);
    let _ = writeln!(
        out,
        "{:>4}  {:<24} {:>10} {:>10} {:>8} {:>8}",
        "rank", "series", "txn/s", "resp ms", "block", "msg/c"
    );
    for (i, s) in rows.iter().enumerate() {
        let p = s
            .points
            .iter()
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
            .expect("series have at least one point");
        let _ = writeln!(
            out,
            "{:>4}  {:<24} {:>10.2} {:>10.1} {:>8.3} {:>8.2}",
            i + 1,
            s.label,
            p.throughput,
            p.mean_response_s * 1_000.0,
            p.block_ratio,
            p.exec_messages_per_commit + p.commit_messages_per_commit,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::experiments::{sweep, Scale};
    use commitproto::ProtocolSpec;

    fn tiny_experiment() -> Experiment {
        let cfg = SystemConfig::paper_baseline();
        let scale = Scale::quick()
            .with_runs(10, 80)
            .with_mpls(vec![1, 2])
            .with_seed(3)
            .with_jobs(Some(1));
        let specs = vec![
            ("2PC".to_string(), ProtocolSpec::TWO_PC, cfg.clone()),
            ("OPT".to_string(), ProtocolSpec::OPT_2PC, cfg.clone()),
        ];
        Experiment {
            id: "test".into(),
            title: "test experiment".into(),
            config: cfg.clone(),
            series: sweep(&cfg, &specs, &scale).unwrap(),
        }
    }

    /// The ranking table lists every series exactly once, best
    /// throughput first, with ranks counting up from 1.
    #[test]
    fn ranking_sorts_by_throughput() {
        let e = tiny_experiment();
        let t = render_ranking(&e);
        assert!(t.contains("ranking"));
        assert!(t.contains("2PC"));
        assert!(t.contains("OPT"));
        assert_eq!(t.lines().count(), 2 + 2); // title + header + 2 series
        let best = e
            .series
            .iter()
            .max_by(|a, b| a.peak_throughput().total_cmp(&b.peak_throughput()))
            .unwrap();
        let first_row = t.lines().nth(2).unwrap();
        assert!(first_row.trim_start().starts_with('1'));
        assert!(first_row.contains(&best.label));
    }

    #[test]
    fn table_contains_all_series_and_mpls() {
        let e = tiny_experiment();
        let t = render_table(&e, Metric::Throughput);
        assert!(t.contains("2PC"));
        assert!(t.contains("OPT"));
        assert!(t.contains("Throughput"));
        assert_eq!(t.lines().count(), 2 + 2); // header + title + 2 MPL rows
    }

    #[test]
    fn ci_table_shows_mean_and_half_width() {
        let e = tiny_experiment();
        let t = render_table_ci(&e);
        assert!(t.contains("±90% CI"));
        assert!(t.contains('±'));
        assert!(t.contains("2PC"));
        assert_eq!(t.lines().count(), 2 + 2); // title + header + 2 MPL rows
    }

    #[test]
    fn ci_csv_adds_one_half_width_column_per_series() {
        let e = tiny_experiment();
        let csv = render_csv_ci(&e);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        // mpl + (mean, ci) per series
        assert_eq!(header.split(',').count(), 1 + 2 * e.series.len());
        assert!(header.contains("2PC ci90"));
        for line in lines {
            assert_eq!(
                line.split(',').count(),
                1 + 2 * e.series.len(),
                "ragged: {line}"
            );
        }
    }

    #[test]
    fn phase_csv_has_nine_columns_per_series() {
        let e = tiny_experiment();
        let csv = render_phase_csv(&e);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 1 + 9 * e.series.len());
        assert!(header.contains("2PC exec p50"));
        assert!(header.contains("OPT ack p99"));
        for line in lines {
            assert_eq!(
                line.split(',').count(),
                1 + 9 * e.series.len(),
                "ragged: {line}"
            );
        }
        // Committed transactions exist, so percentiles are positive.
        let first = csv.lines().nth(1).unwrap();
        let exec_p50: f64 = first.split(',').nth(1).unwrap().parse().unwrap();
        assert!(exec_p50 > 0.0);
    }

    #[test]
    fn sweep_csv_concatenates_all_three_blocks() {
        let e = tiny_experiment();
        let csv = render_sweep_csv(&e);
        let blocks: Vec<&str> = csv.split("\n\n").collect();
        assert_eq!(blocks.len(), 3, "throughput + phase + occupancy blocks");
        assert_eq!(blocks[0], render_csv_ci(&e).trim_end_matches('\n'));
        assert!(blocks[1].starts_with("mpl,2PC exec p50"));
        assert!(blocks[2].starts_with("mpl,series,site,cpu occ p50"));
    }

    #[test]
    fn sweep_json_is_balanced_and_names_every_series() {
        let e = tiny_experiment();
        let j = render_sweep_json(&e);
        assert!(j.starts_with("{\"id\":\"test\",\"title\":\"test experiment\""));
        assert!(j.contains("\"label\":\"2PC\""));
        assert!(j.contains("\"label\":\"OPT\""));
        // Each point is a full report object, as `run --format json`.
        assert!(j.contains("\"points\":[{\"protocol\":"));
        assert!(j.contains("\"convergence\":"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains("inf") && !j.contains("NaN"));
        assert!(j.ends_with("]}\n"));
    }

    fn tiny_series_cells() -> Vec<SeriesCell> {
        let cfg = SystemConfig::paper_baseline();
        let scale = Scale::quick()
            .with_runs(10, 80)
            .with_mpls(vec![1, 2])
            .with_seed(3)
            .with_jobs(Some(1));
        let specs = vec![
            ("2PC".to_string(), ProtocolSpec::TWO_PC, cfg.clone()),
            ("OPT".to_string(), ProtocolSpec::OPT_2PC, cfg.clone()),
        ];
        let scfg = crate::engine::SeriesConfig::default();
        let (_, cells) = crate::experiments::sweep_with_series(&cfg, &specs, &scale, &scfg)
            .expect("tiny sweep runs");
        cells
    }

    #[test]
    fn sweep_series_csv_prefixes_identity_and_stays_rectangular() {
        let cells = tiny_series_cells();
        assert_eq!(cells.len(), 4, "2 series x 2 MPLs x 1 rep");
        let csv = render_sweep_series_csv(&cells);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("series,mpl,rep,window,start_s"));
        let n = header.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), n, "ragged: {line}");
        }
        assert!(csv.contains("\n2PC,1,0,"));
        assert!(csv.contains("\nOPT,2,0,"));
    }

    #[test]
    fn sweep_series_json_embeds_each_cell_document() {
        let cells = tiny_series_cells();
        let j = render_sweep_series_json(&cells);
        assert!(j.starts_with("{\"cells\":["));
        assert_eq!(j.matches("\"data\":{").count(), cells.len());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"series\":\"2PC\",\"mpl\":1,\"rep\":0"));
        assert!(j.contains("\"series\":\"OPT\",\"mpl\":2,\"rep\":0"));
    }

    #[test]
    fn occupancy_csv_has_one_row_per_mpl_series_site() {
        let e = tiny_experiment();
        let csv = render_occupancy_csv(&e);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 3 + 9);
        assert!(header.contains("log occ p99"));
        let sites = e.series[0].points[0].site_resources.len();
        assert!(sites > 0);
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), e.mpls().len() * e.series.len() * sites);
        for row in rows {
            assert_eq!(row.split(',').count(), 3 + 9, "ragged: {row}");
        }
        // Rows name each series and enumerate sites from zero.
        assert!(csv.contains("1,2PC,0,"));
        assert!(csv.contains("2,OPT,0,"));
    }

    #[test]
    fn csv_is_rectangular() {
        let e = tiny_experiment();
        let csv = render_csv(&e, Metric::BlockRatio);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 3);
        for line in lines {
            assert_eq!(line.split(',').count(), 3, "ragged row: {line}");
        }
    }

    #[test]
    fn ascii_chart_has_axes_legend_and_marks() {
        let e = tiny_experiment();
        let chart = render_ascii_chart(&e, Metric::Throughput, 40, 10);
        assert!(chart.contains("Throughput"));
        assert!(chart.contains("* 2PC"));
        assert!(chart.contains("+ OPT"));
        assert!(chart.contains("MPL 1 .. 2"));
        assert!(chart.contains('|'));
        assert!(chart.contains('+'));
        // marks actually plotted
        assert!(chart.contains('*'));
        // y axis starts at zero
        assert!(chart.contains("     0.0 |"));
    }

    #[test]
    fn ascii_chart_clamps_tiny_dimensions() {
        let e = tiny_experiment();
        let chart = render_ascii_chart(&e, Metric::BlockRatio, 1, 1);
        // clamped to minimum size rather than panicking
        assert!(chart.lines().count() >= 5);
    }

    #[test]
    fn ascii_chart_handles_empty_experiment() {
        let e = Experiment {
            id: "empty".into(),
            title: "empty".into(),
            config: SystemConfig::paper_baseline(),
            series: vec![],
        };
        let chart = render_ascii_chart(&e, Metric::Throughput, 30, 8);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn peaks_mention_every_series() {
        let e = tiny_experiment();
        let p = render_peaks(&e);
        assert!(p.contains("2PC"));
        assert!(p.contains("OPT"));
        assert!(p.contains("txn/s"));
    }

    #[test]
    fn metric_extraction_is_consistent() {
        let e = tiny_experiment();
        let r = &e.series[0].points[0];
        assert_eq!(Metric::Throughput.of(r), r.throughput);
        assert_eq!(
            Metric::MessagesPerCommit.of(r),
            r.exec_messages_per_commit + r.commit_messages_per_commit
        );
        for m in [
            Metric::Throughput,
            Metric::BlockRatio,
            Metric::BorrowRatio,
            Metric::ResponseTime,
            Metric::ResponseP95,
            Metric::AbortFraction,
            Metric::ForcedWritesPerCommit,
            Metric::MessagesPerCommit,
            Metric::CrashBlockedTime,
        ] {
            assert!(!m.label().is_empty());
            assert!(m.of(r).is_finite());
        }
    }
}
