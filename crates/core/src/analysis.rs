//! Operational analysis: the model-independent laws of queueing
//! systems (Denning & Buzen), computed from a [`SimReport`] and the
//! configuration that produced it.
//!
//! These serve two purposes:
//!
//! 1. **Validation** — a correct simulator *must* obey the operational
//!    laws; the integration suite checks every run against them:
//!    * Little's law: `N = X · R` (population = throughput × response),
//!    * the utilization law: `U_k = X · D_k` (utilization = throughput
//!      × per-transaction service demand at resource `k`);
//! 2. **Bounds** — the demand-based throughput ceiling
//!    `X ≤ 1 / max_k(D_k per server)` tells you which resource will
//!    saturate first and what peak throughput is even achievable —
//!    before running anything.

use crate::config::{ResourceMode, SystemConfig};
use crate::metrics::SimReport;
use commitproto::ProtocolSpec;

/// Per-transaction service demands (seconds) at each resource class of
/// one site, assuming the workload spreads uniformly over sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceDemands {
    /// CPU seconds per transaction per site (data + message processing).
    pub cpu_s: f64,
    /// Data-disk seconds per transaction per site.
    pub data_disk_s: f64,
    /// Log-disk seconds per transaction per site.
    pub log_disk_s: f64,
}

impl ServiceDemands {
    /// Mean demands for a committing transaction under `spec`, per
    /// site (the transaction touches `DistDegree` of `NumSites` sites;
    /// demands here are averaged over all sites).
    pub fn committed(cfg: &SystemConfig, spec: ProtocolSpec) -> ServiceDemands {
        let pages = (cfg.dist_degree * cfg.cohort_size) as f64;
        let o = spec.committed_overheads(cfg.dist_degree);
        let sites = cfg.num_sites as f64;

        // CPU: page processing + 2 × MsgCPU per message transfer.
        let cpu = pages * cfg.page_cpu.as_secs_f64()
            + (o.total_messages() as f64) * 2.0 * cfg.msg_cpu.as_secs_f64();
        // Data disks: one read per page (plus write-back if modeled).
        let write_factor = if cfg.model_deferred_writes {
            1.0 + cfg.update_prob
        } else {
            1.0
        };
        let data = pages * write_factor * cfg.page_disk.as_secs_f64();
        // Log disks: one page write per forced record.
        let log = o.forced_writes as f64 * cfg.page_disk.as_secs_f64();

        ServiceDemands {
            cpu_s: cpu / sites,
            data_disk_s: data / sites,
            log_disk_s: log / sites,
        }
    }

    /// The demand-based throughput ceiling (transactions/second,
    /// system-wide): no protocol can push a committed transaction
    /// through faster than its busiest resource class allows.
    /// Meaningless (infinite) under infinite resources.
    pub fn throughput_bound(&self, cfg: &SystemConfig) -> f64 {
        if cfg.resources == ResourceMode::Infinite {
            return f64::INFINITY;
        }
        let per_server = [
            self.cpu_s / cfg.num_cpus as f64,
            self.data_disk_s / cfg.num_data_disks as f64,
            self.log_disk_s / cfg.num_log_disks as f64,
        ];
        let max = per_server.iter().cloned().fold(0.0, f64::max);
        if max <= 0.0 {
            f64::INFINITY
        } else {
            // Demands are already per-site; a site saturates when
            // X × max = 1, so the system-wide ceiling is 1 / max.
            1.0 / max
        }
    }

    /// Which resource class saturates first.
    pub fn bottleneck(&self, cfg: &SystemConfig) -> &'static str {
        let cpu = self.cpu_s / cfg.num_cpus as f64;
        let dd = self.data_disk_s / cfg.num_data_disks as f64;
        let ld = self.log_disk_s / cfg.num_log_disks as f64;
        if cpu >= dd && cpu >= ld {
            "cpu"
        } else if dd >= ld {
            "data disk"
        } else {
            "log disk"
        }
    }
}

/// One operational-law check: a named relative residual.
#[derive(Debug, Clone, PartialEq)]
pub struct LawCheck {
    /// Which law ("little", "utilization cpu", ...).
    pub law: &'static str,
    /// Predicted value.
    pub predicted: f64,
    /// Observed value.
    pub observed: f64,
}

impl LawCheck {
    /// |observed − predicted| / max(predicted, ε).
    pub fn relative_error(&self) -> f64 {
        (self.observed - self.predicted).abs() / self.predicted.abs().max(1e-9)
    }
}

/// Check a report against the operational laws. Returns one entry per
/// law; callers assert on [`LawCheck::relative_error`].
///
/// Caveats baked in:
/// * Little's law uses the *attempt* population: restarts spend their
///   backoff outside the system, so `N` is the measured mean live
///   population, approximated by `MPL × NumSites` only when aborts are
///   rare. We therefore predict `N` from `X · R_attempt + aborted
///   share`, and instead check the utilization laws, which are exact.
/// * The utilization laws hold for any work-conserving discipline, so
///   they are exact up to the (small) work done for transactions that
///   later abort.
pub fn check_laws(cfg: &SystemConfig, spec: ProtocolSpec, report: &SimReport) -> Vec<LawCheck> {
    let demands = ServiceDemands::committed(cfg, spec);
    // U_k = X · D_k with D_k the per-*server* demand: `demands` are
    // per-site, so dividing by the site's unit count yields a quantity
    // invariant under CENT's site merge (n× sites folds into n× units).
    let x = report.throughput;
    let mut checks = vec![
        LawCheck {
            law: "utilization cpu",
            predicted: x * demands.cpu_s / cfg.num_cpus as f64,
            observed: report.utilizations.cpu,
        },
        LawCheck {
            law: "utilization data disk",
            predicted: x * demands.data_disk_s / cfg.num_data_disks as f64,
            observed: report.utilizations.data_disk,
        },
        LawCheck {
            law: "utilization log disk",
            predicted: x * demands.log_disk_s / cfg.num_log_disks as f64,
            observed: report.utilizations.log_disk,
        },
    ];
    // Little's law over committed flow: mean live population equals
    // X × R with R the full response time — only asserted when aborts
    // are rare (the caller can filter on `abort_fraction`).
    checks.push(LawCheck {
        law: "little",
        predicted: report.throughput * report.mean_response_s,
        observed: (cfg.mpl as usize * cfg.num_sites) as f64,
    });
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demands_match_hand_computation() {
        let cfg = SystemConfig::paper_baseline();
        let d = ServiceDemands::committed(&cfg, ProtocolSpec::TWO_PC);
        // 18 pages × 5 ms CPU + 12 transfers × 2 × 5 ms = 90 + 120 = 210 ms over 8 sites
        assert!((d.cpu_s - 0.210 / 8.0).abs() < 1e-9, "cpu {}", d.cpu_s);
        // 18 reads × 20 ms = 360 ms over 8 sites (no write-back by default)
        assert!((d.data_disk_s - 0.360 / 8.0).abs() < 1e-9);
        // 7 forced writes × 20 ms = 140 ms over 8 sites
        assert!((d.log_disk_s - 0.140 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn deferred_writes_double_data_demand_at_full_update() {
        let mut cfg = SystemConfig::paper_baseline();
        let base = ServiceDemands::committed(&cfg, ProtocolSpec::TWO_PC).data_disk_s;
        cfg.model_deferred_writes = true;
        let with = ServiceDemands::committed(&cfg, ProtocolSpec::TWO_PC).data_disk_s;
        assert!((with - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_and_bound_for_the_baseline() {
        let cfg = SystemConfig::paper_baseline();
        let d = ServiceDemands::committed(&cfg, ProtocolSpec::TWO_PC);
        // 2 data disks halve the 45 ms/site data demand to 22.5 ms;
        // 1 CPU carries 26.25 ms — the CPU binds for 2PC (messages).
        assert_eq!(d.bottleneck(&cfg), "cpu");
        let bound = d.throughput_bound(&cfg);
        assert!((bound - 1.0 / (0.210 / 8.0)).abs() < 1e-6, "bound {bound}");
        // CENT has no messages: the data disks bind.
        let dc = ServiceDemands::committed(&cfg, ProtocolSpec::CENT);
        assert_eq!(dc.bottleneck(&cfg), "data disk");
        assert!(dc.throughput_bound(&cfg) > bound);
    }

    #[test]
    fn infinite_resources_have_no_bound() {
        let cfg = SystemConfig::pure_data_contention();
        let d = ServiceDemands::committed(&cfg, ProtocolSpec::TWO_PC);
        assert!(d.throughput_bound(&cfg).is_infinite());
    }

    #[test]
    fn law_check_relative_error() {
        let c = LawCheck {
            law: "t",
            predicted: 2.0,
            observed: 2.2,
        };
        assert!((c.relative_error() - 0.1).abs() < 1e-12);
        let z = LawCheck {
            law: "t",
            predicted: 0.0,
            observed: 0.0,
        };
        assert_eq!(z.relative_error(), 0.0);
    }
}
