//! Workload generation (§4 / §4.1 of the paper).
//!
//! The database is `DBSize` pages uniformly distributed across the
//! sites. Each transaction is a master plus `DistDegree` cohorts: one
//! at the originating site and the rest at distinct random remote
//! sites. Each cohort accesses `U[0.5, 1.5] × CohortSize` pages chosen
//! at random from the pages of its site, updating each with probability
//! `UpdateProb`. An aborted transaction re-executes the *same* access
//! lists, which is why the template is kept for the transaction's whole
//! lifetime.

use crate::config::{HotSpot, SystemConfig};
use commitproto::BaseProtocol;
use simkernel::SimRng;

/// A site index, `0 .. num_sites`.
pub type SiteId = usize;

/// One page access in a cohort's plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Global page id (`site * pages_per_site + local index`).
    pub page: u64,
    /// Whether the page is updated (update lock) or only read.
    pub update: bool,
}

/// The immutable plan of one transaction: where its cohorts run and
/// what each accesses. Restarted incarnations reuse the template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnTemplate {
    /// The originating site (master and first cohort live here).
    pub home: SiteId,
    /// One entry per cohort; `sites[0] == home`.
    pub sites: Vec<SiteId>,
    /// Access list per cohort, parallel to `sites`.
    pub accesses: Vec<Vec<Access>>,
}

impl TxnTemplate {
    /// Total pages accessed across all cohorts.
    pub fn total_pages(&self) -> usize {
        self.accesses.iter().map(Vec::len).sum()
    }

    /// Total pages updated across all cohorts.
    pub fn total_updates(&self) -> usize {
        self.accesses.iter().flatten().filter(|a| a.update).count()
    }
}

/// Generates transaction templates for a fixed configuration.
#[derive(Debug)]
pub struct WorkloadGenerator {
    pages_per_site: u64,
    num_sites: usize,
    dist_degree: u32,
    cohort_size: u32,
    update_prob: f64,
    hot_spot: Option<HotSpot>,
    centralized: bool,
}

impl WorkloadGenerator {
    /// Build a generator for `cfg` running under `base` (the
    /// centralized baseline folds the whole database into one site and
    /// one cohort, §5.1).
    pub fn new(cfg: &SystemConfig, base: BaseProtocol) -> Self {
        WorkloadGenerator {
            pages_per_site: cfg.pages_per_site(),
            num_sites: cfg.num_sites,
            dist_degree: cfg.dist_degree,
            cohort_size: cfg.cohort_size,
            update_prob: cfg.update_prob,
            hot_spot: cfg.hot_spot,
            centralized: base == BaseProtocol::Centralized,
        }
    }

    /// Draw a site-local page index, applying the hot-spot rule when
    /// configured.
    fn local_page(&self, rng: &mut SimRng) -> u64 {
        match self.hot_spot {
            None => rng.uniform_u64(0, self.pages_per_site - 1),
            Some(h) => {
                let hot = ((self.pages_per_site as f64 * h.data_fraction) as u64)
                    .clamp(1, self.pages_per_site - 1);
                if rng.chance(h.access_fraction) {
                    rng.uniform_u64(0, hot - 1)
                } else {
                    rng.uniform_u64(hot, self.pages_per_site - 1)
                }
            }
        }
    }

    /// Number of sites the engine should instantiate (1 for CENT).
    pub fn effective_sites(&self) -> usize {
        if self.centralized {
            1
        } else {
            self.num_sites
        }
    }

    /// Generate a fresh template originating at `home`.
    ///
    /// For the CENT baseline `home` must be 0 and the transaction keeps
    /// its `DistDegree`-cohort structure — all cohorts local to the one
    /// merged site, with distinct pages drawn from the whole database.
    /// §5.1 defines CENT as "equivalent (in terms of database size and
    /// physical resources)": the workload is unchanged, only messages
    /// and distributed commit processing disappear.
    pub fn generate(&self, home: SiteId, rng: &mut SimRng) -> TxnTemplate {
        if self.centralized {
            assert_eq!(home, 0, "CENT has a single merged site");
            let mut taken = std::collections::HashSet::new();
            let mut accesses = Vec::with_capacity(self.dist_degree as usize);
            for _ in 0..self.dist_degree {
                let n = rng.around_mean(self.cohort_size) as usize;
                let mut cohort = Vec::with_capacity(n);
                for _ in 0..n {
                    // distinct pages across the whole transaction, so
                    // sibling cohorts never self-conflict; drawn as
                    // (uniform virtual site, hot-or-cold local page) so
                    // CENT sees the same access distribution as the
                    // distributed system
                    loop {
                        let site = rng.uniform_u64(0, self.num_sites as u64 - 1);
                        let p = site * self.pages_per_site + self.local_page(rng);
                        if taken.insert(p) {
                            cohort.push(Access {
                                page: p,
                                update: rng.chance(self.update_prob),
                            });
                            break;
                        }
                    }
                }
                accesses.push(cohort);
            }
            let sites = vec![0; self.dist_degree as usize];
            return TxnTemplate {
                home: 0,
                sites,
                accesses,
            };
        }

        let mut sites = Vec::with_capacity(self.dist_degree as usize);
        sites.push(home);
        if self.dist_degree > 1 {
            // Remote sites: distinct, uniform over the other sites.
            let picks = rng.sample_distinct(self.num_sites - 1, self.dist_degree as usize - 1);
            for p in picks {
                // map 0..num_sites-1 onto all sites except `home`
                let site = if p < home { p } else { p + 1 };
                sites.push(site);
            }
        }
        let accesses = sites
            .iter()
            .map(|&s| self.cohort_accesses(s, rng))
            .collect();
        TxnTemplate {
            home,
            sites,
            accesses,
        }
    }

    fn cohort_accesses(&self, site: SiteId, rng: &mut SimRng) -> Vec<Access> {
        let n = rng.around_mean(self.cohort_size) as usize;
        let base = site as u64 * self.pages_per_site;
        if self.hot_spot.is_none() {
            return rng
                .sample_distinct(self.pages_per_site as usize, n)
                .into_iter()
                .map(|local| Access {
                    page: base + local as u64,
                    update: rng.chance(self.update_prob),
                })
                .collect();
        }
        // Skewed draw with rejection for distinctness (the hot region
        // always holds at least one full cohort, see config validation).
        let mut taken = std::collections::HashSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let local = self.local_page(rng);
            if taken.insert(local) {
                out.push(Access {
                    page: base + local,
                    update: rng.chance(self.update_prob),
                });
            }
        }
        out
    }

    /// The site a global page id lives on.
    pub fn site_of_page(&self, page: u64) -> SiteId {
        if self.centralized {
            0
        } else {
            (page / self.pages_per_site) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn gen(base: BaseProtocol) -> (WorkloadGenerator, SimRng) {
        let cfg = SystemConfig::paper_baseline();
        (WorkloadGenerator::new(&cfg, base), SimRng::new(7))
    }

    #[test]
    fn template_shape_matches_config() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        for home in 0..8 {
            let t = g.generate(home, &mut rng);
            assert_eq!(t.home, home);
            assert_eq!(t.sites.len(), 3);
            assert_eq!(t.sites[0], home);
            assert_eq!(t.accesses.len(), 3);
            // distinct sites
            let set: HashSet<_> = t.sites.iter().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn cohort_sizes_in_paper_range() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        for _ in 0..200 {
            let t = g.generate(0, &mut rng);
            for acc in &t.accesses {
                assert!((3..=9).contains(&acc.len()), "cohort size {}", acc.len());
            }
        }
    }

    #[test]
    fn accesses_live_on_their_cohort_site() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        for _ in 0..50 {
            let t = g.generate(2, &mut rng);
            for (i, &site) in t.sites.iter().enumerate() {
                for a in &t.accesses[i] {
                    assert_eq!(g.site_of_page(a.page), site);
                }
            }
        }
    }

    #[test]
    fn pages_distinct_within_cohort() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        for _ in 0..50 {
            let t = g.generate(1, &mut rng);
            for acc in &t.accesses {
                let set: HashSet<_> = acc.iter().map(|a| a.page).collect();
                assert_eq!(set.len(), acc.len());
            }
        }
    }

    #[test]
    fn update_prob_one_updates_everything() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        let t = g.generate(0, &mut rng);
        assert_eq!(t.total_updates(), t.total_pages());
    }

    #[test]
    fn update_prob_zero_updates_nothing() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.update_prob = 0.0;
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::TwoPC);
        let mut rng = SimRng::new(3);
        let t = g.generate(0, &mut rng);
        assert_eq!(t.total_updates(), 0);
    }

    #[test]
    fn remote_sites_cover_all_sites_eventually() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        let mut seen = HashSet::new();
        for _ in 0..500 {
            let t = g.generate(3, &mut rng);
            seen.extend(t.sites.iter().copied());
        }
        assert_eq!(seen.len(), 8, "all sites should appear as cohort sites");
    }

    #[test]
    fn centralized_folds_into_one_site() {
        let (g, mut rng) = gen(BaseProtocol::Centralized);
        assert_eq!(g.effective_sites(), 1);
        for _ in 0..100 {
            let t = g.generate(0, &mut rng);
            // The cohort structure survives (§5.1: only distribution
            // overheads disappear), all cohorts on the merged site.
            assert_eq!(t.sites, vec![0, 0, 0]);
            assert_eq!(t.accesses.len(), 3);
            assert!((9..=27).contains(&t.total_pages()), "{}", t.total_pages());
            // pages distinct across the *whole* transaction so sibling
            // cohorts never self-conflict
            let set: HashSet<_> = t.accesses.iter().flatten().map(|a| a.page).collect();
            assert_eq!(set.len(), t.total_pages());
            assert_eq!(g.site_of_page(t.accesses[0][0].page), 0);
        }
    }

    #[test]
    fn dpcc_keeps_distribution() {
        let (g, _) = gen(BaseProtocol::Dpcc);
        assert_eq!(g.effective_sites(), 8);
    }

    #[test]
    fn hot_spot_skews_accesses() {
        use crate::config::HotSpot;
        let mut cfg = SystemConfig::paper_baseline();
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 0.8,
        });
        cfg.validate().unwrap();
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::TwoPC);
        let mut rng = SimRng::new(31);
        let hot_bound = (cfg.pages_per_site() as f64 * 0.2) as u64;
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let t = g.generate(0, &mut rng);
            for (i, &site) in t.sites.iter().enumerate() {
                let base = site as u64 * cfg.pages_per_site();
                for a in &t.accesses[i] {
                    assert_eq!(g.site_of_page(a.page), site);
                    if a.page - base < hot_bound {
                        hot += 1;
                    }
                    total += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(
            (frac - 0.8).abs() < 0.05,
            "hot fraction {frac:.3}, expected ≈ 0.8"
        );
    }

    #[test]
    fn hot_spot_applies_to_cent_equivalently() {
        use crate::config::HotSpot;
        let mut cfg = SystemConfig::paper_baseline();
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 0.8,
        });
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::Centralized);
        let mut rng = SimRng::new(37);
        let pps = cfg.pages_per_site();
        let hot_bound = (pps as f64 * 0.2) as u64;
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let t = g.generate(0, &mut rng);
            for a in t.accesses.iter().flatten() {
                if a.page % pps < hot_bound {
                    hot += 1;
                }
                total += 1;
            }
        }
        let frac = hot as f64 / total as f64;
        assert!((frac - 0.8).abs() < 0.05, "CENT hot fraction {frac:.3}");
    }

    #[test]
    fn hot_spot_validation() {
        use crate::config::HotSpot;
        let mut cfg = SystemConfig::paper_baseline();
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.0,
            access_fraction: 0.8,
        });
        assert!(cfg.validate().is_err());
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 1.0,
        });
        assert!(cfg.validate().is_err());
        // hot region smaller than a max-size cohort
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.005,
            access_fraction: 0.8,
        });
        assert!(cfg.validate().is_err());
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 0.8,
        });
        cfg.validate().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, mut r1) = gen(BaseProtocol::TwoPC);
        let mut r2 = SimRng::new(7);
        let a = g.generate(0, &mut r1);
        let b = g.generate(0, &mut r2);
        assert_eq!(a, b);
    }
}
