//! Workload generation (§4 / §4.1 of the paper).
//!
//! The database is `DBSize` pages uniformly distributed across the
//! sites. Each transaction is a master plus `DistDegree` cohorts: one
//! at the originating site and the rest at distinct random remote
//! sites. Each cohort accesses `U[0.5, 1.5] × CohortSize` pages chosen
//! at random from the pages of its site, updating each with probability
//! `UpdateProb`. An aborted transaction re-executes the *same* access
//! lists, which is why the template is kept for the transaction's whole
//! lifetime.

use crate::config::{HotSpot, SystemConfig};
use commitproto::BaseProtocol;
use simkernel::SimRng;

/// A site index, `0 .. num_sites`.
pub type SiteId = usize;

/// One page access in a cohort's plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Global page id (`site * pages_per_site + local index`).
    pub page: u64,
    /// Whether the page is updated (update lock) or only read.
    pub update: bool,
}

/// The immutable plan of one transaction: where its cohorts run and
/// what each accesses. Restarted incarnations reuse the template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnTemplate {
    /// The originating site (master and first cohort live here).
    pub home: SiteId,
    /// One entry per cohort; `sites[0] == home`.
    pub sites: Vec<SiteId>,
    /// Access list per cohort, parallel to `sites`.
    pub accesses: Vec<Vec<Access>>,
}

impl TxnTemplate {
    /// Total pages accessed across all cohorts.
    pub fn total_pages(&self) -> usize {
        self.accesses.iter().map(Vec::len).sum()
    }

    /// Total pages updated across all cohorts.
    pub fn total_updates(&self) -> usize {
        self.accesses.iter().flatten().filter(|a| a.update).count()
    }
}

/// O(1) Zipf(θ) sampler over ranks `0..n` via Vose's alias method:
/// rank `k` is drawn with probability ∝ `1 / (k + 1)^theta`. Built
/// once per generator; each draw costs one table slot plus one
/// Bernoulli trial from the caller's [`SimRng`], so determinism and
/// `--jobs` byte-identity are exactly those of the stream it is fed.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Acceptance probability per slot (Vose's `prob` table).
    prob: Vec<f64>,
    /// Fallback rank per slot (Vose's `alias` table).
    alias: Vec<u32>,
}

impl ZipfSampler {
    /// Build the alias tables for `n` ranks at skew `theta`.
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds `u32::MAX` ranks.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(n <= u32::MAX as u64, "alias table is u32-indexed");
        let n = n as usize;
        // Weights scaled to mean 1 so they split into <1 / ≥1 classes.
        let mut w: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(theta)).collect();
        let total: f64 = w.iter().sum();
        let scale = n as f64 / total;
        for x in &mut w {
            *x *= scale;
        }
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &x) in w.iter().enumerate() {
            if x < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let Some(s) = small.pop() {
            let Some(&l) = large.last() else {
                // Numerical leftover: its weight is 1 up to rounding.
                prob[s as usize] = 1.0;
                continue;
            };
            prob[s as usize] = w[s as usize];
            alias[s as usize] = l;
            w[l as usize] += w[s as usize] - 1.0;
            if w[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        while let Some(l) = large.pop() {
            prob[l as usize] = 1.0;
        }
        ZipfSampler { prob, alias }
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let slot = rng.uniform_u64(0, self.prob.len() as u64 - 1) as usize;
        if rng.chance(self.prob[slot]) {
            slot as u64
        } else {
            self.alias[slot] as u64
        }
    }

    /// The analytic pmf the sampler realizes: `P(rank = k)` for `n`
    /// ranks at skew `theta`. Ground truth for goodness-of-fit tests.
    pub fn pmf(n: u64, theta: f64, k: u64) -> f64 {
        let h: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        1.0 / ((k + 1) as f64).powf(theta) / h
    }
}

/// Generates transaction templates for a fixed configuration.
#[derive(Debug)]
pub struct WorkloadGenerator {
    pages_per_site: u64,
    num_sites: usize,
    dist_degree: u32,
    cohort_size: u32,
    update_prob: f64,
    hot_spot: Option<HotSpot>,
    zipf: Option<ZipfSampler>,
    hot_site_prob: f64,
    centralized: bool,
}

impl WorkloadGenerator {
    /// Build a generator for `cfg` running under `base`; the
    /// `centralized` column of the protocol's spec table folds the
    /// whole database into one site and one cohort (§5.1).
    pub fn new(cfg: &SystemConfig, base: BaseProtocol) -> Self {
        WorkloadGenerator {
            pages_per_site: cfg.pages_per_site(),
            num_sites: cfg.num_sites,
            dist_degree: cfg.dist_degree,
            cohort_size: cfg.cohort_size,
            update_prob: cfg.update_prob,
            hot_spot: cfg.hot_spot,
            zipf: cfg
                .zipf
                .map(|z| ZipfSampler::new(cfg.pages_per_site(), z.theta)),
            hot_site_prob: cfg.topology.map_or(0.0, |t| t.hot_site_prob),
            centralized: base.table().centralized,
        }
    }

    /// Draw a site-local page index, applying the configured skew rule
    /// (Zipf, hot-spot, or uniform).
    fn local_page(&self, rng: &mut SimRng) -> u64 {
        if let Some(z) = &self.zipf {
            return z.sample(rng);
        }
        match self.hot_spot {
            None => rng.uniform_u64(0, self.pages_per_site - 1),
            Some(h) => {
                let hot = ((self.pages_per_site as f64 * h.data_fraction) as u64)
                    .clamp(1, self.pages_per_site - 1);
                if rng.chance(h.access_fraction) {
                    rng.uniform_u64(0, hot - 1)
                } else {
                    rng.uniform_u64(hot, self.pages_per_site - 1)
                }
            }
        }
    }

    /// Number of sites the engine should instantiate (1 for CENT).
    pub fn effective_sites(&self) -> usize {
        if self.centralized {
            1
        } else {
            self.num_sites
        }
    }

    /// Generate a fresh template originating at `home`.
    ///
    /// For the CENT baseline `home` must be 0 and the transaction keeps
    /// its `DistDegree`-cohort structure — all cohorts local to the one
    /// merged site, with distinct pages drawn from the whole database.
    /// §5.1 defines CENT as "equivalent (in terms of database size and
    /// physical resources)": the workload is unchanged, only messages
    /// and distributed commit processing disappear.
    pub fn generate(&self, home: SiteId, rng: &mut SimRng) -> TxnTemplate {
        if self.centralized {
            assert_eq!(home, 0, "CENT has a single merged site");
            let mut taken = std::collections::HashSet::new();
            let mut accesses = Vec::with_capacity(self.dist_degree as usize);
            for _ in 0..self.dist_degree {
                let n = rng.around_mean(self.cohort_size) as usize;
                let mut cohort = Vec::with_capacity(n);
                for _ in 0..n {
                    // distinct pages across the whole transaction, so
                    // sibling cohorts never self-conflict; drawn as
                    // (uniform virtual site, hot-or-cold local page) so
                    // CENT sees the same access distribution as the
                    // distributed system
                    loop {
                        let site = rng.uniform_u64(0, self.num_sites as u64 - 1);
                        let p = site * self.pages_per_site + self.local_page(rng);
                        if taken.insert(p) {
                            cohort.push(Access {
                                page: p,
                                update: rng.chance(self.update_prob),
                            });
                            break;
                        }
                    }
                }
                accesses.push(cohort);
            }
            let sites = vec![0; self.dist_degree as usize];
            return TxnTemplate {
                home: 0,
                sites,
                accesses,
            };
        }

        let mut sites = Vec::with_capacity(self.dist_degree as usize);
        sites.push(home);
        if self.dist_degree > 1 {
            // Topology hot site: with probability `hot`, site 0 is
            // forced into the cohort set, concentrating traffic there.
            // The roll is skipped entirely when the feature is off, so
            // the RNG stream — and every existing report — is
            // unchanged without a hot site.
            let force_hot = self.hot_site_prob > 0.0 && home != 0 && rng.chance(self.hot_site_prob);
            if force_hot {
                sites.push(0);
            }
            let remaining = self.dist_degree as usize - sites.len();
            if remaining > 0 {
                if force_hot {
                    // map 0..num_sites-2 onto all sites except {0, home}
                    let picks = rng.sample_distinct(self.num_sites - 2, remaining);
                    for p in picks {
                        let mut site = p + 1;
                        if site >= home {
                            site += 1;
                        }
                        sites.push(site);
                    }
                } else {
                    // Remote sites: distinct, uniform over the others;
                    // map 0..num_sites-1 onto all sites except `home`.
                    let picks = rng.sample_distinct(self.num_sites - 1, remaining);
                    for p in picks {
                        let site = if p < home { p } else { p + 1 };
                        sites.push(site);
                    }
                }
            }
        }
        let accesses = sites
            .iter()
            .map(|&s| self.cohort_accesses(s, rng))
            .collect();
        TxnTemplate {
            home,
            sites,
            accesses,
        }
    }

    fn cohort_accesses(&self, site: SiteId, rng: &mut SimRng) -> Vec<Access> {
        let n = rng.around_mean(self.cohort_size) as usize;
        let base = site as u64 * self.pages_per_site;
        if self.hot_spot.is_none() && self.zipf.is_none() {
            return rng
                .sample_distinct(self.pages_per_site as usize, n)
                .into_iter()
                .map(|local| Access {
                    page: base + local as u64,
                    update: rng.chance(self.update_prob),
                })
                .collect();
        }
        // Skewed draw with rejection for distinctness (the hot region
        // always holds at least one full cohort, see config validation).
        let mut taken = std::collections::HashSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let local = self.local_page(rng);
            if taken.insert(local) {
                out.push(Access {
                    page: base + local,
                    update: rng.chance(self.update_prob),
                });
            }
        }
        out
    }

    /// The site a global page id lives on.
    pub fn site_of_page(&self, page: u64) -> SiteId {
        if self.centralized {
            0
        } else {
            (page / self.pages_per_site) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn gen(base: BaseProtocol) -> (WorkloadGenerator, SimRng) {
        let cfg = SystemConfig::paper_baseline();
        (WorkloadGenerator::new(&cfg, base), SimRng::new(7))
    }

    #[test]
    fn template_shape_matches_config() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        for home in 0..8 {
            let t = g.generate(home, &mut rng);
            assert_eq!(t.home, home);
            assert_eq!(t.sites.len(), 3);
            assert_eq!(t.sites[0], home);
            assert_eq!(t.accesses.len(), 3);
            // distinct sites
            let set: HashSet<_> = t.sites.iter().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn cohort_sizes_in_paper_range() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        for _ in 0..200 {
            let t = g.generate(0, &mut rng);
            for acc in &t.accesses {
                assert!((3..=9).contains(&acc.len()), "cohort size {}", acc.len());
            }
        }
    }

    #[test]
    fn accesses_live_on_their_cohort_site() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        for _ in 0..50 {
            let t = g.generate(2, &mut rng);
            for (i, &site) in t.sites.iter().enumerate() {
                for a in &t.accesses[i] {
                    assert_eq!(g.site_of_page(a.page), site);
                }
            }
        }
    }

    #[test]
    fn pages_distinct_within_cohort() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        for _ in 0..50 {
            let t = g.generate(1, &mut rng);
            for acc in &t.accesses {
                let set: HashSet<_> = acc.iter().map(|a| a.page).collect();
                assert_eq!(set.len(), acc.len());
            }
        }
    }

    #[test]
    fn update_prob_one_updates_everything() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        let t = g.generate(0, &mut rng);
        assert_eq!(t.total_updates(), t.total_pages());
    }

    #[test]
    fn update_prob_zero_updates_nothing() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.update_prob = 0.0;
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::TwoPC);
        let mut rng = SimRng::new(3);
        let t = g.generate(0, &mut rng);
        assert_eq!(t.total_updates(), 0);
    }

    #[test]
    fn remote_sites_cover_all_sites_eventually() {
        let (g, mut rng) = gen(BaseProtocol::TwoPC);
        let mut seen = HashSet::new();
        for _ in 0..500 {
            let t = g.generate(3, &mut rng);
            seen.extend(t.sites.iter().copied());
        }
        assert_eq!(seen.len(), 8, "all sites should appear as cohort sites");
    }

    #[test]
    fn centralized_folds_into_one_site() {
        let (g, mut rng) = gen(BaseProtocol::Centralized);
        assert_eq!(g.effective_sites(), 1);
        for _ in 0..100 {
            let t = g.generate(0, &mut rng);
            // The cohort structure survives (§5.1: only distribution
            // overheads disappear), all cohorts on the merged site.
            assert_eq!(t.sites, vec![0, 0, 0]);
            assert_eq!(t.accesses.len(), 3);
            assert!((9..=27).contains(&t.total_pages()), "{}", t.total_pages());
            // pages distinct across the *whole* transaction so sibling
            // cohorts never self-conflict
            let set: HashSet<_> = t.accesses.iter().flatten().map(|a| a.page).collect();
            assert_eq!(set.len(), t.total_pages());
            assert_eq!(g.site_of_page(t.accesses[0][0].page), 0);
        }
    }

    #[test]
    fn dpcc_keeps_distribution() {
        let (g, _) = gen(BaseProtocol::Dpcc);
        assert_eq!(g.effective_sites(), 8);
    }

    #[test]
    fn hot_spot_skews_accesses() {
        use crate::config::HotSpot;
        let mut cfg = SystemConfig::paper_baseline();
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 0.8,
        });
        cfg.validate().unwrap();
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::TwoPC);
        let mut rng = SimRng::new(31);
        let hot_bound = (cfg.pages_per_site() as f64 * 0.2) as u64;
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let t = g.generate(0, &mut rng);
            for (i, &site) in t.sites.iter().enumerate() {
                let base = site as u64 * cfg.pages_per_site();
                for a in &t.accesses[i] {
                    assert_eq!(g.site_of_page(a.page), site);
                    if a.page - base < hot_bound {
                        hot += 1;
                    }
                    total += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(
            (frac - 0.8).abs() < 0.05,
            "hot fraction {frac:.3}, expected ≈ 0.8"
        );
    }

    #[test]
    fn hot_spot_applies_to_cent_equivalently() {
        use crate::config::HotSpot;
        let mut cfg = SystemConfig::paper_baseline();
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 0.8,
        });
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::Centralized);
        let mut rng = SimRng::new(37);
        let pps = cfg.pages_per_site();
        let hot_bound = (pps as f64 * 0.2) as u64;
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let t = g.generate(0, &mut rng);
            for a in t.accesses.iter().flatten() {
                if a.page % pps < hot_bound {
                    hot += 1;
                }
                total += 1;
            }
        }
        let frac = hot as f64 / total as f64;
        assert!((frac - 0.8).abs() < 0.05, "CENT hot fraction {frac:.3}");
    }

    #[test]
    fn hot_spot_validation() {
        use crate::config::HotSpot;
        let mut cfg = SystemConfig::paper_baseline();
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.0,
            access_fraction: 0.8,
        });
        assert!(cfg.validate().is_err());
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 1.0,
        });
        assert!(cfg.validate().is_err());
        // hot region smaller than a max-size cohort
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.005,
            access_fraction: 0.8,
        });
        assert!(cfg.validate().is_err());
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 0.8,
        });
        cfg.validate().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, mut r1) = gen(BaseProtocol::TwoPC);
        let mut r2 = SimRng::new(7);
        let a = g.generate(0, &mut r1);
        let b = g.generate(0, &mut r2);
        assert_eq!(a, b);
    }

    // ---- statistical test harness -------------------------------------
    //
    // Goodness-of-fit for the page samplers: a Pearson chi-square
    // statistic against the analytic pmf, with the critical value from
    // the Wilson–Hilferty approximation (no lookup tables). Seeds are
    // fixed (plus the CI's DISTCOMMIT_TEST_SEED_OFFSET), so each run
    // is a deterministic pass/fail, not a flaky hypothesis test.

    /// CI seed perturbation: the workflow re-runs the suite at offsets
    /// 0, 1000, 52000 (and the scale matrix at 0..2), so assertions
    /// must hold structurally, not for one lucky seed.
    fn seed_offset() -> u64 {
        std::env::var("DISTCOMMIT_TEST_SEED_OFFSET")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    /// Pearson chi-square statistic of per-bin counts against expected
    /// probabilities. Every expected count must clear the textbook
    /// floor of 5 — the caller sizes the sample, not the harness.
    fn chi_square(observed: &[u64], expected_p: &[f64]) -> f64 {
        assert_eq!(observed.len(), expected_p.len());
        let n: u64 = observed.iter().sum();
        let total_p: f64 = expected_p.iter().sum();
        assert!((total_p - 1.0).abs() < 1e-9, "pmf must sum to 1: {total_p}");
        observed
            .iter()
            .zip(expected_p)
            .map(|(&o, &p)| {
                let e = p * n as f64;
                assert!(e >= 5.0, "expected count {e:.2} below chi-square floor");
                (o as f64 - e).powi(2) / e
            })
            .sum()
    }

    /// Wilson–Hilferty chi-square critical value:
    /// `χ²(df) ≈ df · (1 − 2/(9·df) + z·√(2/(9·df)))³` at upper-tail
    /// z. `z = 3.0902` is the α = 0.001 quantile — strict enough to
    /// catch a wrong pmf, loose enough that fixed seeds pass stably.
    fn chi2_critical(df: usize, z: f64) -> f64 {
        let d = df as f64;
        let t = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
        d * t.powi(3)
    }

    const Z_ALPHA_001: f64 = 3.0902;

    #[test]
    fn zipf_sampler_matches_analytic_pmf() {
        let n = 64u64;
        let draws = 100_000u64;
        for (i, &theta) in [0.5, 0.9, 1.2].iter().enumerate() {
            let s = ZipfSampler::new(n, theta);
            let mut rng = SimRng::new(0x21f0 + 31 * i as u64 + seed_offset());
            let mut counts = vec![0u64; n as usize];
            for _ in 0..draws {
                counts[s.sample(&mut rng) as usize] += 1;
            }
            let pmf: Vec<f64> = (0..n).map(|k| ZipfSampler::pmf(n, theta, k)).collect();
            let stat = chi_square(&counts, &pmf);
            let crit = chi2_critical(n as usize - 1, Z_ALPHA_001);
            assert!(
                stat < crit,
                "theta={theta}: chi2 {stat:.1} >= critical {crit:.1}"
            );
        }
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let n = 64u64;
        let s = ZipfSampler::new(n, 0.0);
        let mut rng = SimRng::new(0x21f1 + seed_offset());
        let mut counts = vec![0u64; n as usize];
        for _ in 0..100_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        let pmf = vec![1.0 / n as f64; n as usize];
        let stat = chi_square(&counts, &pmf);
        let crit = chi2_critical(n as usize - 1, Z_ALPHA_001);
        assert!(stat < crit, "chi2 {stat:.1} >= critical {crit:.1}");
    }

    /// The same goodness-of-fit harness retrofitted over the classic
    /// b–c hot-spot sampler, whose pmf is piecewise uniform:
    /// `access_fraction / hot` inside the hot region and
    /// `(1 − access_fraction) / (pages − hot)` outside.
    #[test]
    fn hot_spot_sampler_matches_analytic_pmf() {
        let mut cfg = SystemConfig::paper_baseline();
        cfg.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 0.8,
        });
        cfg.validate().unwrap();
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::TwoPC);
        let pages = cfg.pages_per_site();
        let hot = (pages as f64 * 0.2) as u64;
        let mut rng = SimRng::new(0xb0c0 + seed_offset());
        let mut counts = vec![0u64; pages as usize];
        for _ in 0..100_000 {
            counts[g.local_page(&mut rng) as usize] += 1;
        }
        let pmf: Vec<f64> = (0..pages)
            .map(|k| {
                if k < hot {
                    0.8 / hot as f64
                } else {
                    0.2 / (pages - hot) as f64
                }
            })
            .collect();
        let stat = chi_square(&counts, &pmf);
        let crit = chi2_critical(pages as usize - 1, Z_ALPHA_001);
        assert!(stat < crit, "chi2 {stat:.1} >= critical {crit:.1}");
    }

    #[test]
    fn zipf_sampler_is_deterministic() {
        let s = ZipfSampler::new(1_000, 0.9);
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        for _ in 0..1_000 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_decreases() {
        let n = 128;
        let pmf: Vec<f64> = (0..n).map(|k| ZipfSampler::pmf(n, 1.1, k)).collect();
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(pmf.windows(2).all(|w| w[0] > w[1]), "pmf must decrease");
    }

    #[test]
    fn zipf_skews_generated_accesses() {
        let cfg = SystemConfig::paper_baseline().with_zipf(0.9);
        cfg.validate().unwrap();
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::TwoPC);
        let mut rng = SimRng::new(0x21f2 + seed_offset());
        let pps = cfg.pages_per_site();
        let top = pps / 10;
        let (mut low, mut total) = (0usize, 0usize);
        for _ in 0..500 {
            let t = g.generate(0, &mut rng);
            for (i, &site) in t.sites.iter().enumerate() {
                let base = site as u64 * pps;
                for a in &t.accesses[i] {
                    assert_eq!(g.site_of_page(a.page), site);
                    if a.page - base < top {
                        low += 1;
                    }
                    total += 1;
                }
            }
        }
        let frac = low as f64 / total as f64;
        // Under uniform access the first decile draws 10% of accesses;
        // Zipf(0.9) over 1000 pages concentrates ≈ 55% there.
        assert!(frac > 0.3, "first decile drew only {frac:.3}");
    }

    #[test]
    fn hot_site_prob_one_forces_site_zero_into_every_cohort_set() {
        let cfg = SystemConfig::paper_baseline().with_topology("hot=1".parse().unwrap());
        cfg.validate().unwrap();
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::TwoPC);
        let mut rng = SimRng::new(5);
        for home in 0..8 {
            for _ in 0..50 {
                let t = g.generate(home, &mut rng);
                assert!(t.sites.contains(&0), "home {home}: {:?}", t.sites);
                assert_eq!(t.sites[0], home);
                let set: HashSet<_> = t.sites.iter().collect();
                assert_eq!(set.len(), t.sites.len(), "distinct sites");
            }
        }
    }

    #[test]
    fn hot_site_prob_skews_site_membership() {
        let cfg = SystemConfig::paper_baseline().with_topology("hot=0.5".parse().unwrap());
        let g = WorkloadGenerator::new(&cfg, BaseProtocol::TwoPC);
        let mut rng = SimRng::new(0x5170 + seed_offset());
        let mut with_zero = 0usize;
        let rounds = 2_000;
        for _ in 0..rounds {
            let t = g.generate(3, &mut rng);
            if t.sites.contains(&0) {
                with_zero += 1;
            }
        }
        // P(site 0 in set) = hot + (1 − hot) · 2/7 ≈ 0.64 at hot = 0.5.
        let frac = with_zero as f64 / rounds as f64;
        assert!((frac - 0.643).abs() < 0.05, "site-0 fraction {frac:.3}");
    }

    #[test]
    fn zero_hot_site_prob_leaves_the_stream_untouched() {
        // A topology without a hot site must generate bit-identical
        // templates to no topology at all — the roll is skipped.
        let plain = SystemConfig::paper_baseline();
        let topo = SystemConfig::paper_baseline()
            .with_topology("regions=4,lan-ms=1,wan-ms=40".parse().unwrap());
        let ga = WorkloadGenerator::new(&plain, BaseProtocol::TwoPC);
        let gb = WorkloadGenerator::new(&topo, BaseProtocol::TwoPC);
        let mut ra = SimRng::new(9);
        let mut rb = SimRng::new(9);
        for home in 0..8 {
            assert_eq!(ga.generate(home, &mut ra), gb.generate(home, &mut rb));
        }
    }
}
