//! # distdb — the distributed-database simulator
//!
//! A detailed closed queueing model of a distributed database system,
//! built to reproduce *"Revisiting Commit Processing in Distributed
//! Database Systems"* (Gupta, Haritsa & Ramamritham, SIGMOD 1997).
//!
//! The model (§4 of the paper): `NumSites` sites, each with `NumCPUs`
//! processors behind one queue (message processing has priority over
//! data processing), `NumDataDisks` data disks and `NumLogDisks` log
//! disks with per-disk queues; `DBSize` pages uniformly spread over the
//! sites; `MPL` transactions per site in a closed loop; distributed
//! strict 2PL with immediate global deadlock detection; and a commit
//! protocol chosen from 2PC, Presumed Abort, Presumed Commit, 3PC, the
//! OPT lending variants, or the CENT/DPCC baselines.
//!
//! Entry points:
//!
//! * [`config::SystemConfig`] — the full parameter set (Table 1),
//!   with [`config::SystemConfig::paper_baseline`] reproducing Table 2;
//! * [`engine::Simulation::run`] — one run, one protocol, one seed,
//!   returning a [`metrics::SimReport`];
//! * [`experiments`] — ready-made presets that regenerate every figure
//!   and table of the paper's evaluation section;
//! * [`output`] — plain-text rendering of experiment series.

pub mod analysis;
pub mod config;
pub mod engine;
pub mod experiments;
pub mod metrics;
pub mod output;
pub mod runner;
pub mod workload;

/// The protocol taxonomy, re-exported for convenience.
pub mod protocol {
    pub use commitproto::{AbortScenario, BaseProtocol, Overheads, ProtocolSpec};
}
