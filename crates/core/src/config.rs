//! System configuration — Table 1 of the paper, plus run control.

use simkernel::SimDuration;
use std::fmt;

/// Whether cohorts of a transaction run one-after-another or all at
/// once (§4.1: "cohorts in a sequential transaction execute one after
/// another, whereas cohorts in a parallel transaction are started
/// together and execute independently until commit time").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransType {
    /// All cohorts started together (the paper's default in §5.2–5.7).
    Parallel,
    /// Cohorts execute one after another (§5.8).
    Sequential,
}

/// Physical-resource regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceMode {
    /// Normal queueing at CPUs and disks (RC + DC experiments).
    Finite,
    /// "Infinite" resources: service times elapse but nothing ever
    /// queues — isolates pure data contention (DC experiments, §5.3).
    Infinite,
}

/// Fault injection (an extension beyond the paper's no-failure
/// experiments, quantifying §2.4's blocking argument).
///
/// Three fault classes, each driven by the run's deterministic
/// [`simkernel::SimRng`] so a fault schedule is replayable from the
/// seed:
///
/// **Master crashes.** With probability `master_crash_prob`, a master
/// process crashes at its commit point — after collecting votes (and,
/// for 3PC, the precommit round), before announcing the decision. This
/// is the classic blocking window:
///
/// * **blocking protocols** (2PC, PA, PC): the prepared cohorts hold
///   their update locks until the master recovers `recovery_time`
///   later — "cascading blocking" spreads from those locks;
/// * **3PC**: after `detection_timeout` the surviving cohorts elect the
///   lowest-site cohort as coordinator, exchange state, and terminate
///   the transaction themselves (all cohorts are precommitted at this
///   crash point, so the termination rule decides commit).
///
/// **Cohort crashes.** With probability `cohort_crash_prob`, a cohort
/// crashes right after forcing its prepare (or precommit) record,
/// before its vote (or precommit ack) reaches the master. The master
/// waits — it cannot unilaterally decide with a vote outstanding —
/// and `cohort_recovery_time` later the cohort restarts, replays its
/// last forced log record, and rejoins the protocol per the
/// protocol's recovery rule (see `BaseProtocol::recovery_action` in
/// `crates/protocols`): a prepared cohort re-sends its YES vote, a
/// precommitted 3PC cohort re-sends its precommit ack.
///
/// The same die is also rolled once per cohort in the *execution*
/// phase, as the cohort finishes its work but before its WORKDONE
/// leaves. Nothing is on stable storage at that point, so recovery
/// presumes abort and the whole transaction restarts (counted as
/// `aborted_crash` in the report). `exec_crash_prob` tunes this
/// window independently — `Some(0.0)` pins crashes to the replay
/// points only, `None` follows `cohort_crash_prob`.
///
/// **Message loss.** With probability `msg_loss_prob`, a remote
/// commit-choreography message is lost in transit — in *either*
/// direction: the master's requests (PREPARE, PRECOMMIT, the
/// decision) and the cohorts' replies (WORKDONE, votes, precommit
/// acks, ACKs) all roll the same loss die. Each request arms an
/// end-to-end timer on the requesting side (the cohort owns the
/// WORKDONE timer); it refires every `msg_timeout` until the awaited
/// reply is receipted, so a repeated request also re-elicits a reply
/// whose first copy was the lost leg. After `max_retransmits`
/// attempts the transfer escalates to a reliable out-of-band path
/// (modelling the cooperative termination protocol / operator
/// recovery) — the escalated attempt and its reply are loss-exempt —
/// so the run always terminates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureConfig {
    /// Probability that a committing master crashes at its decision
    /// point.
    pub master_crash_prob: f64,
    /// Time for the cohorts to detect the crash and start the 3PC
    /// termination protocol.
    pub detection_timeout: SimDuration,
    /// Time until a crashed master recovers and resumes the protocol
    /// (blocking protocols wait this long).
    pub recovery_time: SimDuration,
    /// Probability that a cohort crashes right after forcing its
    /// prepare (or, for 3PC, precommit) record, before answering the
    /// master.
    pub cohort_crash_prob: f64,
    /// Time until a crashed cohort restarts and replays its log.
    pub cohort_recovery_time: SimDuration,
    /// Probability of the execution-phase crash window (cohort dies
    /// before its WORKDONE; recovery presumes abort and the
    /// transaction restarts). `None` follows `cohort_crash_prob`.
    pub exec_crash_prob: Option<f64>,
    /// Probability that a remote commit-choreography message — a
    /// master request (PREPARE / PRECOMMIT / decision) or a cohort
    /// reply (WORKDONE / vote / precommit ack / ACK) — is lost in
    /// transit.
    pub msg_loss_prob: f64,
    /// Sender-side timeout before a loss-eligible message is
    /// retransmitted.
    pub msg_timeout: SimDuration,
    /// Retransmissions attempted before escalating to the reliable
    /// out-of-band path.
    pub max_retransmits: u32,
    /// Restrict *cohort* crashes to sites of one topology region —
    /// the correlated-failure model (a WAN region losing power takes
    /// down every cohort it hosts, while remote regions stay up).
    /// Requires a [`Topology`]; `None` lets every site roll the
    /// cohort-crash die.
    pub crash_region: Option<usize>,
}

impl FailureConfig {
    /// The `key=value` vocabulary accepted by [`std::str::FromStr`], as
    /// `(key=SHAPE, description)` pairs. This table is the single
    /// source of truth: the parser derives its unknown-key error from
    /// it and the CLI usage text renders it verbatim, so the two can
    /// never drift apart. Defaults in parentheses are those of
    /// [`FailureConfig::default`].
    pub const CLI_KEYS: [(&'static str, &'static str); 10] = [
        ("mc=P", "master crash probability"),
        ("cc=P", "cohort crash probability"),
        (
            "exec-cc=P",
            "execution-phase cohort crash probability (follows cc)",
        ),
        ("loss=P", "message loss probability"),
        ("detect-ms=MS", "3PC crash-detection timeout (300)"),
        ("recover-ms=MS", "master recovery time (5000)"),
        ("cohort-recover-ms=MS", "cohort recovery time (1000)"),
        ("retry-ms=MS", "retransmission timeout (100)"),
        ("retries=N", "max retransmissions (3)"),
        (
            "crash-region=R",
            "confine cohort crashes to topology region R",
        ),
    ];

    /// The bare key names from [`Self::CLI_KEYS`], comma-joined — the
    /// vocabulary listed in unknown-key errors.
    fn known_keys() -> String {
        Self::CLI_KEYS
            .iter()
            .map(|(k, _)| k.split('=').next().unwrap_or(k))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Master crashes only, matching the pre-existing single-fault
    /// model: crash probability `p`, 300 ms detection timeout, 5 s
    /// recovery. Cohort-crash and message-loss probabilities are zero.
    pub fn master_crashes(p: f64) -> Self {
        FailureConfig {
            master_crash_prob: p,
            ..Self::default()
        }
    }
}

impl std::str::FromStr for FailureConfig {
    type Err = String;

    /// Parse a comma-separated `key=value` failure specification over
    /// [`FailureConfig::default`] — the format the CLI's `--faults`
    /// flag takes. Keys are listed in [`FailureConfig::CLI_KEYS`];
    /// unspecified keys keep their defaults.
    ///
    /// ```
    /// use distdb::config::FailureConfig;
    /// let f: FailureConfig = "mc=0.01,loss=0.02,retries=2".parse().unwrap();
    /// assert_eq!(f.master_crash_prob, 0.01);
    /// assert_eq!(f.max_retransmits, 2);
    /// assert_eq!(f.cohort_crash_prob, 0.0); // default preserved
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut f = FailureConfig::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let Some((key, val)) = part.split_once('=') else {
                return Err(format!("expected key=value, got {part:?}"));
            };
            let num = |out: &mut f64| -> Result<(), String> {
                *out = val
                    .parse()
                    .map_err(|_| format!("{key}: cannot parse {val:?}"))?;
                Ok(())
            };
            let ms = |out: &mut SimDuration| -> Result<(), String> {
                let v: f64 = val
                    .parse()
                    .map_err(|_| format!("{key}: cannot parse {val:?}"))?;
                *out = SimDuration::from_millis_f64(v);
                Ok(())
            };
            match key {
                "mc" => num(&mut f.master_crash_prob)?,
                "cc" => num(&mut f.cohort_crash_prob)?,
                "exec-cc" => {
                    f.exec_crash_prob = Some(
                        val.parse()
                            .map_err(|_| format!("{key}: cannot parse {val:?}"))?,
                    )
                }
                "loss" => num(&mut f.msg_loss_prob)?,
                "detect-ms" => ms(&mut f.detection_timeout)?,
                "recover-ms" => ms(&mut f.recovery_time)?,
                "cohort-recover-ms" => ms(&mut f.cohort_recovery_time)?,
                "retry-ms" => ms(&mut f.msg_timeout)?,
                "retries" => {
                    f.max_retransmits = val
                        .parse()
                        .map_err(|_| format!("{key}: cannot parse {val:?}"))?
                }
                "crash-region" => {
                    f.crash_region = Some(
                        val.parse()
                            .map_err(|_| format!("{key}: cannot parse {val:?}"))?,
                    )
                }
                other => return Err(format!("unknown key {other:?} ({})", Self::known_keys())),
            }
        }
        Ok(f)
    }
}

impl Default for FailureConfig {
    /// All fault probabilities zero, with the timing constants used
    /// throughout the failure test suite: 300 ms detection timeout,
    /// 5 s master recovery, 1 s cohort recovery, 100 ms message
    /// timeout, 3 retransmissions.
    fn default() -> Self {
        FailureConfig {
            master_crash_prob: 0.0,
            detection_timeout: SimDuration::from_millis(300),
            recovery_time: SimDuration::from_secs(5),
            cohort_crash_prob: 0.0,
            cohort_recovery_time: SimDuration::from_secs(1),
            exec_crash_prob: None,
            msg_loss_prob: 0.0,
            msg_timeout: SimDuration::from_millis(100),
            max_retransmits: 3,
            crash_region: None,
        }
    }
}

/// Skewed ("hot spot") page access, the classic b–c rule: a fraction
/// `access_fraction` of accesses target the first `data_fraction` of
/// each site's pages (e.g. 0.8/0.2 for an 80–20 workload). `None`
/// reproduces the paper's uniform accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSpot {
    /// Fraction of each site's pages forming the hot region (0, 1).
    pub data_fraction: f64,
    /// Fraction of accesses that hit the hot region (0, 1).
    pub access_fraction: f64,
}

/// Zipf-skewed page access: within a site, page rank `k` (0-based) is
/// drawn with probability ∝ `1 / (k + 1)^theta`. `theta = 0` is
/// uniform; production key distributions are typically quoted around
/// `theta ≈ 0.8–1.2`. Mutually exclusive with [`HotSpot`] — both
/// model skew, one rule at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    /// Skew exponent θ ≥ 0.
    pub theta: f64,
}

/// Site-pair wire topology: sites are partitioned into contiguous
/// regions; messages inside a region travel at the LAN latency class,
/// messages between regions at the WAN class, each with a per-pair
/// deterministic jitter. The degenerate default (1 region, zero
/// latencies) reproduces the paper's instantaneous-switch network
/// exactly — same event sequence, byte-identical reports.
///
/// Wire latency is pure in-flight delay: it adds no messages and no
/// CPU cost, so the Tables 3–4 per-commit overhead counts are
/// unchanged under any topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Number of regions; sites are split into contiguous blocks
    /// (`region_of` is a pure function of the site index, independent
    /// of the seed).
    pub regions: usize,
    /// One-way wire latency between sites of the same region.
    pub lan_latency: SimDuration,
    /// One-way wire latency between sites of different regions.
    pub wan_latency: SimDuration,
    /// Per-pair latency jitter: each unordered site pair scales its
    /// class mean by a factor drawn uniformly from
    /// `[1 − jitter, 1 + jitter]`, fixed for the whole run.
    pub jitter: f64,
    /// Probability that a distributed transaction's remote cohort set
    /// is forced to include site 0 — the "hot site" that concentrates
    /// mastership traffic (0 disables).
    pub hot_site_prob: f64,
}

impl Default for Topology {
    /// Degenerate flat network: 1 region, zero latencies, no jitter,
    /// no hot site — byte-identical to no topology at all.
    fn default() -> Self {
        Topology {
            regions: 1,
            lan_latency: SimDuration::ZERO,
            wan_latency: SimDuration::ZERO,
            jitter: 0.0,
            hot_site_prob: 0.0,
        }
    }
}

impl Topology {
    /// The `key=value` vocabulary accepted by [`std::str::FromStr`]
    /// (the CLI's `--topology` flag), as `(key=SHAPE, description)`
    /// pairs — same single-source-of-truth contract as
    /// [`FailureConfig::CLI_KEYS`]. Defaults in parentheses.
    pub const CLI_KEYS: [(&'static str, &'static str); 5] = [
        ("regions=N", "number of contiguous site regions (1)"),
        ("lan-ms=MS", "intra-region one-way wire latency (0)"),
        ("wan-ms=MS", "inter-region one-way wire latency (0)"),
        ("jitter=F", "per-pair latency jitter fraction in [0,1) (0)"),
        (
            "hot=P",
            "probability a txn's cohort set includes site 0 (0)",
        ),
    ];

    /// The bare key names from [`Self::CLI_KEYS`], comma-joined.
    fn known_keys() -> String {
        Self::CLI_KEYS
            .iter()
            .map(|(k, _)| k.split('=').next().unwrap_or(k))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Region of `site` among `num_sites`: contiguous blocks, first
    /// regions padded when the division is uneven. Pure arithmetic —
    /// no seed involved — so region assignment can never drift between
    /// the workload generator, the engine, and the reports.
    pub fn region_of(&self, site: usize, num_sites: usize) -> usize {
        debug_assert!(site < num_sites);
        site * self.regions / num_sites
    }

    /// Build the symmetric `num_sites × num_sites` wire-latency matrix
    /// (row-major, diagonal zero). Jitter factors are drawn per
    /// unordered pair from a dedicated RNG stream derived from `seed`,
    /// independent of the engine's main stream — adding a topology
    /// never perturbs workload or fault draws.
    pub fn latency_matrix(&self, num_sites: usize, seed: u64) -> Vec<SimDuration> {
        // Stream tag "TOPO", disjoint from every cell_seed stream.
        let mut rng = simkernel::SimRng::new(simkernel::mix_seed(seed, 0x544f_504f, 0, 0));
        let mut m = vec![SimDuration::ZERO; num_sites * num_sites];
        for i in 0..num_sites {
            for j in (i + 1)..num_sites {
                let base = if self.region_of(i, num_sites) == self.region_of(j, num_sites) {
                    self.lan_latency
                } else {
                    self.wan_latency
                };
                let lat = if self.jitter > 0.0 {
                    let f = 1.0 - self.jitter + 2.0 * self.jitter * rng.f64();
                    SimDuration::from_micros((base.as_micros() as f64 * f).round() as u64)
                } else {
                    base
                };
                m[i * num_sites + j] = lat;
                m[j * num_sites + i] = lat;
            }
        }
        m
    }
}

impl std::str::FromStr for Topology {
    type Err = String;

    /// Parse a comma-separated `key=value` topology specification over
    /// [`Topology::default`] — the format the CLI's `--topology` flag
    /// takes. Keys are listed in [`Topology::CLI_KEYS`]; unspecified
    /// keys keep their defaults.
    ///
    /// ```
    /// use distdb::config::Topology;
    /// let t: Topology = "regions=4,wan-ms=40,jitter=0.1".parse().unwrap();
    /// assert_eq!(t.regions, 4);
    /// assert_eq!(t.wan_latency.as_micros(), 40_000);
    /// assert_eq!(t.hot_site_prob, 0.0); // default preserved
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut t = Topology::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let Some((key, val)) = part.split_once('=') else {
                return Err(format!("expected key=value, got {part:?}"));
            };
            let ms = |out: &mut SimDuration| -> Result<(), String> {
                let v: f64 = val
                    .parse()
                    .map_err(|_| format!("{key}: cannot parse {val:?}"))?;
                *out = SimDuration::from_millis_f64(v);
                Ok(())
            };
            let num = |out: &mut f64| -> Result<(), String> {
                *out = val
                    .parse()
                    .map_err(|_| format!("{key}: cannot parse {val:?}"))?;
                Ok(())
            };
            match key {
                "regions" => {
                    t.regions = val
                        .parse()
                        .map_err(|_| format!("{key}: cannot parse {val:?}"))?
                }
                "lan-ms" => ms(&mut t.lan_latency)?,
                "wan-ms" => ms(&mut t.wan_latency)?,
                "jitter" => num(&mut t.jitter)?,
                "hot" => num(&mut t.hot_site_prob)?,
                other => return Err(format!("unknown key {other:?} ({})", Self::known_keys())),
            }
        }
        Ok(t)
    }
}

/// How long an aborted transaction waits before its restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// The paper's heuristic (§4): "the length of the delay is equal to
    /// the average transaction response time" — an adaptive backoff
    /// that throttles data contention as the system loads up.
    AdaptiveResponseTime,
    /// A fixed delay (for ablations of the heuristic).
    Fixed(SimDuration),
    /// Restart immediately (no backoff at all).
    Immediate,
}

/// Run-length control for one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Transactions committed before statistics start (steady-state
    /// warm-up).
    pub warmup_transactions: u64,
    /// Transactions committed inside the measurement window. The paper
    /// runs "until at least 50 000 transactions were processed"; the
    /// bench harness defaults much lower and offers a full mode.
    pub measured_transactions: u64,
    /// Batches for the batch-means throughput confidence interval.
    pub batches: u64,
    /// Hard safety cap on simulated time (a thrashing configuration
    /// might otherwise take unbounded wall-clock time to commit the
    /// requested count). `None` disables the cap.
    pub max_sim_time: Option<simkernel::SimTime>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup_transactions: 500,
            measured_transactions: 5_000,
            batches: 10,
            max_sim_time: Some(simkernel::SimTime::from_secs(40_000)),
        }
    }
}

/// The full parameter set of the simulation model (Table 1) plus the
/// experiment toggles introduced in §5.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// `NumSites` — number of sites in the database.
    pub num_sites: usize,
    /// `DBSize` — number of pages in the database (total, uniformly
    /// distributed across sites).
    pub db_size: u64,
    /// `MPL` — transaction multiprogramming level per site.
    pub mpl: u32,
    /// `TransType` — sequential or parallel cohort execution.
    pub trans_type: TransType,
    /// `DistDegree` — number of cohorts per transaction (master site
    /// included).
    pub dist_degree: u32,
    /// `CohortSize` — mean pages accessed per cohort; actual counts
    /// are uniform over `[0.5, 1.5] × CohortSize`.
    pub cohort_size: u32,
    /// `UpdateProb` — probability that an accessed page is updated.
    pub update_prob: f64,
    /// Optional access skew; `None` (the paper's setting) draws pages
    /// uniformly.
    pub hot_spot: Option<HotSpot>,
    /// Optional Zipf(θ) access skew; mutually exclusive with
    /// `hot_spot`. `None` (the paper's setting) draws pages uniformly.
    pub zipf: Option<Zipf>,
    /// Optional site-pair wire topology (LAN/WAN latency classes,
    /// regions, hot site). `None` reproduces the paper's
    /// instantaneous-switch network.
    pub topology: Option<Topology>,
    /// `NumCPUs` — processors per site (single shared queue).
    pub num_cpus: u32,
    /// `NumDataDisks` — data disks per site (one queue each).
    pub num_data_disks: u32,
    /// `NumLogDisks` — log disks per site (one queue each).
    pub num_log_disks: u32,
    /// `PageCPU` — CPU time to process one data page.
    pub page_cpu: SimDuration,
    /// `PageDisk` — disk time for one page access (also the cost of a
    /// forced log write, §4.3).
    pub page_disk: SimDuration,
    /// `MsgCPU` — CPU time to send *or* receive one message.
    pub msg_cpu: SimDuration,
    /// Finite (RC+DC) or infinite (pure DC) resources.
    pub resources: ResourceMode,
    /// Probability that a cohort votes NO on PREPARE ("surprise
    /// aborts", §5.7). 0 in the baseline experiments.
    pub cohort_abort_prob: f64,
    /// Master-failure injection; `None` reproduces the paper's
    /// no-failure experiments.
    pub failures: Option<FailureConfig>,
    /// Restart backoff for aborted transactions (the paper uses the
    /// adaptive mean-response-time heuristic; the alternatives exist
    /// for the ablation benchmarks).
    pub restart_policy: RestartPolicy,
    /// Group commit (§3.2): when `Some(k)`, each log disk serves up to
    /// `k` queued forced writes together in a single `PageDisk`
    /// service, "batched together to save on disk I/O". Individual
    /// writes may wait for the batch in front of them, so this trades
    /// latency for log throughput — and lengthens the prepared state,
    /// which is exactly where OPT lending helps (§3.2 notes OPT is
    /// "especially attractive" combined with group commit). Ignored
    /// under infinite resources (nothing ever queues there).
    pub group_commit_batch: Option<u32>,
    /// Enable the Read-Only commit optimization (§3.2): a cohort that
    /// updated nothing answers PREPARE with a READ vote, releases its
    /// locks, forces no records and drops out of phase two; a
    /// transaction whose cohorts are all read-only commits in one
    /// phase. Off in the paper's experiments (its workloads are fully
    /// update-oriented).
    pub read_only_optimization: bool,
    /// Charge the asynchronous post-commit writes of updated pages to
    /// the data disks (§4.1 says the writes happen asynchronously after
    /// commit; this flag controls whether their disk time is modeled).
    pub model_deferred_writes: bool,
    /// Replication degree F for the replicated commit family (Paxos
    /// Commit / replicated-coordinator 2PC): each transaction's
    /// decision is maintained by a group of 2F+1 replicas on
    /// consecutive sites starting at the master's, tolerating F
    /// simultaneous replica failures. 0 — the classic single-copy
    /// protocols — degenerates Paxos Commit to plain 2PC. Ignored by
    /// (and rejected for) non-replicated protocols when positive.
    pub replication: u32,
    /// Intra-run parallelism: number of shards the sites are
    /// partitioned into for the conservative parallel engine. Shards
    /// follow [`Topology`] region blocks, so the effective count is
    /// capped at the region count. 0 (the default) keeps the serial
    /// engine; any positive value opts into the parallel path when the
    /// configuration supports it (see `engine`'s dispatch rules) and
    /// produces output independent of the shard count.
    pub shards: u32,
    /// Run-length control.
    pub run: RunConfig,
}

impl SystemConfig {
    /// The reconstructed Table 2 baseline (see DESIGN.md §2.1): 8
    /// sites, 1000 pages/site, parallel transactions over 3 sites with
    /// 6 pages per cohort, all updates, 1 CPU + 2 data disks + 1 log
    /// disk per site, `PageCPU` 5 ms, `PageDisk` 20 ms, `MsgCPU` 5 ms.
    ///
    /// `DBSize` is calibrated so that the data-contention knee falls at
    /// MPL ≈ 4–5 exactly as in the paper's figures, with the system
    /// I/O-bound but "not heavily" (§5.2) so message CPU costs matter.
    pub fn paper_baseline() -> Self {
        SystemConfig {
            num_sites: 8,
            db_size: 8_000,
            mpl: 4,
            trans_type: TransType::Parallel,
            dist_degree: 3,
            cohort_size: 6,
            update_prob: 1.0,
            hot_spot: None,
            zipf: None,
            topology: None,
            num_cpus: 1,
            num_data_disks: 2,
            num_log_disks: 1,
            page_cpu: SimDuration::from_millis(5),
            page_disk: SimDuration::from_millis(20),
            msg_cpu: SimDuration::from_millis(5),
            resources: ResourceMode::Finite,
            cohort_abort_prob: 0.0,
            failures: None,
            restart_policy: RestartPolicy::AdaptiveResponseTime,
            group_commit_batch: None,
            read_only_optimization: false,
            model_deferred_writes: false,
            replication: 0,
            shards: 0,
            run: RunConfig::default(),
        }
    }

    /// The pure data-contention variant of the baseline (§5.3):
    /// identical except resources are infinite.
    pub fn pure_data_contention() -> Self {
        SystemConfig {
            resources: ResourceMode::Infinite,
            ..Self::paper_baseline()
        }
    }

    /// Experiment 4's higher degree of distribution (§5.5): 6 cohorts
    /// of 3 pages each, keeping the 18-page mean transaction length.
    pub fn higher_distribution(&self) -> Self {
        SystemConfig {
            dist_degree: 6,
            cohort_size: 3,
            ..self.clone()
        }
    }

    /// Experiment 3's fast network interface (§5.4): `MsgCPU` = 1 ms.
    pub fn fast_network(&self) -> Self {
        SystemConfig {
            msg_cpu: SimDuration::from_millis(1),
            ..self.clone()
        }
    }

    /// Set the multiprogramming level. Chainable builder form of the
    /// public `mpl` field, for config pipelines that start from a
    /// preset: `SystemConfig::paper_baseline().with_mpl(4)`.
    #[must_use]
    pub fn with_mpl(mut self, mpl: u32) -> Self {
        self.mpl = mpl;
        self
    }

    /// Set the run length: `warmup` transactions before statistics
    /// start, then `measured` transactions in the measurement window.
    #[must_use]
    pub fn with_run_length(mut self, warmup: u64, measured: u64) -> Self {
        self.run.warmup_transactions = warmup;
        self.run.measured_transactions = measured;
        self
    }

    /// Set the database size in pages (spread uniformly across sites).
    #[must_use]
    pub fn with_db_size(mut self, pages: u64) -> Self {
        self.db_size = pages;
        self
    }

    /// Set the page update probability.
    #[must_use]
    pub fn with_update_prob(mut self, p: f64) -> Self {
        self.update_prob = p;
        self
    }

    /// Set the transaction shape: `dist_degree` cohorts of
    /// `cohort_size` mean pages each.
    #[must_use]
    pub fn with_shape(mut self, dist_degree: u32, cohort_size: u32) -> Self {
        self.dist_degree = dist_degree;
        self.cohort_size = cohort_size;
        self
    }

    /// Enable the failure model with the given fault configuration.
    #[must_use]
    pub fn with_failures(mut self, failures: FailureConfig) -> Self {
        self.failures = Some(failures);
        self
    }

    /// Set the cohort surprise NO-vote probability (§5.7).
    #[must_use]
    pub fn with_cohort_abort_prob(mut self, p: f64) -> Self {
        self.cohort_abort_prob = p;
        self
    }

    /// Enable or disable the Read-Only commit optimization (§3.2).
    #[must_use]
    pub fn with_read_only_optimization(mut self, on: bool) -> Self {
        self.read_only_optimization = on;
        self
    }

    /// Set sequential or parallel cohort execution.
    #[must_use]
    pub fn with_trans_type(mut self, t: TransType) -> Self {
        self.trans_type = t;
        self
    }

    /// Set the number of data disks per site.
    #[must_use]
    pub fn with_data_disks(mut self, n: u32) -> Self {
        self.num_data_disks = n;
        self
    }

    /// Enable Zipf(θ) page-access skew.
    #[must_use]
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.zipf = Some(Zipf { theta });
        self
    }

    /// Install a site-pair wire topology.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Set the replication degree F (2F+1 decision replicas per
    /// transaction) for the replicated commit family.
    #[must_use]
    pub fn with_replication(mut self, f: u32) -> Self {
        self.replication = f;
        self
    }

    /// Set the shard count for the conservative parallel engine (0
    /// keeps the serial engine).
    #[must_use]
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Pages per site (`DBSize / NumSites`; validation requires the
    /// division to be exact).
    pub fn pages_per_site(&self) -> u64 {
        self.db_size / self.num_sites as u64
    }

    /// Largest possible cohort access-list length.
    pub fn max_cohort_pages(&self) -> u64 {
        (self.cohort_size + self.cohort_size / 2).max(1) as u64
    }

    /// Check the configuration for internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        use ConfigError::*;
        if self.num_sites == 0 {
            return Err(Invalid("num_sites must be positive"));
        }
        if self.mpl == 0 {
            return Err(Invalid("mpl must be positive"));
        }
        if self.dist_degree == 0 {
            return Err(Invalid("dist_degree must be positive"));
        }
        if self.dist_degree as usize > self.num_sites {
            return Err(Invalid("dist_degree cannot exceed num_sites"));
        }
        if self.cohort_size == 0 {
            return Err(Invalid("cohort_size must be positive"));
        }
        if !self.db_size.is_multiple_of(self.num_sites as u64) {
            return Err(Invalid("db_size must divide evenly across sites"));
        }
        if self.pages_per_site() < self.max_cohort_pages() {
            return Err(Invalid("a site must hold at least 1.5 * cohort_size pages"));
        }
        if !(0.0..=1.0).contains(&self.update_prob) {
            return Err(Invalid("update_prob must be a probability"));
        }
        if !(0.0..=1.0).contains(&self.cohort_abort_prob) {
            return Err(Invalid("cohort_abort_prob must be a probability"));
        }
        if self.num_cpus == 0 || self.num_data_disks == 0 || self.num_log_disks == 0 {
            return Err(Invalid(
                "each site needs at least one CPU, data disk and log disk",
            ));
        }
        if self.group_commit_batch == Some(0) {
            return Err(Invalid("group commit batch size must be positive"));
        }
        if let Some(h) = &self.hot_spot {
            if !(h.data_fraction > 0.0 && h.data_fraction < 1.0) {
                return Err(Invalid("hot-spot data_fraction must be in (0, 1)"));
            }
            if !(h.access_fraction > 0.0 && h.access_fraction < 1.0) {
                return Err(Invalid("hot-spot access_fraction must be in (0, 1)"));
            }
            let hot_pages = (self.pages_per_site() as f64 * h.data_fraction) as u64;
            if hot_pages < self.max_cohort_pages() {
                return Err(Invalid(
                    "hot region too small to hold one cohort's accesses",
                ));
            }
        }
        if let Some(z) = &self.zipf {
            if self.hot_spot.is_some() {
                return Err(Invalid("zipf and hot-spot skew are mutually exclusive"));
            }
            if !z.theta.is_finite() || z.theta < 0.0 {
                return Err(Invalid("zipf theta must be finite and non-negative"));
            }
        }
        if let Some(t) = &self.topology {
            if t.regions == 0 {
                return Err(Invalid("topology regions must be positive"));
            }
            if t.regions > self.num_sites {
                return Err(Invalid("topology regions cannot exceed num_sites"));
            }
            if !(0.0..1.0).contains(&t.jitter) {
                return Err(Invalid("topology jitter must be in [0, 1)"));
            }
            if !(0.0..=1.0).contains(&t.hot_site_prob) {
                return Err(Invalid(
                    "topology hot-site probability must be a probability",
                ));
            }
        }
        if let Some(f) = &self.failures {
            if !(0.0..=1.0).contains(&f.master_crash_prob) {
                return Err(Invalid("master_crash_prob must be a probability"));
            }
            if f.recovery_time.is_zero() {
                return Err(Invalid("recovery_time must be positive"));
            }
            if !(0.0..=1.0).contains(&f.cohort_crash_prob) {
                return Err(Invalid("cohort_crash_prob must be a probability"));
            }
            if f.cohort_crash_prob > 0.0 && f.cohort_recovery_time.is_zero() {
                return Err(Invalid("cohort_recovery_time must be positive"));
            }
            if !(0.0..=1.0).contains(&f.msg_loss_prob) {
                return Err(Invalid("msg_loss_prob must be a probability"));
            }
            if f.msg_loss_prob > 0.0 && f.msg_timeout.is_zero() {
                return Err(Invalid("msg_timeout must be positive"));
            }
            if let Some(r) = f.crash_region {
                let Some(t) = &self.topology else {
                    return Err(Invalid("crash-region requires a topology"));
                };
                if r >= t.regions {
                    return Err(Invalid("crash-region must name an existing region"));
                }
            }
        }
        if self.shards as usize > self.num_sites {
            return Err(Invalid("shards cannot exceed num_sites"));
        }
        if self.run.measured_transactions == 0 {
            return Err(Invalid("measured_transactions must be positive"));
        }
        if self.run.batches < 2 {
            return Err(Invalid(
                "at least two batches are needed for a confidence interval",
            ));
        }
        Ok(())
    }
}

/// Configuration validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter (combination) is out of range; the message says which.
    Invalid(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Invalid(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "NumSites      {}", self.num_sites)?;
        writeln!(
            f,
            "DBSize        {} pages ({}/site)",
            self.db_size,
            self.pages_per_site()
        )?;
        writeln!(f, "MPL           {} / site", self.mpl)?;
        writeln!(f, "TransType     {:?}", self.trans_type)?;
        writeln!(f, "DistDegree    {}", self.dist_degree)?;
        writeln!(f, "CohortSize    {} pages", self.cohort_size)?;
        writeln!(f, "UpdateProb    {}", self.update_prob)?;
        writeln!(f, "NumCPUs       {} / site", self.num_cpus)?;
        writeln!(f, "NumDataDisks  {} / site", self.num_data_disks)?;
        writeln!(f, "NumLogDisks   {} / site", self.num_log_disks)?;
        writeln!(f, "PageCPU       {}", self.page_cpu)?;
        writeln!(f, "PageDisk      {}", self.page_disk)?;
        writeln!(f, "MsgCPU        {}", self.msg_cpu)?;
        writeln!(f, "Resources     {:?}", self.resources)?;
        if self.cohort_abort_prob > 0.0 {
            writeln!(f, "CohortAbortP  {}", self.cohort_abort_prob)?;
        }
        if self.replication > 0 {
            writeln!(
                f,
                "Replication   F={} ({} replicas)",
                self.replication,
                2 * self.replication + 1
            )?;
        }
        if let Some(z) = &self.zipf {
            writeln!(f, "Zipf          theta={}", z.theta)?;
        }
        if let Some(t) = &self.topology {
            writeln!(
                f,
                "Topology      {} regions, lan={}, wan={}, jitter={}, hot={}",
                t.regions, t.lan_latency, t.wan_latency, t.jitter, t.hot_site_prob
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        SystemConfig::paper_baseline().validate().unwrap();
        SystemConfig::pure_data_contention().validate().unwrap();
        SystemConfig::paper_baseline()
            .higher_distribution()
            .validate()
            .unwrap();
        SystemConfig::paper_baseline()
            .fast_network()
            .validate()
            .unwrap();
    }

    #[test]
    fn baseline_matches_paper_prose() {
        let c = SystemConfig::paper_baseline();
        // §5.2: three sites, six pages per cohort, 1 CPU, 2 data disks,
        // 1 log disk per site; §5.4: slow network is 5 ms.
        assert_eq!(c.dist_degree, 3);
        assert_eq!(c.cohort_size, 6);
        assert_eq!(c.num_cpus, 1);
        assert_eq!(c.num_data_disks, 2);
        assert_eq!(c.num_log_disks, 1);
        assert_eq!(c.msg_cpu, SimDuration::from_millis(5));
        assert_eq!(c.trans_type, TransType::Parallel);
        assert_eq!(c.update_prob, 1.0);
    }

    #[test]
    fn higher_distribution_keeps_transaction_length() {
        let base = SystemConfig::paper_baseline();
        let hd = base.higher_distribution();
        assert_eq!(
            base.dist_degree * base.cohort_size,
            hd.dist_degree * hd.cohort_size,
            "mean transaction length must stay 18 pages"
        );
    }

    #[test]
    fn fast_network_is_five_times_faster() {
        let base = SystemConfig::paper_baseline();
        let fast = base.fast_network();
        assert_eq!(base.msg_cpu.as_micros(), 5 * fast.msg_cpu.as_micros());
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = SystemConfig::paper_baseline();
        c.dist_degree = 9;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.db_size = 1_601; // not divisible by 8
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.update_prob = 1.5;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.mpl = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.db_size = 64; // 8 pages/site < 9 max cohort pages
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.run.batches = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_failure_configs() {
        let mut c = SystemConfig::paper_baseline();
        c.failures = Some(FailureConfig {
            cohort_crash_prob: 1.5,
            ..FailureConfig::default()
        });
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.failures = Some(FailureConfig {
            cohort_crash_prob: 0.1,
            cohort_recovery_time: SimDuration::ZERO,
            ..FailureConfig::default()
        });
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.failures = Some(FailureConfig {
            msg_loss_prob: -0.1,
            ..FailureConfig::default()
        });
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.failures = Some(FailureConfig {
            msg_loss_prob: 0.1,
            msg_timeout: SimDuration::ZERO,
            ..FailureConfig::default()
        });
        assert!(c.validate().is_err());

        // The all-defaults config (zero probabilities) is valid.
        let mut c = SystemConfig::paper_baseline();
        c.failures = Some(FailureConfig::default());
        c.validate().unwrap();
    }

    #[test]
    fn master_crashes_constructor_sets_only_the_master_prob() {
        let f = FailureConfig::master_crashes(0.05);
        assert_eq!(f.master_crash_prob, 0.05);
        assert_eq!(f.cohort_crash_prob, 0.0);
        assert_eq!(f.msg_loss_prob, 0.0);
        assert_eq!(f.detection_timeout, SimDuration::from_millis(300));
        assert_eq!(f.recovery_time, SimDuration::from_secs(5));
    }

    #[test]
    fn failure_config_parses_every_key() {
        let f: FailureConfig = "mc=0.01,cc=0.005,loss=0.02,detect-ms=200,\
             recover-ms=4000,cohort-recover-ms=800,retry-ms=50,retries=2"
            .parse()
            .unwrap();
        assert_eq!(f.master_crash_prob, 0.01);
        assert_eq!(f.cohort_crash_prob, 0.005);
        assert_eq!(f.msg_loss_prob, 0.02);
        assert_eq!(f.detection_timeout, SimDuration::from_millis(200));
        assert_eq!(f.recovery_time, SimDuration::from_millis(4000));
        assert_eq!(f.cohort_recovery_time, SimDuration::from_millis(800));
        assert_eq!(f.msg_timeout, SimDuration::from_millis(50));
        assert_eq!(f.max_retransmits, 2);
    }

    #[test]
    fn failure_config_parse_keeps_defaults_for_unset_keys() {
        let f: FailureConfig = "mc=0.05".parse().unwrap();
        assert_eq!(f.master_crash_prob, 0.05);
        assert_eq!(f.cohort_crash_prob, 0.0);
        assert_eq!(f.max_retransmits, 3);
        // The empty spec is the default config verbatim.
        assert_eq!(
            "".parse::<FailureConfig>().unwrap(),
            FailureConfig::default()
        );
    }

    #[test]
    fn failure_config_parse_errors_name_the_problem() {
        let e = "bogus=1".parse::<FailureConfig>().unwrap_err();
        assert!(e.contains("unknown key \"bogus\""), "{e}");
        // The error lists the vocabulary, sourced from CLI_KEYS.
        for key in ["mc", "cc", "loss", "detect-ms", "retries"] {
            assert!(e.contains(key), "{e} missing {key}");
        }
        let e = "mc".parse::<FailureConfig>().unwrap_err();
        assert!(e.contains("expected key=value"), "{e}");
        let e = "mc=x".parse::<FailureConfig>().unwrap_err();
        assert!(e.contains("mc: cannot parse \"x\""), "{e}");
        let e = "retries=1.5".parse::<FailureConfig>().unwrap_err();
        assert!(e.contains("retries"), "{e}");
    }

    #[test]
    fn cli_keys_cover_every_failure_field() {
        // 10 struct fields, 10 documented keys: adding a field without
        // extending the key table fails here.
        assert_eq!(FailureConfig::CLI_KEYS.len(), 10);
        for (key, desc) in FailureConfig::CLI_KEYS {
            assert!(key.contains('='), "{key} lacks a value shape");
            assert!(!desc.is_empty());
        }
    }

    #[test]
    fn crash_region_parses_and_validates() {
        let f: FailureConfig = "cc=0.01,crash-region=2".parse().unwrap();
        assert_eq!(f.crash_region, Some(2));
        assert_eq!(f.cohort_crash_prob, 0.01);

        // crash-region without a topology is rejected.
        let mut c = SystemConfig::paper_baseline();
        c.failures = Some(f);
        assert!(c.validate().is_err());

        // With a 4-region topology, region 2 exists...
        c.topology = Some("regions=4".parse().unwrap());
        c.validate().unwrap();
        // ...but region 4 does not.
        c.failures.as_mut().unwrap().crash_region = Some(4);
        assert!(c.validate().is_err());
    }

    #[test]
    fn zipf_validates() {
        let c = SystemConfig::paper_baseline().with_zipf(0.9);
        c.validate().unwrap();

        let mut bad = c.clone();
        bad.zipf = Some(Zipf { theta: -0.1 });
        assert!(bad.validate().is_err());
        let mut bad = c.clone();
        bad.zipf = Some(Zipf { theta: f64::NAN });
        assert!(bad.validate().is_err());
        // One skew rule at a time.
        let mut bad = c;
        bad.hot_spot = Some(HotSpot {
            data_fraction: 0.2,
            access_fraction: 0.8,
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn topology_parses_every_key() {
        let t: Topology = "regions=4,lan-ms=1,wan-ms=40,jitter=0.2,hot=0.3"
            .parse()
            .unwrap();
        assert_eq!(t.regions, 4);
        assert_eq!(t.lan_latency, SimDuration::from_millis(1));
        assert_eq!(t.wan_latency, SimDuration::from_millis(40));
        assert_eq!(t.jitter, 0.2);
        assert_eq!(t.hot_site_prob, 0.3);
        // The empty spec is the degenerate default verbatim.
        assert_eq!("".parse::<Topology>().unwrap(), Topology::default());
    }

    #[test]
    fn topology_parse_errors_name_the_problem() {
        let e = "bogus=1".parse::<Topology>().unwrap_err();
        assert!(e.contains("unknown key \"bogus\""), "{e}");
        for key in ["regions", "lan-ms", "wan-ms", "jitter", "hot"] {
            assert!(e.contains(key), "{e} missing {key}");
        }
        let e = "regions".parse::<Topology>().unwrap_err();
        assert!(e.contains("expected key=value"), "{e}");
        let e = "wan-ms=x".parse::<Topology>().unwrap_err();
        assert!(e.contains("wan-ms: cannot parse \"x\""), "{e}");
    }

    #[test]
    fn topology_validates() {
        let ok =
            SystemConfig::paper_baseline().with_topology("regions=4,wan-ms=40".parse().unwrap());
        ok.validate().unwrap();

        let mut bad = ok.clone();
        bad.topology.as_mut().unwrap().regions = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.topology.as_mut().unwrap().regions = 9; // > 8 sites
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.topology.as_mut().unwrap().jitter = 1.0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.topology.as_mut().unwrap().hot_site_prob = 1.5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn region_assignment_is_contiguous_and_seed_free() {
        let t: Topology = "regions=4".parse().unwrap();
        // Pure function of the site index: exhaustive, monotone,
        // covering every region, identical however often it is asked.
        let n = 256;
        let regions: Vec<usize> = (0..n).map(|s| t.region_of(s, n)).collect();
        assert_eq!(regions[0], 0);
        assert_eq!(regions[n - 1], t.regions - 1);
        assert!(regions.windows(2).all(|w| w[0] <= w[1]), "monotone blocks");
        for r in 0..t.regions {
            assert_eq!(
                regions.iter().filter(|&&x| x == r).count(),
                n / t.regions,
                "even split at an exact division"
            );
        }
    }

    #[test]
    fn latency_matrix_is_symmetric_positive_and_deterministic() {
        let t: Topology = "regions=4,lan-ms=1,wan-ms=40,jitter=0.2".parse().unwrap();
        let n = 64;
        let m = t.latency_matrix(n, 7);
        assert_eq!(m, t.latency_matrix(n, 7), "same seed, same matrix");
        assert_ne!(m, t.latency_matrix(n, 8), "jitter varies with the seed");
        for i in 0..n {
            assert!(m[i * n + i].is_zero(), "diagonal must be zero");
            for j in 0..n {
                assert_eq!(m[i * n + j], m[j * n + i], "symmetry at ({i},{j})");
                if i != j {
                    let lat = m[i * n + j];
                    assert!(!lat.is_zero(), "off-diagonal must be positive");
                    // Jitter keeps every entry within its class band.
                    let (lo, hi) = if t.region_of(i, n) == t.region_of(j, n) {
                        (800, 1_200)
                    } else {
                        (32_000, 48_000)
                    };
                    assert!(
                        (lo..=hi).contains(&lat.as_micros()),
                        "({i},{j}) = {lat} outside class band"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_topology_matrix_is_all_zero() {
        let m = Topology::default().latency_matrix(16, 99);
        assert!(m.iter().all(|d| d.is_zero()));
    }

    #[test]
    fn builders_compose_and_match_field_assignment() {
        let b = SystemConfig::paper_baseline()
            .with_mpl(6)
            .with_run_length(100, 1_000)
            .with_db_size(16_000)
            .with_update_prob(0.5)
            .with_shape(6, 3)
            .with_failures(FailureConfig::master_crashes(0.01))
            .with_cohort_abort_prob(0.02)
            .with_read_only_optimization(true)
            .with_trans_type(TransType::Sequential)
            .with_data_disks(3);
        let mut m = SystemConfig::paper_baseline();
        m.mpl = 6;
        m.run.warmup_transactions = 100;
        m.run.measured_transactions = 1_000;
        m.db_size = 16_000;
        m.update_prob = 0.5;
        m.dist_degree = 6;
        m.cohort_size = 3;
        m.failures = Some(FailureConfig::master_crashes(0.01));
        m.cohort_abort_prob = 0.02;
        m.read_only_optimization = true;
        m.trans_type = TransType::Sequential;
        m.num_data_disks = 3;
        assert_eq!(b, m);
        b.validate().unwrap();
    }

    #[test]
    fn pages_per_site() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.pages_per_site(), 1_000);
        assert_eq!(c.max_cohort_pages(), 9);
    }

    #[test]
    fn display_includes_table_1_names() {
        let s = SystemConfig::paper_baseline().to_string();
        for key in [
            "NumSites",
            "DBSize",
            "MPL",
            "TransType",
            "DistDegree",
            "CohortSize",
            "UpdateProb",
            "NumCPUs",
            "NumDataDisks",
            "NumLogDisks",
            "PageCPU",
            "PageDisk",
            "MsgCPU",
        ] {
            assert!(s.contains(key), "missing {key} in\n{s}");
        }
    }
}
