//! Engine-internal types: events, resource jobs, messages, and the
//! master/cohort state machines' state.

use crate::workload::{SiteId, TxnTemplate};
use distlocks::OwnerId;
use simkernel::slab::Handle;
use simkernel::{SimTime, SlabKey};

/// A transaction identifier (globally unique, monotonically assigned).
/// External: appears in traces and debug output; never recycled.
pub type TxnId = u64;

/// A cohort identifier (globally unique, monotonically assigned).
/// External: appears in traces and is the registration sequence in the
/// per-site lock tables; never recycled.
pub type CohortId = u64;

/// Dense slab handle of a live transaction in `Simulation::txns`.
/// Generational: a handle to a finished transaction misses on lookup,
/// exactly as a stale never-recycled [`TxnId`] missed in the old map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TxnH(Handle);

impl SlabKey for TxnH {
    fn from_handle(h: Handle) -> Self {
        TxnH(h)
    }
    fn handle(self) -> Handle {
        self.0
    }
}

impl TxnH {
    /// Dense slab slot — the index for stamp arrays sized to the live
    /// transaction population (deadlock pre-filter scratch).
    pub(crate) fn slot(self) -> usize {
        self.0.index() as usize
    }
}

/// Dense slab handle of a live cohort in `Simulation::cohorts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CohortH(Handle);

impl SlabKey for CohortH {
    fn from_handle(h: Handle) -> Self {
        CohortH(h)
    }
    fn handle(self) -> Handle {
        self.0
    }
}

/// A simulation event.
#[derive(Debug, Clone)]
pub(crate) enum Event {
    /// Submit a transaction at `home`. `template`/`original_birth` are
    /// set for restarts (an aborted transaction "makes the same data
    /// accesses as its original incarnation", §4) and `None` for fresh
    /// submissions.
    Submit {
        home: SiteId,
        template: Option<Box<TxnTemplate>>,
        original_birth: Option<SimTime>,
    },
    /// A CPU service completed at `site`.
    CpuDone { site: SiteId, job: CpuJob },
    /// A data-disk service completed.
    DataDiskDone {
        site: SiteId,
        disk: usize,
        job: DiskJob,
    },
    /// A log-disk (forced write) service completed.
    LogDiskDone {
        site: SiteId,
        disk: usize,
        job: LogWork,
    },
    /// A group-commit batch of forced writes completed (the batch
    /// contents live in the site's batcher).
    LogBatchDone { site: SiteId, disk: usize },
    /// A crashed master recovered (blocking protocols) — resume the
    /// interrupted decision.
    MasterRecovered { txn: TxnH, commit: bool },
    /// A crashed cohort restarted: replay its last forced log record
    /// and rejoin the protocol per the recovery rule.
    CohortRecovered { cohort: CohortH },
    /// Sender-side retransmission timer for a loss-eligible message
    /// fired; retransmit if the receiver still hasn't progressed.
    MsgRetry { retry: Retry, attempt: u32 },
    /// The cohorts of a crashed 3PC master detected the failure — run
    /// the termination protocol.
    StartTermination { txn: TxnH },
    /// Zero-cost delivery of a same-site message (master and its local
    /// cohort communicate for free).
    LocalMsg { msg: Message },
    /// A remote message finished its wire flight (topology latency)
    /// and reaches the receiver's CPU queue now.
    MsgArrive { msg: Message },
}

/// Work processed by a site CPU.
#[derive(Debug, Clone)]
pub(crate) enum CpuJob {
    /// Page processing for a cohort (`PageCPU`, low priority).
    Data { cohort: CohortH },
    /// Outgoing message processing (`MsgCPU`, high priority).
    MsgSend { msg: Message },
    /// Incoming message processing (`MsgCPU`, high priority).
    MsgRecv { msg: Message },
}

/// Work processed by a data disk.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DiskJob {
    /// Read one page on behalf of a cohort.
    Read { cohort: CohortH },
    /// Asynchronous post-commit write of an updated page; nothing waits
    /// on it (§4.1).
    AsyncWrite,
}

/// A forced log write and the state-machine step it unblocks (§4.3:
/// only forced writes are modeled; each costs one disk page write).
#[derive(Debug, Clone, Copy)]
pub(crate) enum LogWork {
    /// A cohort's *prepare* record; completion enters the prepared state.
    CohortPrepare { cohort: CohortH },
    /// A NO-voting cohort's forced abort record (2PC/PC/3PC; PA skips it).
    CohortNoVoteAbort { cohort: CohortH },
    /// A cohort's 3PC *precommit* record.
    CohortPrecommit { cohort: CohortH },
    /// A prepared cohort's decision record.
    CohortDecision { cohort: CohortH, commit: bool },
    /// The Presumed-Commit *collecting* record at the master.
    MasterCollecting { txn: TxnH },
    /// The master's 3PC *precommit* record.
    MasterPrecommit { txn: TxnH },
    /// The master's global decision record — its completion is the
    /// transaction's commit point.
    MasterDecision { txn: TxnH, commit: bool },
    /// Paxos Commit: acceptor `acc`'s vote bundle — one forced record
    /// covering every cohort's vote, replacing the master decision
    /// record (Gray & Lamport §5).
    AcceptorBundle { txn: TxnH, acc: u32 },
    /// Replicated 2PC: backup replica `rep`'s copy of the master
    /// decision record.
    ReplicaDecision { txn: TxnH, rep: u32 },
}

/// A loss-eligible transfer being watched by a retransmission timer
/// (message-loss injection). The timer checks the receiver's recorded
/// progress: if the message evidently arrived, the timer dies;
/// otherwise the transfer is repeated. Requests (master→cohort) carry
/// their own timers; of the replies only WORKDONE does — the others
/// (VOTE, PREACK, ACK) are re-solicited by the requester's timer
/// instead, because a repeated request is answered again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Retry {
    /// A PREPARE to `cohort` (chain variant included).
    Prepare { cohort: CohortH },
    /// A 3PC PRECOMMIT to `cohort`.
    PreCommit { cohort: CohortH },
    /// The decision to `cohort`.
    Decision { cohort: CohortH, commit: bool },
    /// A WORKDONE from `cohort` back to protocol control — the one
    /// cohort→master transfer nothing would otherwise re-solicit (the
    /// master is passively collecting in the execution phase).
    WorkDone { cohort: CohortH },
}

/// A network message. Transfers between distinct sites cost `MsgCPU`
/// at the sender and at the receiver; same-site messages are free.
/// Under a topology, remote transfers additionally spend the site
/// pair's wire latency in flight between the two CPU services.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Message {
    /// Sender site — keys the wire-latency lookup.
    pub from: SiteId,
    pub to: SiteId,
    pub kind: MsgKind,
    /// Fault injection decided this transfer is lost: the sender still
    /// pays `MsgCPU`, but the receiver never processes it.
    pub lost: bool,
    /// Retransmission ordinal: 0 for the first transfer, incremented by
    /// each timer-driven resend. Receivers of a request remember the
    /// highest attempt seen and stamp it on their replies, so a reply
    /// to an escalated (final, loss-exempt) request is itself
    /// loss-exempt — that closes the termination argument for
    /// reply-direction loss.
    pub attempt: u32,
}

/// A cohort's vote in the first protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Vote {
    /// Prepared; will obey the global decision.
    Yes,
    /// Veto; the cohort aborted unilaterally.
    No,
    /// Read-Only optimization (§3.2): nothing to make durable, the
    /// cohort released its locks and drops out of phase two.
    ReadOnly,
}

/// Message payloads of the execution phase and of every commit
/// protocol's phases.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MsgKind {
    /// Master → remote site: start this cohort (execution phase).
    InitCohort { cohort: CohortH },
    /// Cohort → master: local work complete (execution phase).
    WorkDone { txn: TxnH, cohort: CohortH },
    /// Master → cohort: phase one of the vote.
    Prepare { cohort: CohortH },
    /// Cohort → master: the phase-one vote.
    Vote {
        txn: TxnH,
        cohort: CohortH,
        vote: Vote,
    },
    /// Master → cohort: 3PC precommit.
    PreCommit { cohort: CohortH },
    /// Cohort → master: 3PC precommit acknowledgement.
    PreAck { txn: TxnH, cohort: CohortH },
    /// Master → cohort: the global decision.
    Decision { cohort: CohortH, commit: bool },
    /// Cohort → master: decision acknowledgement.
    Ack { txn: TxnH, cohort: CohortH },
    /// Termination coordinator → cohort: report your protocol state.
    TermStateReq { cohort: CohortH },
    /// Cohort → termination coordinator: state report (all cohorts are
    /// precommitted at the modeled crash point).
    TermStateRep { txn: TxnH },
    /// Linear 2PC: PREPARE travelling down the chain (the accumulated
    /// vote so far is YES; a NO stops forward propagation).
    ChainPrepare { cohort: CohortH },
    /// Linear 2PC: the decision travelling back up the chain.
    ChainDecision { cohort: CohortH, commit: bool },
    /// Linear 2PC: the decision's final backward hop to the master.
    ChainBack { txn: TxnH, commit: bool },
    /// Paxos Commit: a cohort's vote, fanned out to acceptor `acc` of
    /// the home shard's replica group (instead of a single VOTE to the
    /// master).
    PaxosVote { txn: TxnH, acc: u32, yes: bool },
    /// Paxos Commit: acceptor `acc` has forced its vote bundle and
    /// reports the outcome it accepted to the leader.
    Accepted { txn: TxnH, commit: bool },
    /// Replicated 2PC: the master's decision record, copied to backup
    /// replica `rep` before the decision is announced.
    RepDecision { txn: TxnH, rep: u32 },
    /// Replicated 2PC: a backup replica has forced its copy.
    RepAck { txn: TxnH },
    /// Paxos leader failover: the new leader queries acceptor `acc` for
    /// its accepted state (the quorum-read of the recovery round).
    AccStateReq { txn: TxnH, acc: u32 },
    /// Paxos leader failover: an acceptor's state report.
    AccStateRep { txn: TxnH },
}

impl MsgKind {
    /// Execution-phase messages vs commit-phase messages — the split
    /// reported in the paper's Tables 3 and 4.
    pub fn is_execution(self) -> bool {
        matches!(self, MsgKind::InitCohort { .. } | MsgKind::WorkDone { .. })
    }

    /// The payload-free label used by the protocol trace.
    pub fn label(self) -> super::trace::MsgLabel {
        use super::trace::MsgLabel as L;
        match self {
            MsgKind::InitCohort { .. } => L::InitCohort,
            MsgKind::WorkDone { .. } => L::WorkDone,
            MsgKind::Prepare { .. } => L::Prepare,
            MsgKind::Vote {
                vote: Vote::Yes, ..
            } => L::VoteYes,
            MsgKind::Vote { vote: Vote::No, .. } => L::VoteNo,
            MsgKind::Vote {
                vote: Vote::ReadOnly,
                ..
            } => L::VoteReadOnly,
            MsgKind::PreCommit { .. } => L::PreCommit,
            MsgKind::PreAck { .. } => L::PreAck,
            MsgKind::Decision { commit: true, .. } => L::DecisionCommit,
            MsgKind::Decision { commit: false, .. } => L::DecisionAbort,
            MsgKind::Ack { .. } => L::Ack,
            MsgKind::TermStateReq { .. } => L::TermStateReq,
            MsgKind::TermStateRep { .. } => L::TermStateRep,
            // The chain hops are the linear analogues of PREPARE and
            // the decision; they share those labels in traces.
            MsgKind::ChainPrepare { .. } => L::Prepare,
            MsgKind::ChainDecision { commit: true, .. } => L::DecisionCommit,
            MsgKind::ChainDecision { commit: false, .. } => L::DecisionAbort,
            MsgKind::ChainBack { commit: true, .. } => L::DecisionCommit,
            MsgKind::ChainBack { commit: false, .. } => L::DecisionAbort,
            MsgKind::PaxosVote { yes: true, .. } => L::PaxosVoteYes,
            MsgKind::PaxosVote { yes: false, .. } => L::PaxosVoteNo,
            MsgKind::Accepted { .. } => L::Accepted,
            MsgKind::RepDecision { .. } => L::RepDecision,
            MsgKind::RepAck { .. } => L::RepAck,
            // The failover round is the replicated analogue of the 3PC
            // termination state exchange; it shares those labels.
            MsgKind::AccStateReq { .. } => L::TermStateReq,
            MsgKind::AccStateRep { .. } => L::TermStateRep,
        }
    }
}

impl LogWork {
    /// The payload-free label used by the protocol trace.
    pub fn label(self) -> super::trace::LogLabel {
        use super::trace::LogLabel as L;
        match self {
            LogWork::CohortPrepare { .. } => L::Prepare,
            LogWork::CohortNoVoteAbort { .. } => L::NoVoteAbort,
            LogWork::CohortPrecommit { .. } => L::CohortPrecommit,
            LogWork::CohortDecision { commit: true, .. } => L::CohortCommit,
            LogWork::CohortDecision { commit: false, .. } => L::CohortAbort,
            LogWork::MasterCollecting { .. } => L::Collecting,
            LogWork::MasterPrecommit { .. } => L::MasterPrecommit,
            LogWork::MasterDecision { commit: true, .. } => L::MasterCommit,
            LogWork::MasterDecision { commit: false, .. } => L::MasterAbort,
            LogWork::AcceptorBundle { .. } => L::AcceptorBundle,
            LogWork::ReplicaDecision { .. } => L::ReplicaDecision,
        }
    }
}

/// Master-side transaction phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxnPhase {
    /// Data processing in progress; waiting for WORKDONE messages.
    Executing,
    /// Presumed Commit: forcing the collecting record.
    Collecting,
    /// PREPAREs sent; waiting for votes.
    Voting,
    /// 3PC: precommit round in flight.
    Precommitting,
    /// Forcing the master decision record.
    LoggingDecision { commit: bool },
    /// Decision taken and announced; draining ACKs / cohort tails.
    Decided { commit: bool },
}

/// One in-flight transaction (master side).
#[derive(Debug)]
pub(crate) struct Txn {
    /// External id — appears in traces and debug output.
    pub id: TxnId,
    pub home: SiteId,
    pub template: TxnTemplate,
    /// Submission instant of this incarnation (deadlock victims are the
    /// *youngest*, judged by this).
    pub birth: SimTime,
    /// Submission instant of the first incarnation (response time runs
    /// from here).
    pub original_birth: SimTime,
    pub cohorts: Vec<CohortH>,
    pub phase: TxnPhase,
    pub pending_workdone: usize,
    pub pending_votes: usize,
    pub pending_preacks: usize,
    pub pending_acks: usize,
    pub no_vote: bool,
    /// Cohorts currently blocked on a lock (block-ratio accounting).
    pub blocked_cohorts: u32,
    /// Next cohort to start, for sequential transactions.
    pub next_seq_cohort: usize,
    /// Cohorts not yet `Done` (cleanup refcount).
    pub open_cohorts: usize,
    /// Master has finished its part (decision taken, ACKs drained).
    pub master_done: bool,
    /// After a 3PC master crash, the site of the cohort elected as
    /// termination coordinator; protocol control moves there.
    pub coordinator_site: Option<SiteId>,
    /// Outstanding termination state reports.
    pub pending_term_reps: usize,
    /// Paxos Commit: votes still missing per acceptor of the home
    /// shard's replica group (indexed by acceptor ordinal; empty for
    /// non-quorum protocols). An acceptor forces its bundle when its
    /// entry reaches zero.
    pub acc_pending: Vec<u32>,
    /// Paxos Commit: ACCEPTED reports the leader has not yet received;
    /// cleanup waits for straggler acceptors so the overhead check sees
    /// every forced bundle.
    pub accepts_outstanding: usize,
    /// Replicated 2PC: backup replicas that have not yet acknowledged
    /// their copy of the decision record.
    pub pending_rep_acks: usize,
    /// When this incarnation entered commit processing (all WORKDONEs
    /// collected) — the execution/voting phase boundary.
    pub commit_started: Option<SimTime>,
    /// When the master's decision became durable — the voting/decision
    /// phase boundary.
    pub decided_at: Option<SimTime>,
    /// Execution-phase remote messages sent on behalf of this
    /// incarnation (overhead cross-check against Tables 3–4).
    pub msg_exec: u64,
    /// Commit-phase remote messages sent on behalf of this incarnation.
    pub msg_commit: u64,
    /// Forced log writes issued on behalf of this incarnation.
    pub forced: u64,
    /// A fault hit this incarnation (master/cohort crash or message
    /// loss) — the recovery/retransmission traffic puts it outside the
    /// analytic model.
    pub crashed: bool,
    /// Instant of the first crash that hit this incarnation, for the
    /// blocked-on-crash lock-hold accounting.
    pub crashed_at: Option<SimTime>,
}

impl Txn {
    /// The site protocol control currently lives at: the master's home,
    /// or the elected termination coordinator after a 3PC crash.
    pub fn control_site(&self) -> SiteId {
        self.coordinator_site.unwrap_or(self.home)
    }
}

/// Cohort-side phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CohortPhase {
    /// Created; initiation message still in flight (or, for sequential
    /// transactions, predecessor cohorts still running).
    Starting,
    /// Working through the access list (may be waiting on a lock, a
    /// disk, or a CPU).
    Executing,
    /// OPT: finished its work but borrowed from still-undecided
    /// lenders, so WORKDONE is withheld (§3, "put on the shelf").
    OnShelf,
    /// WORKDONE sent; all locks held; waiting for PREPARE.
    WorkDone,
    /// Forcing the prepare record.
    Preparing,
    /// Prepared: voted YES, holding update locks, waiting for the
    /// decision (lendable under OPT).
    Prepared,
    /// 3PC: forcing the precommit record.
    Precommitting,
    /// 3PC: precommit acknowledged; waiting for the final decision.
    Precommitted,
    /// Forcing the decision record. A finished cohort is normally
    /// removed from the engine's map outright…
    Deciding { commit: bool },
    /// …except under message-loss injection, where a cohort whose final
    /// reply (read-only vote, NO vote, or ACK) may have been lost
    /// lingers here — locks released, resources freed — purely to
    /// answer duplicate requests with its stored [`Cohort::parting_reply`]
    /// until the master confirms receipt.
    Parted,
}

/// One in-flight cohort.
#[derive(Debug)]
pub(crate) struct Cohort {
    /// External id — appears in traces; also the registration sequence
    /// in the site's lock table.
    pub id: CohortId,
    pub txn: TxnH,
    pub site: SiteId,
    /// Index of this cohort's access list in `txn.template.accesses`.
    /// The accesses are read from the template; they are not cloned
    /// per incarnation.
    pub acc_index: usize,
    /// Length of that access list.
    pub n_accesses: usize,
    pub next_access: usize,
    pub phase: CohortPhase,
    /// This cohort's registered owner handle in `site`'s lock table.
    pub lock_owner: OwnerId,
    /// Blocked on a lock right now (subset of `Executing`).
    pub waiting_lock: bool,
    /// When it went on the shelf (for shelf-time statistics).
    pub shelf_since: Option<SimTime>,
    /// When it entered the prepared state (for prepared-time statistics).
    pub prepared_since: Option<SimTime>,
    /// Highest request attempt seen from protocol control; stamped on
    /// every reply so replies to escalated requests are loss-exempt
    /// (see [`Message::attempt`]).
    pub req_attempt: u32,
    /// Crashed and not yet recovered: requests delivered meanwhile are
    /// recorded (the site's log survives) but never answered — the
    /// recovery path resends the withheld reply.
    pub down: bool,
    /// Master has received this cohort's WORKDONE (kills the cohort's
    /// retransmission timer; deduplicates late resends).
    pub wd_seen: bool,
    /// Master has received this cohort's VOTE.
    pub vote_seen: bool,
    /// Master has received this cohort's PREACK.
    pub preack_seen: bool,
    /// The final reply stored when entering [`CohortPhase::Parted`],
    /// resent verbatim on duplicate requests.
    pub parting_reply: Option<MsgKind>,
}

impl Cohort {
    /// True once the cohort has issued every access.
    pub fn work_complete(&self) -> bool {
        self.next_access >= self.n_accesses
    }
}
