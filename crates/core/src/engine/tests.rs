//! In-crate engine unit tests: small, fast checks of internal
//! machinery the integration suite exercises only indirectly.

use super::types::{CohortH, CohortPhase, LogWork, MsgKind, TxnH, Vote};
use super::{Simulation, Trace};
use crate::config::{ResourceMode, SystemConfig, TransType};
use crate::metrics::SimReport;
use commitproto::ProtocolSpec;
use simkernel::slab::Handle;
use simkernel::SlabKey;

/// A transaction handle literal for payload tests (generation 0).
fn th(n: u32) -> TxnH {
    TxnH::from_handle(Handle::new(n, 0))
}

/// A cohort handle literal for payload tests (generation 0).
fn ch(n: u32) -> CohortH {
    CohortH::from_handle(Handle::new(n, 0))
}

fn tiny() -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.run.warmup_transactions = 10;
    cfg.run.measured_transactions = 80;
    cfg
}

fn run(cfg: &SystemConfig, spec: ProtocolSpec, seed: u64) -> SimReport {
    Simulation::run(cfg, spec, seed).expect("valid config")
}

#[test]
fn msgkind_labels_are_exhaustive_and_consistent() {
    use super::trace::MsgLabel as L;
    let cases: Vec<(MsgKind, L)> = vec![
        (MsgKind::InitCohort { cohort: ch(1) }, L::InitCohort),
        (
            MsgKind::WorkDone {
                txn: th(1),
                cohort: ch(1),
            },
            L::WorkDone,
        ),
        (MsgKind::Prepare { cohort: ch(1) }, L::Prepare),
        (
            MsgKind::Vote {
                txn: th(1),
                cohort: ch(1),
                vote: Vote::Yes,
            },
            L::VoteYes,
        ),
        (
            MsgKind::Vote {
                txn: th(1),
                cohort: ch(1),
                vote: Vote::No,
            },
            L::VoteNo,
        ),
        (
            MsgKind::Vote {
                txn: th(1),
                cohort: ch(1),
                vote: Vote::ReadOnly,
            },
            L::VoteReadOnly,
        ),
        (MsgKind::PreCommit { cohort: ch(1) }, L::PreCommit),
        (
            MsgKind::PreAck {
                txn: th(1),
                cohort: ch(1),
            },
            L::PreAck,
        ),
        (
            MsgKind::Decision {
                cohort: ch(1),
                commit: true,
            },
            L::DecisionCommit,
        ),
        (
            MsgKind::Decision {
                cohort: ch(1),
                commit: false,
            },
            L::DecisionAbort,
        ),
        (
            MsgKind::Ack {
                txn: th(1),
                cohort: ch(1),
            },
            L::Ack,
        ),
        (MsgKind::TermStateReq { cohort: ch(1) }, L::TermStateReq),
        (MsgKind::TermStateRep { txn: th(1) }, L::TermStateRep),
        (MsgKind::ChainPrepare { cohort: ch(1) }, L::Prepare),
        (
            MsgKind::ChainDecision {
                cohort: ch(1),
                commit: true,
            },
            L::DecisionCommit,
        ),
        (
            MsgKind::ChainDecision {
                cohort: ch(1),
                commit: false,
            },
            L::DecisionAbort,
        ),
        (
            MsgKind::ChainBack {
                txn: th(1),
                commit: true,
            },
            L::DecisionCommit,
        ),
        (
            MsgKind::ChainBack {
                txn: th(1),
                commit: false,
            },
            L::DecisionAbort,
        ),
    ];
    for (kind, label) in cases {
        assert_eq!(kind.label(), label, "{kind:?}");
    }
    // execution/commit classification
    assert!(MsgKind::InitCohort { cohort: ch(1) }.is_execution());
    assert!(MsgKind::WorkDone {
        txn: th(1),
        cohort: ch(1)
    }
    .is_execution());
    assert!(!MsgKind::Prepare { cohort: ch(1) }.is_execution());
    assert!(!MsgKind::ChainBack {
        txn: th(1),
        commit: true
    }
    .is_execution());
}

#[test]
fn logwork_labels_are_consistent() {
    use super::trace::LogLabel as L;
    let cases: Vec<(LogWork, L)> = vec![
        (LogWork::CohortPrepare { cohort: ch(1) }, L::Prepare),
        (LogWork::CohortNoVoteAbort { cohort: ch(1) }, L::NoVoteAbort),
        (
            LogWork::CohortPrecommit { cohort: ch(1) },
            L::CohortPrecommit,
        ),
        (
            LogWork::CohortDecision {
                cohort: ch(1),
                commit: true,
            },
            L::CohortCommit,
        ),
        (
            LogWork::CohortDecision {
                cohort: ch(1),
                commit: false,
            },
            L::CohortAbort,
        ),
        (LogWork::MasterCollecting { txn: th(1) }, L::Collecting),
        (LogWork::MasterPrecommit { txn: th(1) }, L::MasterPrecommit),
        (
            LogWork::MasterDecision {
                txn: th(1),
                commit: true,
            },
            L::MasterCommit,
        ),
        (
            LogWork::MasterDecision {
                txn: th(1),
                commit: false,
            },
            L::MasterAbort,
        ),
    ];
    for (work, label) in cases {
        assert_eq!(work.label(), label, "{work:?}");
    }
}

#[test]
fn cohort_work_complete_tracks_cursor() {
    let mut lm = distlocks::LockManager::new(false);
    let owner = lm.register_owner(1);
    let mut c = super::types::Cohort {
        id: 1,
        txn: th(1),
        site: 0,
        acc_index: 0,
        n_accesses: 2,
        next_access: 0,
        phase: CohortPhase::Executing,
        lock_owner: owner,
        waiting_lock: false,
        shelf_since: None,
        prepared_since: None,
        req_attempt: 0,
        down: false,
        wd_seen: false,
        vote_seen: false,
        preack_seen: false,
        parting_reply: None,
    };
    assert!(!c.work_complete());
    c.next_access = 2;
    assert!(c.work_complete());
}

#[test]
fn invalid_spec_and_config_combinations_are_rejected() {
    let cfg = tiny();
    // OPT over a baseline is meaningless.
    let bad = commitproto::ProtocolSpec {
        base: commitproto::BaseProtocol::Centralized,
        opt: true,
    };
    assert!(Simulation::run(&cfg, bad, 1).is_err());
    // Invalid config propagates.
    let mut bad_cfg = cfg.clone();
    bad_cfg.mpl = 0;
    assert!(Simulation::run(&bad_cfg, ProtocolSpec::TWO_PC, 1).is_err());
}

#[test]
fn every_protocol_commits_in_every_execution_mode() {
    for trans in [TransType::Parallel, TransType::Sequential] {
        for resources in [ResourceMode::Finite, ResourceMode::Infinite] {
            let mut cfg = tiny();
            cfg.trans_type = trans;
            cfg.resources = resources;
            for spec in ProtocolSpec::ALL {
                let r = run(&cfg, spec, 5);
                assert_eq!(r.committed, 80, "{} {trans:?} {resources:?}", spec.name());
                assert!(r.throughput > 0.0);
            }
        }
    }
}

#[test]
fn single_site_system_works_for_all_protocols() {
    let mut cfg = tiny();
    cfg.num_sites = 1;
    cfg.dist_degree = 1;
    cfg.db_size = 1_000;
    for spec in ProtocolSpec::ALL {
        let r = run(&cfg, spec, 6);
        assert_eq!(r.committed, 80, "{}", spec.name());
        assert!(
            r.exec_messages_per_commit < 1e-9,
            "{}: no remote messages possible",
            spec.name()
        );
        assert!(r.commit_messages_per_commit < 1e-9, "{}", spec.name());
    }
}

#[test]
fn mpl_one_single_seq_site_has_no_contention() {
    let mut cfg = tiny();
    cfg.num_sites = 1;
    cfg.dist_degree = 1;
    cfg.db_size = 1_000;
    cfg.mpl = 1;
    let r = run(&cfg, ProtocolSpec::TWO_PC, 7);
    assert_eq!(r.total_aborts(), 0);
    assert!(r.block_ratio < 1e-9);
    // single transaction: response = 1/throughput exactly
    assert!((r.mean_response_s - 1.0 / r.throughput).abs() < 1e-6);
}

#[test]
fn trace_render_txn_mentions_all_milestones() {
    let mut cfg = tiny();
    cfg.db_size = 80_000;
    cfg.mpl = 1;
    let (_, trace) = Simulation::run_traced(&cfg, ProtocolSpec::TWO_PC, 3, 1).unwrap();
    let text = trace.render_txn(1);
    for needle in [
        "InitCohort",
        "WorkDone",
        "Prepare",
        "PREPARED",
        "GLOBAL DECISION: COMMIT",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    assert!(text.lines().count() > 10);
}

#[test]
fn empty_trace_renders_gracefully() {
    let trace = Trace::default();
    let text = trace.render_txn(42);
    assert!(text.contains("txn 42"));
    assert!(text.contains("0 events"));
}

#[test]
fn run_control_counts_only_post_warmup_commits() {
    let mut cfg = tiny();
    cfg.run.warmup_transactions = 40;
    cfg.run.measured_transactions = 60;
    let r = run(&cfg, ProtocolSpec::TWO_PC, 8);
    assert_eq!(
        r.committed, 60,
        "only measured-window commits in the report"
    );
}

#[test]
fn zero_warmup_is_legal() {
    let mut cfg = tiny();
    cfg.run.warmup_transactions = 0;
    let r = run(&cfg, ProtocolSpec::OPT_2PC, 9);
    assert_eq!(r.committed, 80);
}

#[test]
fn seeds_change_workloads_not_accounting() {
    let mut cfg = tiny();
    cfg.db_size = 80_000; // conflict-free: per-commit accounting exact
    cfg.mpl = 1;
    let a = run(&cfg, ProtocolSpec::PC, 1);
    let b = run(&cfg, ProtocolSpec::PC, 2);
    assert_ne!(a.events, b.events);
    assert!((a.forced_writes_per_commit - b.forced_writes_per_commit).abs() < 0.1);
    assert!((a.commit_messages_per_commit - b.commit_messages_per_commit).abs() < 0.1);
}

#[test]
fn opt_lending_under_master_crashes_leaks_no_locks() {
    // OPT lends uncommitted updates to borrowers; a master crash at the
    // decision point strands prepared lenders for the full recovery
    // time, so borrower chains must resolve only when the delayed
    // decision finally lands. This drives lending and crashes together
    // and then audits every lock table: the structural invariants hold,
    // and no cohort id that has died still holds, waits for, or borrows
    // anything. (The system is closed — the live incarnations at drain
    // time legitimately hold locks — so "no leak" means dead ids own
    // nothing.)
    use crate::config::FailureConfig;
    let mut cfg = tiny();
    cfg.mpl = 8;
    cfg.run.measured_transactions = 400;
    cfg.failures = Some(FailureConfig {
        master_crash_prob: 0.05,
        ..FailureConfig::default()
    });
    for spec in [ProtocolSpec::OPT_2PC, ProtocolSpec::OPT_3PC] {
        let mut sim = Simulation::new(&cfg, spec, 13).expect("valid config");
        sim.execute();
        let report = sim.report();
        // The scenario really exercised lending under crashes.
        assert!(report.faults.master_crashes > 0, "{}", spec.name());
        assert!(report.borrow_ratio > 0.0, "{}", spec.name());

        for (si, site) in sim.sites.iter().enumerate() {
            site.locks.audit().unwrap_or_else(|e| {
                panic!("{}: lock table corrupt at site {si}: {e}", spec.name())
            });
            // Owner registrations and live cohorts are a bijection: a
            // cohort only unregisters at teardown, and `unregister`
            // panics if the owner still holds, waits for, or borrows
            // anything — so matching counts prove dead cohorts own
            // nothing.
            let live_here = sim.cohorts.values().filter(|c| c.site == si).count();
            assert_eq!(
                site.locks.registered_count(),
                live_here,
                "{}: site {si} lock table retains dead registrations",
                spec.name()
            );
        }
        for c in sim.cohorts.values() {
            assert_eq!(
                sim.sites[c.site].locks.owner_seq(c.lock_owner),
                Some(c.id),
                "{}: cohort {} mapped to a foreign owner slot",
                spec.name(),
                c.id
            );
        }
    }
}

#[test]
fn control_site_defaults_to_home() {
    // Covered indirectly everywhere; pin the accessor contract here.
    use super::types::{Txn, TxnPhase};
    use crate::workload::TxnTemplate;
    let t = Txn {
        id: 1,
        home: 3,
        template: TxnTemplate {
            home: 3,
            sites: vec![3],
            accesses: vec![vec![]],
        },
        birth: simkernel::SimTime::ZERO,
        original_birth: simkernel::SimTime::ZERO,
        cohorts: vec![ch(1)],
        phase: TxnPhase::Executing,
        pending_workdone: 1,
        pending_votes: 0,
        pending_preacks: 0,
        pending_acks: 0,
        no_vote: false,
        blocked_cohorts: 0,
        next_seq_cohort: 1,
        open_cohorts: 1,
        master_done: false,
        coordinator_site: None,
        pending_term_reps: 0,
        acc_pending: Vec::new(),
        accepts_outstanding: 0,
        pending_rep_acks: 0,
        commit_started: None,
        decided_at: None,
        msg_exec: 0,
        msg_commit: 0,
        forced: 0,
        crashed: false,
        crashed_at: None,
    };
    assert_eq!(t.control_site(), 3);
    let t2 = Txn {
        coordinator_site: Some(5),
        ..t
    };
    assert_eq!(t2.control_site(), 5);
}
