//! Windowed time-series telemetry: the fourth streaming sink family.
//!
//! A [`SeriesRecorder`] tiles simulated time into fixed-width windows
//! and, at each boundary, emits the *delta* of the run's counters over
//! the window — committed/aborted throughput, abort-reason mix, block
//! ratio, lock-wait time, per-class message and retransmit counts —
//! plus, optionally, a per-site breakdown (per-site commits and
//! instantaneous resource queue depths) so skewed runs show where load
//! concentrates.
//!
//! Two properties make the series trustworthy rather than merely
//! decorative:
//!
//! 1. **Exact aggregation.** A partial window is force-closed at the
//!    warm-up reset instant, so measured windows (`measured: true`)
//!    tile exactly over the measurement interval. Counter deltas then
//!    sum to the `SimReport` totals *by construction*, and the
//!    blocked/live time integrals telescope, so the weighted window
//!    block ratios reproduce the report's block ratio bit for bit (see
//!    the cross-check test in `tests/series.rs`).
//! 2. **Bounded memory.** Like the Chrome/fold sinks, the recorder can
//!    stream each closed window straight to a writer (CSV or JSON)
//!    instead of buffering; the streamed bytes are identical to the
//!    buffered render because both go through the same row renderers.
//!
//! Observation does not perturb the run: the recorder reads counters
//! that the engine maintains anyway, and its per-site commit tallies
//! are bumped outside any RNG-consuming path, so a run with the
//! recorder installed reports bit-identical metrics to one without.

use std::io::Write as IoWrite;

use simkernel::{SimDuration, SimTime};

use super::Site;
use crate::metrics::Metrics;

/// Error from a streaming series run: the run never started
/// (configuration) or the output writer failed.
#[derive(Debug)]
pub enum SeriesRunError {
    /// Invalid configuration or protocol spec.
    Config(crate::config::ConfigError),
    /// The series writer failed.
    Io(std::io::Error),
}

impl std::fmt::Display for SeriesRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesRunError::Config(e) => write!(f, "{e}"),
            SeriesRunError::Io(e) => write!(f, "series output failed: {e}"),
        }
    }
}

impl std::error::Error for SeriesRunError {}

impl From<crate::config::ConfigError> for SeriesRunError {
    fn from(e: crate::config::ConfigError) -> Self {
        SeriesRunError::Config(e)
    }
}

impl From<std::io::Error> for SeriesRunError {
    fn from(e: std::io::Error) -> Self {
        SeriesRunError::Io(e)
    }
}

/// Configuration for windowed series collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesConfig {
    /// Window width in simulated time.
    pub window: SimDuration,
    /// Record a per-site breakdown in every window.
    pub per_site: bool,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        SeriesConfig {
            window: SeriesConfig::DEFAULT_WINDOW,
            per_site: false,
        }
    }
}

impl SeriesConfig {
    /// Default window width: 5 simulated seconds — coarse enough that
    /// a default-length run yields a handful of windows, fine enough
    /// to see ramp-up and fault bursts.
    pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_secs(5);
}

/// Serialization format for series output (the `table` report format
/// has no meaningful series rendering, so this is narrower than
/// [`crate::metrics::ReportFormat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesFormat {
    /// One row per window (plus one per site in per-site mode).
    Csv,
    /// A single JSON document with a `windows` array.
    Json,
}

/// Per-site observations inside one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSample {
    /// Effective site index.
    pub site: usize,
    /// Transactions with this home site committed inside the window.
    pub committed: u64,
    /// Jobs waiting (not in service) at the site CPU when the window
    /// closed — an instantaneous sample, not a time average.
    pub cpu_queued: u64,
    /// Jobs waiting across the site's data disks at window close.
    pub data_disk_queued: u64,
    /// Writes waiting across the site's log disks (or group-commit
    /// batchers) at window close.
    pub log_queued: u64,
}

/// One closed window of the series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesWindow {
    /// Window ordinal, starting at 0.
    pub index: u64,
    /// Window start (inclusive), simulated time.
    pub start: SimTime,
    /// Window end (exclusive), simulated time.
    pub end: SimTime,
    /// True for windows after the warm-up reset: exactly these windows
    /// tile the measurement interval and sum to the report aggregates.
    pub measured: bool,
    /// Commits inside the window.
    pub committed: u64,
    /// Deadlock-victim aborts inside the window.
    pub aborted_deadlock: u64,
    /// Surprise-vote aborts inside the window.
    pub aborted_surprise: u64,
    /// Borrower-cascade aborts inside the window.
    pub aborted_borrower: u64,
    /// Execution-phase messages sent inside the window.
    pub exec_messages: u64,
    /// Commit-phase messages sent inside the window.
    pub commit_messages: u64,
    /// Retransmissions inside the window.
    pub retransmissions: u64,
    /// Messages lost inside the window.
    pub messages_lost: u64,
    /// Blocked-transaction integral over the window, in
    /// transaction-seconds — the lock-wait time spent inside the
    /// window summed over all transactions.
    pub lock_wait_s: f64,
    /// Live-transaction integral over the window, transaction-seconds.
    pub live_s: f64,
    /// `lock_wait_s / live_s` — the window's block ratio (0 when no
    /// live time was accumulated).
    pub block_ratio: f64,
    /// Per-site breakdown; empty unless per-site mode is on.
    pub per_site: Vec<SiteSample>,
}

impl SeriesWindow {
    /// Window width in seconds.
    pub fn width_s(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }

    /// Committed transactions per second inside the window.
    pub fn throughput(&self) -> f64 {
        let w = self.width_s();
        if w > 0.0 {
            self.committed as f64 / w
        } else {
            0.0
        }
    }
}

/// Counter values at the last window boundary; deltas against these
/// yield per-window figures.
#[derive(Debug, Clone, Default)]
struct Baselines {
    committed: u64,
    aborted_deadlock: u64,
    aborted_surprise: u64,
    aborted_borrower: u64,
    exec_messages: u64,
    commit_messages: u64,
    retransmissions: u64,
    messages_lost: u64,
    blocked_area: f64,
    live_area: f64,
    site_commits: Vec<u64>,
}

/// A point-in-time view of every counter the recorder windows over.
/// The serial engine builds one from its global [`Metrics`] and site
/// array; the sharded parallel engine sums per-site metrics into the
/// same shape at each window boundary. Counters are cumulative since
/// the last baseline zeroing (run start or warm-up reset) — the
/// recorder turns them into per-window deltas itself.
#[derive(Debug, Clone, Default)]
pub(crate) struct SeriesSnapshot {
    pub committed: u64,
    pub aborted_deadlock: u64,
    pub aborted_surprise: u64,
    pub aborted_borrower: u64,
    pub exec_messages: u64,
    pub commit_messages: u64,
    pub retransmissions: u64,
    pub messages_lost: u64,
    /// Blocked-transaction integral since measurement start, seconds.
    pub blocked_area: f64,
    /// Live-transaction integral since measurement start, seconds.
    pub live_area: f64,
    /// One row per effective site; empty when per-site mode is off.
    pub site_rows: Vec<SiteRow>,
}

/// Per-site slice of a [`SeriesSnapshot`]: cumulative commits for the
/// home site plus instantaneous queue-depth samples.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SiteRow {
    pub committed: u64,
    pub cpu_q: u64,
    pub data_q: u64,
    pub log_q: u64,
}

/// Identity of the run a series belongs to, carried into the output
/// header.
#[derive(Debug, Clone)]
pub struct SeriesMeta {
    /// Protocol name (paper spelling).
    pub protocol: String,
    /// Per-site multiprogramming level.
    pub mpl: u32,
    /// RNG seed of the run.
    pub seed: u64,
    /// Configured window width, seconds.
    pub window_s: f64,
    /// Whether per-site samples were recorded.
    pub per_site: bool,
}

enum Output {
    Buffer(Vec<SeriesWindow>),
    Stream {
        writer: Box<dyn IoWrite + Send>,
        format: SeriesFormat,
        wrote_window: bool,
    },
}

/// The engine-side recorder. Installed on a [`super::Simulation`] via
/// the series run entry points; windows close lazily as events cross
/// boundaries, plus one forced partial close at the warm-up reset so
/// measured windows tile the measurement interval exactly.
pub struct SeriesRecorder {
    window: SimDuration,
    per_site: bool,
    measured: bool,
    window_start: SimTime,
    next_boundary: SimTime,
    index: u64,
    base: Baselines,
    /// Cumulative per-home-site commit counts, bumped by the engine at
    /// each commit decision; zeroed at the warm-up reset.
    site_commits: Vec<u64>,
    meta: SeriesMeta,
    out: Output,
}

impl SeriesRecorder {
    pub(crate) fn new_buffered(cfg: &SeriesConfig, meta: SeriesMeta, sites: usize) -> Self {
        Self::new(cfg, meta, sites, Output::Buffer(Vec::new()))
    }

    pub(crate) fn new_streaming(
        cfg: &SeriesConfig,
        meta: SeriesMeta,
        sites: usize,
        mut writer: Box<dyn IoWrite + Send>,
        format: SeriesFormat,
    ) -> std::io::Result<Self> {
        match format {
            SeriesFormat::Csv => writer.write_all(csv_header().as_bytes())?,
            SeriesFormat::Json => writer.write_all(json_header(&meta).as_bytes())?,
        }
        Ok(Self::new(
            cfg,
            meta,
            sites,
            Output::Stream {
                writer,
                format,
                wrote_window: false,
            },
        ))
    }

    fn new(cfg: &SeriesConfig, meta: SeriesMeta, sites: usize, out: Output) -> Self {
        assert!(!cfg.window.is_zero(), "series window must be positive");
        SeriesRecorder {
            window: cfg.window,
            per_site: cfg.per_site,
            // Runs with no warm-up measure from t = 0; `start_measuring`
            // flips this for warmed-up runs.
            measured: true,
            window_start: SimTime::ZERO,
            next_boundary: SimTime(cfg.window.as_micros()),
            index: 0,
            base: Baselines {
                site_commits: vec![0; sites],
                ..Baselines::default()
            },
            site_commits: vec![0; sites],
            meta,
            out,
        }
    }

    /// Mark the windows from here on as warm-up (called at install time
    /// when the run has a non-zero warm-up target).
    pub(crate) fn begin_warmup(&mut self) {
        self.measured = false;
    }

    /// First event time at or after which a window must close.
    pub(crate) fn next_boundary(&self) -> SimTime {
        self.next_boundary
    }

    /// Engine hook: transaction with home site `site` committed.
    pub(crate) fn note_commit(&mut self, site: usize) {
        if let Some(c) = self.site_commits.get_mut(site) {
            *c += 1;
        }
    }

    /// Close every window whose boundary is at or before `now`. Called
    /// lazily from the event loop just before dispatching the first
    /// event past a boundary, so a window's deltas never include
    /// effects from beyond its end.
    pub(crate) fn close_through(&mut self, now: SimTime, metrics: &mut Metrics, sites: &[Site]) {
        while now >= self.next_boundary {
            let end = self.next_boundary;
            self.close_at(end, metrics, sites);
            self.next_boundary = SimTime(end.as_micros() + self.window.as_micros());
        }
    }

    /// Snapshot-driven twin of [`Self::close_through`] for engines that
    /// don't own a single global [`Metrics`]: `snap` is called once per
    /// boundary (integrals differ per boundary, so one snapshot cannot
    /// serve several windows).
    pub(crate) fn close_through_with(
        &mut self,
        now: SimTime,
        mut snap: impl FnMut(SimTime) -> SeriesSnapshot,
    ) {
        while now >= self.next_boundary {
            let end = self.next_boundary;
            let s = snap(end);
            self.close_at_snap(end, &s);
            self.next_boundary = SimTime(end.as_micros() + self.window.as_micros());
        }
    }

    /// Snapshot-driven twin of [`Self::close_warmup`]; the same
    /// pre-reset ordering contract applies.
    pub(crate) fn close_warmup_with(
        &mut self,
        now: SimTime,
        mut snap: impl FnMut(SimTime) -> SeriesSnapshot,
    ) {
        if now > self.window_start {
            let s = snap(now);
            self.close_at_snap(now, &s);
        }
        self.reset_after_warmup(now);
    }

    /// Snapshot-driven twin of [`Self::finish`].
    pub(crate) fn finish_with(
        mut self,
        now: SimTime,
        mut snap: impl FnMut(SimTime) -> SeriesSnapshot,
    ) -> std::io::Result<Series> {
        self.close_through_with(now, &mut snap);
        if now > self.window_start {
            let s = snap(now);
            self.close_at_snap(now, &s);
        }
        self.into_series()
    }

    /// Force-close the current partial window at the warm-up reset
    /// instant. Must run *before* `Metrics::reset`: the window deltas
    /// are taken against the pre-reset counters, then every baseline is
    /// zeroed to match the freshly reset counters, and window tiling
    /// restarts at `now` so measured windows align with the
    /// measurement interval.
    pub(crate) fn close_warmup(&mut self, now: SimTime, metrics: &mut Metrics, sites: &[Site]) {
        if now > self.window_start {
            self.close_at(now, metrics, sites);
        }
        self.reset_after_warmup(now);
    }

    fn reset_after_warmup(&mut self, now: SimTime) {
        self.measured = true;
        self.window_start = now;
        self.next_boundary = SimTime(now.as_micros() + self.window.as_micros());
        self.base = Baselines {
            site_commits: vec![0; self.site_commits.len()],
            ..Baselines::default()
        };
        for c in &mut self.site_commits {
            *c = 0;
        }
    }

    /// Close the final partial window at end of run and hand back the
    /// finished series (buffered mode) plus any streaming error.
    pub(crate) fn finish(
        mut self,
        now: SimTime,
        metrics: &mut Metrics,
        sites: &[Site],
    ) -> std::io::Result<Series> {
        self.close_through(now, metrics, sites);
        if now > self.window_start {
            self.close_at(now, metrics, sites);
        }
        self.into_series()
    }

    fn into_series(mut self) -> std::io::Result<Series> {
        let windows = match self.out {
            Output::Buffer(w) => w,
            Output::Stream {
                ref mut writer,
                format,
                ..
            } => {
                match format {
                    SeriesFormat::Csv => {}
                    SeriesFormat::Json => writer.write_all(json_footer().as_bytes())?,
                }
                writer.flush()?;
                Vec::new()
            }
        };
        Ok(Series {
            meta: self.meta,
            windows,
        })
    }

    /// Build a snapshot from the serial engine's global metrics and
    /// site array, then close the window against it.
    fn close_at(&mut self, end: SimTime, metrics: &mut Metrics, sites: &[Site]) {
        let site_rows = if self.per_site {
            sites
                .iter()
                .enumerate()
                .map(|(i, site)| SiteRow {
                    committed: self.site_commits[i],
                    cpu_q: site.cpu.queued() as u64,
                    data_q: site.data_disks.iter().map(|d| d.queued() as u64).sum(),
                    log_q: match site.batched_logs.as_ref() {
                        Some(bs) => bs.iter().map(|b| b.queued() as u64).sum(),
                        None => site.log_disks.iter().map(|d| d.queued() as u64).sum(),
                    },
                })
                .collect()
        } else {
            Vec::new()
        };
        let snap = SeriesSnapshot {
            committed: metrics.committed.get(),
            aborted_deadlock: metrics.aborted_deadlock.get(),
            aborted_surprise: metrics.aborted_surprise.get(),
            aborted_borrower: metrics.aborted_borrower.get(),
            exec_messages: metrics.exec_messages.get(),
            commit_messages: metrics.commit_messages.get(),
            retransmissions: metrics.retransmissions.get(),
            messages_lost: metrics.messages_lost.get(),
            blocked_area: metrics.blocked_txns.integral_seconds(end),
            live_area: metrics.live_txns.integral_seconds(end),
            site_rows,
        };
        self.close_at_snap(end, &snap);
    }

    /// Close one window whose counters come from `snap` — the shared
    /// core of both the serial and the sharded engine paths.
    fn close_at_snap(&mut self, end: SimTime, snap: &SeriesSnapshot) {
        let lock_wait_s = snap.blocked_area - self.base.blocked_area;
        let live_s = snap.live_area - self.base.live_area;
        let delta = |cur: u64, base: &mut u64| {
            let d = cur - *base;
            *base = cur;
            d
        };
        let per_site = if self.per_site {
            snap.site_rows
                .iter()
                .enumerate()
                .map(|(i, row)| SiteSample {
                    site: i,
                    committed: delta(row.committed, &mut self.base.site_commits[i]),
                    cpu_queued: row.cpu_q,
                    data_disk_queued: row.data_q,
                    log_queued: row.log_q,
                })
                .collect()
        } else {
            Vec::new()
        };
        let w = SeriesWindow {
            index: self.index,
            start: self.window_start,
            end,
            measured: self.measured,
            committed: delta(snap.committed, &mut self.base.committed),
            aborted_deadlock: delta(snap.aborted_deadlock, &mut self.base.aborted_deadlock),
            aborted_surprise: delta(snap.aborted_surprise, &mut self.base.aborted_surprise),
            aborted_borrower: delta(snap.aborted_borrower, &mut self.base.aborted_borrower),
            exec_messages: delta(snap.exec_messages, &mut self.base.exec_messages),
            commit_messages: delta(snap.commit_messages, &mut self.base.commit_messages),
            retransmissions: delta(snap.retransmissions, &mut self.base.retransmissions),
            messages_lost: delta(snap.messages_lost, &mut self.base.messages_lost),
            lock_wait_s,
            live_s,
            block_ratio: if live_s > 0.0 {
                lock_wait_s / live_s
            } else {
                0.0
            },
            per_site,
        };
        self.base.blocked_area = snap.blocked_area;
        self.base.live_area = snap.live_area;
        self.window_start = end;
        self.index += 1;
        self.emit(w);
    }

    fn emit(&mut self, w: SeriesWindow) {
        match &mut self.out {
            Output::Buffer(v) => v.push(w),
            Output::Stream {
                writer,
                format,
                wrote_window,
            } => {
                let chunk = match format {
                    SeriesFormat::Csv => csv_rows(&w),
                    SeriesFormat::Json => {
                        let sep = if *wrote_window { "," } else { "" };
                        format!("{sep}{}", json_window(&w))
                    }
                };
                *wrote_window = true;
                // Streaming failures must not abort the simulation
                // mid-run (the report is still wanted); surface on the
                // final flush in `finish` instead.
                let _ = writer.write_all(chunk.as_bytes());
            }
        }
    }
}

/// A finished, buffered series: the run identity plus every closed
/// window in order.
#[derive(Debug, Clone)]
pub struct Series {
    /// Run identity (protocol, MPL, seed, window width).
    pub meta: SeriesMeta,
    /// Closed windows in time order. Empty when the run streamed to a
    /// writer instead of buffering.
    pub windows: Vec<SeriesWindow>,
}

impl Series {
    /// Render the whole series in `format` — byte-identical to what
    /// streaming mode writes.
    pub fn render(&self, format: SeriesFormat) -> String {
        match format {
            SeriesFormat::Csv => {
                let mut out = csv_header();
                for w in &self.windows {
                    out.push_str(&csv_rows(w));
                }
                out
            }
            SeriesFormat::Json => {
                let mut out = json_header(&self.meta);
                for (i, w) in self.windows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_window(w));
                }
                out.push_str(&json_footer());
                out
            }
        }
    }
}

fn f(v: f64) -> String {
    format!("{v:.6}")
}

fn csv_header() -> String {
    String::from(
        "window,start_s,end_s,measured,site,committed,aborted_deadlock,aborted_surprise,\
         aborted_borrower,throughput,block_ratio,lock_wait_s,live_s,exec_msgs,commit_msgs,\
         retransmits,lost,cpu_q,data_q,log_q\n",
    )
}

fn csv_rows(w: &SeriesWindow) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let (cpu_q, data_q, log_q) = w.per_site.iter().fold((0, 0, 0), |(c, d, l), s| {
        (c + s.cpu_queued, d + s.data_disk_queued, l + s.log_queued)
    });
    let _ = writeln!(
        out,
        "{},{},{},{},all,{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        w.index,
        f(w.start.as_secs_f64()),
        f(w.end.as_secs_f64()),
        w.measured as u8,
        w.committed,
        w.aborted_deadlock,
        w.aborted_surprise,
        w.aborted_borrower,
        f(w.throughput()),
        f(w.block_ratio),
        f(w.lock_wait_s),
        f(w.live_s),
        w.exec_messages,
        w.commit_messages,
        w.retransmissions,
        w.messages_lost,
        cpu_q,
        data_q,
        log_q,
    );
    for s in &w.per_site {
        // Metrics not tracked per site stay empty rather than
        // rendering misleading zeroes.
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},,,,,,,,,,,,{},{},{}",
            w.index,
            f(w.start.as_secs_f64()),
            f(w.end.as_secs_f64()),
            w.measured as u8,
            s.site,
            s.committed,
            s.cpu_queued,
            s.data_disk_queued,
            s.log_queued,
        );
    }
    out
}

fn json_header(meta: &SeriesMeta) -> String {
    format!(
        "{{\"protocol\":\"{}\",\"mpl\":{},\"seed\":{},\"window_s\":{},\"per_site\":{},\
         \"windows\":[",
        meta.protocol,
        meta.mpl,
        meta.seed,
        f(meta.window_s),
        meta.per_site
    )
}

fn json_window(w: &SeriesWindow) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"window\":{},\"start_s\":{},\"end_s\":{},\"measured\":{},\"committed\":{},\
         \"aborted_deadlock\":{},\"aborted_surprise\":{},\"aborted_borrower\":{},\
         \"throughput\":{},\"block_ratio\":{},\"lock_wait_s\":{},\"live_s\":{},\
         \"exec_msgs\":{},\"commit_msgs\":{},\"retransmits\":{},\"lost\":{}",
        w.index,
        f(w.start.as_secs_f64()),
        f(w.end.as_secs_f64()),
        w.measured,
        w.committed,
        w.aborted_deadlock,
        w.aborted_surprise,
        w.aborted_borrower,
        f(w.throughput()),
        f(w.block_ratio),
        f(w.lock_wait_s),
        f(w.live_s),
        w.exec_messages,
        w.commit_messages,
        w.retransmissions,
        w.messages_lost,
    );
    if !w.per_site.is_empty() {
        out.push_str(",\"sites\":[");
        for (i, s) in w.per_site.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"site\":{},\"committed\":{},\"cpu_q\":{},\"data_q\":{},\"log_q\":{}}}",
                s.site, s.committed, s.cpu_queued, s.data_disk_queued, s.log_queued
            );
        }
        out.push(']');
    }
    out.push('}');
    out
}

fn json_footer() -> String {
    String::from("]}")
}
