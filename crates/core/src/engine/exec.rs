//! Execution-phase mechanics: transaction submission, cohort page
//! accesses, lock-grant processing, deadlock detection, and
//! execution-phase aborts (deadlock victims and OPT borrower
//! cascades).

use super::types::{Cohort, CohortH, CohortPhase, DiskJob, Event, MsgKind, Txn, TxnH, TxnPhase};
use super::Simulation;
use crate::config::TransType;
use crate::metrics::AbortReason;
use crate::workload::{SiteId, TxnTemplate};
use distlocks::deadlock::find_cycle;
use distlocks::{Grant, LockMode, RequestOutcome};
use simkernel::SimTime;

impl Simulation {
    // ------------------------------------------------------------------
    // Submission
    // ------------------------------------------------------------------

    /// Submit a transaction at `home`; restarts carry their original
    /// template and birth instant.
    pub(crate) fn submit_txn(
        &mut self,
        home: SiteId,
        template: Option<TxnTemplate>,
        original_birth: Option<SimTime>,
    ) {
        let now = self.cal.now();
        let template = template.unwrap_or_else(|| self.wl.generate(home, &mut self.rng));
        let txn_id = self.alloc_txn_id();
        let n = template.sites.len();

        let th = self.txns.insert(Txn {
            id: txn_id,
            home,
            template,
            birth: now,
            original_birth: original_birth.unwrap_or(now),
            cohorts: Vec::new(),
            phase: TxnPhase::Executing,
            pending_workdone: n,
            pending_votes: 0,
            pending_preacks: 0,
            pending_acks: 0,
            no_vote: false,
            blocked_cohorts: 0,
            next_seq_cohort: 1,
            open_cohorts: n,
            master_done: false,
            coordinator_site: None,
            pending_term_reps: 0,
            acc_pending: Vec::new(),
            accepts_outstanding: 0,
            pending_rep_acks: 0,
            commit_started: None,
            decided_at: None,
            msg_exec: 0,
            msg_commit: 0,
            forced: 0,
            crashed: false,
            crashed_at: None,
        });

        let mut cohort_hs = Vec::with_capacity(n);
        for i in 0..n {
            let (site, n_accesses) = {
                let t = &self.txns[th].template;
                (t.sites[i], t.accesses[i].len())
            };
            let cid = self.alloc_cohort_id();
            // The cohort id is the lock-table registration sequence:
            // globally unique and monotone, so every seq-sorted output
            // of the table reproduces the historical id order.
            let owner = self.sites[site].locks.register_owner(cid);
            let ch = self.cohorts.insert(Cohort {
                id: cid,
                txn: th,
                site,
                acc_index: i,
                n_accesses,
                next_access: 0,
                phase: CohortPhase::Starting,
                lock_owner: owner,
                waiting_lock: false,
                shelf_since: None,
                prepared_since: None,
                req_attempt: 0,
                down: false,
                wd_seen: false,
                vote_seen: false,
                preack_seen: false,
                parting_reply: None,
            });
            let mirror = &mut self.sites[site].owner_cohorts;
            if owner.index() == mirror.len() {
                mirror.push(ch);
            } else {
                mirror[owner.index()] = ch;
            }
            cohort_hs.push(ch);
        }
        self.txns[th].cohorts = cohort_hs.clone();
        self.metrics.live_txns.add(now, 1.0);

        match self.cfg.trans_type {
            TransType::Parallel => {
                // All cohorts started together (§4.1). The local cohort
                // starts directly; remote ones via an initiation message.
                for &ch in &cohort_hs {
                    self.start_cohort(ch, home);
                }
            }
            TransType::Sequential => {
                // Only the first (local) cohort starts; the rest chain
                // off WORKDONE arrivals.
                self.start_cohort(cohort_hs[0], home);
            }
        }
    }

    /// Activate a cohort: directly if it is local to the master,
    /// through an InitCohort message otherwise.
    pub(crate) fn start_cohort(&mut self, cohort: CohortH, master_site: SiteId) {
        let site = self.cohorts[cohort].site;
        if site == master_site {
            self.cohort_begin(cohort);
        } else {
            self.send(master_site, site, MsgKind::InitCohort { cohort });
        }
    }

    /// The cohort starts executing (local activation or InitCohort
    /// arrival).
    pub(crate) fn cohort_begin(&mut self, cohort: CohortH) {
        let Some(c) = self.cohorts.get_mut(cohort) else {
            return;
        };
        debug_assert_eq!(c.phase, CohortPhase::Starting);
        c.phase = CohortPhase::Executing;
        self.cohort_continue(cohort);
    }

    // ------------------------------------------------------------------
    // The access loop
    // ------------------------------------------------------------------

    /// Issue the cohort's next access, or finish its execution phase.
    pub(crate) fn cohort_continue(&mut self, cohort: CohortH) {
        let Some(c) = self.cohorts.get(cohort) else {
            return;
        };
        if c.work_complete() {
            self.cohort_work_finished(cohort);
            return;
        }
        let (site, th, owner, cid) = (c.site, c.txn, c.lock_owner, c.id);
        let access = self.txns[th].template.accesses[c.acc_index][c.next_access];
        let mode = if access.update {
            LockMode::Update
        } else {
            LockMode::Read
        };
        match self.sites[site].locks.request(owner, access.page, mode) {
            RequestOutcome::Granted { borrowed_from } => {
                if !borrowed_from.is_empty() {
                    self.metrics.borrowed_pages.bump();
                    let lenders = borrowed_from.len();
                    let txn = self.txns[th].id;
                    self.trace_event(txn, |at| super::trace::TraceEvent::Borrowed {
                        at,
                        txn,
                        cohort: cid,
                        lenders,
                    });
                }
                self.data_disk_arrive(site, access.page, DiskJob::Read { cohort });
            }
            RequestOutcome::AlreadyHeld => {
                self.data_disk_arrive(site, access.page, DiskJob::Read { cohort });
            }
            RequestOutcome::Blocked => {
                let c = self.cohorts.get_mut(cohort).expect("checked above");
                c.waiting_lock = true;
                self.txn_block(th);
                self.deadlock_check(th);
            }
        }
    }

    /// A page's `PageCPU` processing finished: advance the access cursor.
    pub(crate) fn cohort_page_processed(&mut self, cohort: CohortH) {
        let Some(c) = self.cohorts.get_mut(cohort) else {
            return;
        };
        debug_assert_eq!(c.phase, CohortPhase::Executing);
        c.next_access += 1;
        self.cohort_continue(cohort);
    }

    /// All accesses done: either go on the OPT shelf or report WORKDONE.
    fn cohort_work_finished(&mut self, cohort: CohortH) {
        let th = self.cohorts[cohort].txn;
        // Execution-phase crash window: the cohort finishes its work but
        // goes down before reporting it. Nothing is on stable storage
        // yet, so recovery presumes abort and the whole transaction
        // restarts (the master was still collecting WORKDONEs and could
        // not have moved on).
        if self.exec_crash_roll(cohort, th) {
            return;
        }
        let c = &self.cohorts[cohort];
        let (site, owner) = (c.site, c.lock_owner);
        if self.spec.opt && self.sites[site].locks.has_live_borrows(owner) {
            // §3: "the borrower is 'put on the shelf' ... not allowed to
            // send a WORKDONE message" until every lender commits.
            let now = self.cal.now();
            let c = self.cohorts.get_mut(cohort).expect("exists");
            c.phase = CohortPhase::OnShelf;
            c.shelf_since = Some(now);
            let (th, cid) = (c.txn, c.id);
            let txn = self.txns[th].id;
            self.trace_event(txn, |at| super::trace::TraceEvent::Shelved {
                at,
                txn,
                cohort: cid,
            });
            return;
        }
        self.cohort_send_workdone(cohort);
    }

    /// Send WORKDONE to the master (also the shelf-exit path).
    pub(crate) fn cohort_send_workdone(&mut self, cohort: CohortH) {
        let now = self.cal.now();
        let c = self.cohorts.get_mut(cohort).expect("live cohort");
        let unshelved = c.shelf_since.take();
        if let Some(since) = unshelved {
            self.metrics.shelf_time.record_duration(now.since(since));
        }
        c.phase = CohortPhase::WorkDone;
        let (site, th, cid) = (c.site, c.txn, c.id);
        if unshelved.is_some() {
            let txn = self.txns[th].id;
            self.trace_event(txn, |at| super::trace::TraceEvent::Unshelved {
                at,
                txn,
                cohort: cid,
            });
        }
        let home = self.txns[th].home;
        self.send(site, home, MsgKind::WorkDone { txn: th, cohort });
    }

    // ------------------------------------------------------------------
    // Lock grants
    // ------------------------------------------------------------------

    /// Apply grants returned by a state change of `site`'s lock table:
    /// unblock each waiter and resume its access (the read it was
    /// waiting to issue).
    pub(crate) fn process_grants(&mut self, site: SiteId, grants: Vec<Grant>) {
        for g in grants {
            let ch = self.sites[site].cohort_of(g.owner);
            let Some(c) = self.cohorts.get_mut(ch) else {
                // A grant to a cohort being torn down would be a lock
                // manager bug: release_all cancels waiting requests.
                unreachable!("grant to a dead cohort");
            };
            debug_assert_eq!(c.site, site);
            debug_assert!(c.waiting_lock, "grant to a non-waiting cohort");
            c.waiting_lock = false;
            let (th, cid) = (c.txn, c.id);
            self.txn_unblock(th);
            if !g.borrowed_from.is_empty() {
                self.metrics.borrowed_pages.bump();
                let lenders = g.borrowed_from.len();
                let txn = self.txns[th].id;
                self.trace_event(txn, |at| super::trace::TraceEvent::Borrowed {
                    at,
                    txn,
                    cohort: cid,
                    lenders,
                });
            }
            self.data_disk_arrive(site, g.page, DiskJob::Read { cohort: ch });
        }
    }

    fn txn_block(&mut self, th: TxnH) {
        let now = self.cal.now();
        let t = self.txns.get_mut(th).expect("live txn");
        t.blocked_cohorts += 1;
        if t.blocked_cohorts == 1 {
            self.metrics.blocked_txns.add(now, 1.0);
        }
    }

    fn txn_unblock(&mut self, th: TxnH) {
        let now = self.cal.now();
        let t = self.txns.get_mut(th).expect("live txn");
        debug_assert!(t.blocked_cohorts > 0);
        t.blocked_cohorts -= 1;
        if t.blocked_cohorts == 0 {
            self.metrics.blocked_txns.add(now, -1.0);
        }
    }

    // ------------------------------------------------------------------
    // Deadlock detection (§4.2: immediate, global, youngest victim)
    // ------------------------------------------------------------------

    /// Run cycle detection from `start` and abort youngest victims until
    /// no cycle through `start` remains.
    ///
    /// When engine self-profiling is active the whole check is timed
    /// into `locks_ns` (a subset of `dispatch_ns` — the check runs
    /// inside event dispatch). The unprofiled path takes the first
    /// branch with no `Instant` reads.
    pub(crate) fn deadlock_check(&mut self, start: TxnH) {
        if self.profile.is_none() {
            return self.deadlock_check_inner(start);
        }
        let t0 = std::time::Instant::now();
        self.deadlock_check_inner(start);
        if let Some(p) = self.profile.as_mut() {
            p.locks_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    fn deadlock_check_inner(&mut self, start: TxnH) {
        loop {
            if !self.txns.contains(start) {
                return; // start itself was the victim
            }
            // Allocation-free reachability pre-filter: almost every
            // block is cycle-free, and `find_cycle` (HashMap colouring,
            // per-node successor vectors) is only worth paying when a
            // cycle actually exists. Both compute the same boolean —
            // "is `start` reachable from its own successors" — so the
            // filter never changes which deadlocks are found.
            if !self.cycle_through(start) {
                return;
            }
            let Some(cycle) = find_cycle(start, |t| self.wait_for_successors(t)) else {
                return;
            };
            // Youngest victim: latest birth, ties broken by the external
            // id — every cycle member is live, and external ids are
            // unique, so the maximum is unambiguous.
            let victim = cycle
                .iter()
                .copied()
                .max_by_key(|&th| {
                    self.txns
                        .get(th)
                        .map(|x| (x.birth.as_micros(), x.id))
                        .unwrap_or((0, 0))
                })
                .expect("cycle is non-empty");
            self.abort_txn(victim, AbortReason::Deadlock);
        }
    }

    /// Can `start` reach itself through the wait-for graph? Stamped DFS
    /// over dense transaction slots: no hashing, no allocation after
    /// the scratch buffers reach their high-water marks. Edge set is
    /// identical to [`Self::wait_for_successors`] (self-edges between
    /// cohorts of one transaction excluded); order and duplicates are
    /// irrelevant to reachability.
    fn cycle_through(&mut self, start: TxnH) -> bool {
        let mut seen = std::mem::take(&mut self.dl_seen);
        let mut stack = std::mem::take(&mut self.dl_stack);
        self.dl_stamp = self.dl_stamp.wrapping_add(1);
        if self.dl_stamp == 0 {
            seen.fill(0);
            self.dl_stamp = 1;
        }
        let stamp = self.dl_stamp;
        let mark = |seen: &mut Vec<u32>, t: TxnH| {
            let slot = t.slot();
            if slot >= seen.len() {
                seen.resize(slot + 1, 0);
            }
            let fresh = seen[slot] != stamp;
            seen[slot] = stamp;
            fresh
        };
        stack.clear();
        mark(&mut seen, start);
        stack.push(start);
        let mut found = false;
        'dfs: while let Some(t) = stack.pop() {
            let Some(txn) = self.txns.get(t) else {
                continue;
            };
            for &ch in &txn.cohorts {
                let Some(c) = self.cohorts.get(ch) else {
                    continue;
                };
                if !c.waiting_lock {
                    continue;
                }
                let site = &self.sites[c.site];
                site.locks.for_each_blocker(c.lock_owner, |o| {
                    let bt = self.cohorts[site.cohort_of(o)].txn;
                    if bt == t {
                        return; // self-edge, excluded from the graph
                    }
                    if bt == start {
                        found = true;
                    } else if mark(&mut seen, bt) {
                        stack.push(bt);
                    }
                });
                if found {
                    break 'dfs;
                }
            }
        }
        self.dl_seen = seen;
        self.dl_stack = stack;
        found
    }

    /// Transactions `t` currently waits for, stitched together from the
    /// live per-site blocker sets of its waiting cohorts.
    fn wait_for_successors(&self, t: TxnH) -> Vec<TxnH> {
        let Some(txn) = self.txns.get(t) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &ch in &txn.cohorts {
            let Some(c) = self.cohorts.get(ch) else {
                continue;
            };
            if !c.waiting_lock {
                continue;
            }
            let site = &self.sites[c.site];
            for blocker in site.locks.blockers_of(c.lock_owner) {
                let bt = self.cohorts[site.cohort_of(blocker)].txn;
                if bt != t && !out.contains(&bt) {
                    out.push(bt);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Execution-phase aborts
    // ------------------------------------------------------------------

    /// Abort a transaction during its execution phase (deadlock victim
    /// or borrower cascade) and schedule its restart after the paper's
    /// adaptive delay. The restarted incarnation reuses the template.
    pub(crate) fn abort_txn(&mut self, th: TxnH, reason: AbortReason) {
        let now = self.cal.now();
        let Some(txn) = self.txns.get(th) else {
            return;
        };
        // Only executing transactions can be aborted this way: prepared
        // cohorts never wait for locks and borrowers never reach the
        // voting phase (§3.1).
        assert!(
            matches!(txn.phase, TxnPhase::Executing),
            "execution-phase abort of {} in {:?}",
            txn.id,
            txn.phase
        );
        if txn.blocked_cohorts > 0 {
            self.metrics.blocked_txns.add(now, -1.0);
        }
        let home = txn.home;
        let original_birth = txn.original_birth;
        let txn_ext = txn.id;
        let cohort_hs = txn.cohorts.clone();
        // Tear the cohorts down; collect cascade victims (borrowers of
        // this transaction's cohorts — impossible here since none is
        // prepared, asserted below).
        for ch in cohort_hs {
            let Some(c) = self.cohorts.remove(ch) else {
                continue;
            };
            let locks = &mut self.sites[c.site].locks;
            assert!(
                locks.borrowers_of(c.lock_owner).next().is_none(),
                "an executing cohort cannot have lent data"
            );
            locks.drop_borrower(c.lock_owner);
            let grants = locks.release_all(c.lock_owner);
            locks.unregister(c.lock_owner);
            self.process_grants(c.site, grants);
        }
        let txn = self.txns.remove(th).expect("checked above");
        self.metrics.live_txns.add(now, -1.0);
        self.metrics.record_abort(reason);
        self.trace_event(txn_ext, |at| super::trace::TraceEvent::Aborted {
            at,
            txn: txn_ext,
        });
        let delay = self.restart_delay();
        self.cal.schedule_in(
            delay,
            Event::Submit {
                home,
                template: Some(Box::new(txn.template)),
                original_birth: Some(original_birth),
            },
        );
    }

    // ------------------------------------------------------------------
    // Message dispatch
    // ------------------------------------------------------------------

    pub(crate) fn handle_message(&mut self, msg: super::types::Message) {
        let attempt = msg.attempt;
        match msg.kind {
            MsgKind::InitCohort { cohort } => self.cohort_begin(cohort),
            MsgKind::WorkDone { txn, cohort } => self.master_workdone(txn, cohort),
            MsgKind::Prepare { cohort } => self.cohort_prepare(cohort, attempt),
            MsgKind::Vote { txn, cohort, vote } => self.master_vote(txn, cohort, vote),
            MsgKind::PreCommit { cohort } => self.cohort_precommit(cohort, attempt),
            MsgKind::PreAck { txn, cohort } => self.master_preack(txn, cohort),
            MsgKind::Decision { cohort, commit } => self.cohort_decision(cohort, commit, attempt),
            MsgKind::Ack { txn, cohort } => self.master_ack(txn, cohort),
            MsgKind::TermStateReq { cohort } => self.cohort_term_state_req(cohort),
            MsgKind::TermStateRep { txn } => self.coordinator_term_state_rep(txn),
            MsgKind::ChainPrepare { cohort } => self.cohort_prepare(cohort, attempt),
            MsgKind::ChainDecision { cohort, commit } => {
                self.cohort_decision(cohort, commit, attempt)
            }
            MsgKind::ChainBack { txn, commit } => self.master_chain_back(txn, commit),
            MsgKind::PaxosVote { txn, acc, yes, .. } => self.acceptor_vote(txn, acc, yes),
            MsgKind::Accepted { txn, commit } => self.master_accepted(txn, commit),
            MsgKind::RepDecision { txn, rep } => self.replica_decision(txn, rep),
            MsgKind::RepAck { txn } => self.master_rep_ack(txn),
            MsgKind::AccStateReq { txn, acc } => self.acceptor_state_req(txn, acc),
            MsgKind::AccStateRep { txn } => self.leader_acc_state_rep(txn),
        }
    }

    /// Dispatch for completed forced log writes.
    pub(crate) fn handle_log_done(&mut self, work: super::types::LogWork) {
        use super::types::LogWork::*;
        match work {
            CohortPrepare { cohort } => self.cohort_prepared(cohort),
            CohortNoVoteAbort { cohort } => self.cohort_no_vote_finish(cohort),
            CohortPrecommit { cohort } => self.cohort_precommitted(cohort),
            CohortDecision { cohort, commit } => self.cohort_finish_decision(cohort, commit),
            MasterCollecting { txn } => self.master_collected(txn),
            MasterPrecommit { txn } => self.master_precommit_logged(txn),
            MasterDecision { txn, commit } => self.master_decision_logged(txn, commit),
            AcceptorBundle { txn, acc } => self.acceptor_bundle_logged(txn, acc),
            ReplicaDecision { txn, rep } => self.replica_decision_logged(txn, rep),
        }
    }

    /// Deferred write-back of a committed cohort's updates: the pages go
    /// to the data disks asynchronously; nothing waits on them (§4.1).
    pub(crate) fn enqueue_deferred_writes(&mut self, cohort_accesses: &[(SiteId, u64)]) {
        if !self.cfg.model_deferred_writes {
            return;
        }
        for &(site, page) in cohort_accesses {
            self.data_disk_arrive(site, page, DiskJob::AsyncWrite);
        }
    }
}
