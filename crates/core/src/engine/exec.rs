//! Execution-phase mechanics: transaction submission, cohort page
//! accesses, lock-grant processing, deadlock detection, and
//! execution-phase aborts (deadlock victims and OPT borrower
//! cascades).

use super::types::{Cohort, CohortId, CohortPhase, DiskJob, Event, MsgKind, Txn, TxnId, TxnPhase};
use super::Simulation;
use crate::config::TransType;
use crate::metrics::AbortReason;
use crate::workload::{SiteId, TxnTemplate};
use distlocks::deadlock::{find_cycle, youngest_victim};
use distlocks::{Grant, LockMode, RequestOutcome};
use simkernel::SimTime;

impl Simulation {
    // ------------------------------------------------------------------
    // Submission
    // ------------------------------------------------------------------

    /// Submit a transaction at `home`; restarts carry their original
    /// template and birth instant.
    pub(crate) fn submit_txn(
        &mut self,
        home: SiteId,
        template: Option<TxnTemplate>,
        original_birth: Option<SimTime>,
    ) {
        let now = self.cal.now();
        let template = template.unwrap_or_else(|| self.wl.generate(home, &mut self.rng));
        let txn_id = self.alloc_txn_id();
        let n = template.sites.len();

        let mut cohort_ids = Vec::with_capacity(n);
        for (i, &site) in template.sites.iter().enumerate() {
            let cid = self.alloc_cohort_id();
            cohort_ids.push(cid);
            self.cohorts.insert(
                cid,
                Cohort {
                    id: cid,
                    txn: txn_id,
                    site,
                    accesses: template.accesses[i].clone(),
                    next_access: 0,
                    phase: CohortPhase::Starting,
                    waiting_lock: false,
                    shelf_since: None,
                    prepared_since: None,
                },
            );
        }

        self.txns.insert(
            txn_id,
            Txn {
                id: txn_id,
                home,
                template,
                birth: now,
                original_birth: original_birth.unwrap_or(now),
                cohorts: cohort_ids.clone(),
                phase: TxnPhase::Executing,
                pending_workdone: n,
                pending_votes: 0,
                pending_preacks: 0,
                pending_acks: 0,
                no_vote: false,
                blocked_cohorts: 0,
                next_seq_cohort: 1,
                open_cohorts: n,
                master_done: false,
                coordinator_site: None,
                pending_term_reps: 0,
                commit_started: None,
                decided_at: None,
                msg_exec: 0,
                msg_commit: 0,
                forced: 0,
                crashed: false,
                crashed_at: None,
            },
        );
        self.metrics.live_txns.add(now, 1.0);

        match self.cfg.trans_type {
            TransType::Parallel => {
                // All cohorts started together (§4.1). The local cohort
                // starts directly; remote ones via an initiation message.
                for &cid in &cohort_ids {
                    self.start_cohort(cid, home);
                }
            }
            TransType::Sequential => {
                // Only the first (local) cohort starts; the rest chain
                // off WORKDONE arrivals.
                self.start_cohort(cohort_ids[0], home);
            }
        }
    }

    /// Activate a cohort: directly if it is local to the master,
    /// through an InitCohort message otherwise.
    pub(crate) fn start_cohort(&mut self, cohort: CohortId, master_site: SiteId) {
        let site = self.cohorts[&cohort].site;
        if site == master_site {
            self.cohort_begin(cohort);
        } else {
            self.send(master_site, site, MsgKind::InitCohort { cohort });
        }
    }

    /// The cohort starts executing (local activation or InitCohort
    /// arrival).
    pub(crate) fn cohort_begin(&mut self, cohort: CohortId) {
        let Some(c) = self.cohorts.get_mut(&cohort) else {
            return;
        };
        debug_assert_eq!(c.phase, CohortPhase::Starting);
        c.phase = CohortPhase::Executing;
        self.cohort_continue(cohort);
    }

    // ------------------------------------------------------------------
    // The access loop
    // ------------------------------------------------------------------

    /// Issue the cohort's next access, or finish its execution phase.
    pub(crate) fn cohort_continue(&mut self, cohort: CohortId) {
        let Some(c) = self.cohorts.get(&cohort) else {
            return;
        };
        if c.work_complete() {
            self.cohort_work_finished(cohort);
            return;
        }
        let access = c.accesses[c.next_access];
        let site = c.site;
        let txn = c.txn;
        let mode = if access.update {
            LockMode::Update
        } else {
            LockMode::Read
        };
        match self.sites[site].locks.request(cohort, access.page, mode) {
            RequestOutcome::Granted { borrowed_from } => {
                if !borrowed_from.is_empty() {
                    self.metrics.borrowed_pages.bump();
                    let lenders = borrowed_from.len();
                    self.trace_event(txn, |at| super::trace::TraceEvent::Borrowed {
                        at,
                        txn,
                        cohort,
                        lenders,
                    });
                }
                self.data_disk_arrive(site, access.page, DiskJob::Read { cohort });
            }
            RequestOutcome::AlreadyHeld => {
                self.data_disk_arrive(site, access.page, DiskJob::Read { cohort });
            }
            RequestOutcome::Blocked { .. } => {
                let c = self.cohorts.get_mut(&cohort).expect("checked above");
                c.waiting_lock = true;
                self.txn_block(txn);
                self.deadlock_check(txn);
            }
        }
    }

    /// A page's `PageCPU` processing finished: advance the access cursor.
    pub(crate) fn cohort_page_processed(&mut self, cohort: CohortId) {
        let Some(c) = self.cohorts.get_mut(&cohort) else {
            return;
        };
        debug_assert_eq!(c.phase, CohortPhase::Executing);
        c.next_access += 1;
        self.cohort_continue(cohort);
    }

    /// All accesses done: either go on the OPT shelf or report WORKDONE.
    fn cohort_work_finished(&mut self, cohort: CohortId) {
        let c = &self.cohorts[&cohort];
        let site = c.site;
        if self.spec.opt && self.sites[site].locks.has_live_borrows(cohort) {
            // §3: "the borrower is 'put on the shelf' ... not allowed to
            // send a WORKDONE message" until every lender commits.
            let now = self.cal.now();
            let c = self.cohorts.get_mut(&cohort).expect("exists");
            c.phase = CohortPhase::OnShelf;
            c.shelf_since = Some(now);
            let txn = c.txn;
            self.trace_event(txn, |at| super::trace::TraceEvent::Shelved {
                at,
                txn,
                cohort,
            });
            return;
        }
        self.cohort_send_workdone(cohort);
    }

    /// Send WORKDONE to the master (also the shelf-exit path).
    pub(crate) fn cohort_send_workdone(&mut self, cohort: CohortId) {
        let now = self.cal.now();
        let c = self.cohorts.get_mut(&cohort).expect("live cohort");
        let unshelved = c.shelf_since.take();
        if let Some(since) = unshelved {
            self.metrics.shelf_time.record_duration(now.since(since));
        }
        c.phase = CohortPhase::WorkDone;
        let (site, txn_id) = (c.site, c.txn);
        if unshelved.is_some() {
            self.trace_event(txn_id, |at| super::trace::TraceEvent::Unshelved {
                at,
                txn: txn_id,
                cohort,
            });
        }
        let home = self.txns[&txn_id].home;
        self.send(site, home, MsgKind::WorkDone { txn: txn_id });
    }

    // ------------------------------------------------------------------
    // Lock grants
    // ------------------------------------------------------------------

    /// Apply grants returned by a lock-table state change: unblock each
    /// waiter and resume its access (the read it was waiting to issue).
    pub(crate) fn process_grants(&mut self, grants: Vec<Grant>) {
        for g in grants {
            let Some(c) = self.cohorts.get_mut(&g.owner) else {
                // A grant to a cohort being torn down would be a lock
                // manager bug: release_all cancels waiting requests.
                unreachable!("grant to a dead cohort {}", g.owner);
            };
            debug_assert!(c.waiting_lock, "grant to a non-waiting cohort");
            c.waiting_lock = false;
            let (txn, site) = (c.txn, c.site);
            self.txn_unblock(txn);
            if !g.borrowed_from.is_empty() {
                self.metrics.borrowed_pages.bump();
                let (cohort, lenders) = (g.owner, g.borrowed_from.len());
                self.trace_event(txn, |at| super::trace::TraceEvent::Borrowed {
                    at,
                    txn,
                    cohort,
                    lenders,
                });
            }
            self.data_disk_arrive(site, g.page, DiskJob::Read { cohort: g.owner });
        }
    }

    fn txn_block(&mut self, txn: TxnId) {
        let now = self.cal.now();
        let t = self.txns.get_mut(&txn).expect("live txn");
        t.blocked_cohorts += 1;
        if t.blocked_cohorts == 1 {
            self.metrics.blocked_txns.add(now, 1.0);
        }
    }

    fn txn_unblock(&mut self, txn: TxnId) {
        let now = self.cal.now();
        let t = self.txns.get_mut(&txn).expect("live txn");
        debug_assert!(t.blocked_cohorts > 0);
        t.blocked_cohorts -= 1;
        if t.blocked_cohorts == 0 {
            self.metrics.blocked_txns.add(now, -1.0);
        }
    }

    // ------------------------------------------------------------------
    // Deadlock detection (§4.2: immediate, global, youngest victim)
    // ------------------------------------------------------------------

    /// Run cycle detection from `start` and abort youngest victims until
    /// no cycle through `start` remains.
    pub(crate) fn deadlock_check(&mut self, start: TxnId) {
        loop {
            if !self.txns.contains_key(&start) {
                return; // start itself was the victim
            }
            let Some(cycle) = find_cycle(start, |t| self.wait_for_successors(t)) else {
                return;
            };
            let victim = youngest_victim(&cycle, |t| {
                self.txns.get(&t).map(|x| x.birth.as_micros()).unwrap_or(0)
            });
            self.abort_txn(victim, AbortReason::Deadlock);
        }
    }

    /// Transactions `t` currently waits for, stitched together from the
    /// live per-site blocker sets of its waiting cohorts.
    fn wait_for_successors(&self, t: TxnId) -> Vec<TxnId> {
        let Some(txn) = self.txns.get(&t) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &cid in &txn.cohorts {
            let Some(c) = self.cohorts.get(&cid) else {
                continue;
            };
            if !c.waiting_lock {
                continue;
            }
            for blocker in self.sites[c.site].locks.blockers_of(cid) {
                let bt = self.cohorts[&blocker].txn;
                if bt != t && !out.contains(&bt) {
                    out.push(bt);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Execution-phase aborts
    // ------------------------------------------------------------------

    /// Abort a transaction during its execution phase (deadlock victim
    /// or borrower cascade) and schedule its restart after the paper's
    /// adaptive delay. The restarted incarnation reuses the template.
    pub(crate) fn abort_txn(&mut self, txn_id: TxnId, reason: AbortReason) {
        let now = self.cal.now();
        let Some(txn) = self.txns.get(&txn_id) else {
            return;
        };
        // Only executing transactions can be aborted this way: prepared
        // cohorts never wait for locks and borrowers never reach the
        // voting phase (§3.1).
        assert!(
            matches!(txn.phase, TxnPhase::Executing),
            "execution-phase abort of {txn_id} in {:?}",
            txn.phase
        );
        if txn.blocked_cohorts > 0 {
            self.metrics.blocked_txns.add(now, -1.0);
        }
        let home = txn.home;
        let original_birth = txn.original_birth;
        let cohort_ids = txn.cohorts.clone();
        // Tear the cohorts down; collect cascade victims (borrowers of
        // this transaction's cohorts — impossible here since none is
        // prepared, asserted below).
        for cid in cohort_ids {
            let Some(c) = self.cohorts.remove(&cid) else {
                continue;
            };
            let locks = &mut self.sites[c.site].locks;
            assert!(
                locks.borrowers_of(cid).next().is_none(),
                "an executing cohort cannot have lent data"
            );
            locks.drop_borrower(cid);
            let grants = locks.release_all(cid);
            self.process_grants(grants);
        }
        let txn = self.txns.remove(&txn_id).expect("checked above");
        self.metrics.live_txns.add(now, -1.0);
        self.metrics.record_abort(reason);
        self.trace_event(txn_id, |at| super::trace::TraceEvent::Aborted {
            at,
            txn: txn_id,
        });
        let delay = self.restart_delay();
        self.cal.schedule_in(
            delay,
            Event::Submit {
                home,
                template: Some(Box::new(txn.template)),
                original_birth: Some(original_birth),
            },
        );
    }

    // ------------------------------------------------------------------
    // Message dispatch
    // ------------------------------------------------------------------

    pub(crate) fn handle_message(&mut self, msg: super::types::Message) {
        match msg.kind {
            MsgKind::InitCohort { cohort } => self.cohort_begin(cohort),
            MsgKind::WorkDone { txn } => self.master_workdone(txn),
            MsgKind::Prepare { cohort } => self.cohort_prepare(cohort),
            MsgKind::Vote { txn, vote } => self.master_vote(txn, vote),
            MsgKind::PreCommit { cohort } => self.cohort_precommit(cohort),
            MsgKind::PreAck { txn } => self.master_preack(txn),
            MsgKind::Decision { cohort, commit } => self.cohort_decision(cohort, commit),
            MsgKind::Ack { txn } => self.master_ack(txn),
            MsgKind::TermStateReq { cohort } => self.cohort_term_state_req(cohort),
            MsgKind::TermStateRep { txn } => self.coordinator_term_state_rep(txn),
            MsgKind::ChainPrepare { cohort } => self.cohort_prepare(cohort),
            MsgKind::ChainDecision { cohort, commit } => self.cohort_decision(cohort, commit),
            MsgKind::ChainBack { txn, commit } => self.master_chain_back(txn, commit),
        }
    }

    /// Dispatch for completed forced log writes.
    pub(crate) fn handle_log_done(&mut self, work: super::types::LogWork) {
        use super::types::LogWork::*;
        match work {
            CohortPrepare { cohort } => self.cohort_prepared(cohort),
            CohortNoVoteAbort { cohort } => self.cohort_no_vote_finish(cohort),
            CohortPrecommit { cohort } => self.cohort_precommitted(cohort),
            CohortDecision { cohort, commit } => self.cohort_finish_decision(cohort, commit),
            MasterCollecting { txn } => self.master_collected(txn),
            MasterPrecommit { txn } => self.master_precommit_logged(txn),
            MasterDecision { txn, commit } => self.master_decided(txn, commit),
        }
    }

    /// Deferred write-back of a committed cohort's updates: the pages go
    /// to the data disks asynchronously; nothing waits on them (§4.1).
    pub(crate) fn enqueue_deferred_writes(&mut self, cohort_accesses: &[(SiteId, u64)]) {
        if !self.cfg.model_deferred_writes {
            return;
        }
        for &(site, page) in cohort_accesses {
            self.data_disk_arrive(site, page, DiskJob::AsyncWrite);
        }
    }
}
