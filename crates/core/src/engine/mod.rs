//! The distributed-DBMS simulation engine.
//!
//! One [`Simulation`] is one run of the closed queueing model of §4 of
//! the paper under a chosen commit protocol: `MPL` transactions per
//! site, master/cohort execution, strict 2PL with immediate global
//! deadlock detection, and the full message/forced-write choreography
//! of the selected protocol (2PC, PA, PC, 3PC, the OPT variants, or
//! the CENT/DPCC baselines).
//!
//! The engine is event-driven and deterministic: given the same
//! configuration, protocol, and seed it reproduces the same metrics
//! bit for bit.

pub mod chrome;
mod commit;
mod exec;
pub mod fold;
mod glog;
mod par;
pub mod series;
#[cfg(test)]
mod tests;
pub mod trace;
mod types;

pub use chrome::{chrome_trace_json, ChromeStreamSink, ChromeWriter};
pub use fold::FoldSink;
pub use series::{Series, SeriesConfig, SeriesFormat, SeriesMeta, SeriesWindow, SiteSample};
pub use trace::{LogLabel, MsgLabel, Trace, TraceEvent, TraceSink};
pub use types::{CohortId, TxnId};

use crate::config::{ConfigError, ResourceMode, SystemConfig};
use crate::metrics::{
    LatencySummary, Metrics, PhaseLatencies, ResourceReport, ResourceStats, SimReport, Utilizations,
};
use crate::workload::{SiteId, WorkloadGenerator};
use commitproto::{ProtocolSpec, Routing, SpecTable};
use distlocks::{LockManager, OwnerId};
use simkernel::stats::Tally;
use simkernel::{Calendar, JobClass, SimDuration, SimRng, SimTime, Slab, Station};
use types::{Cohort, CohortH, CpuJob, DiskJob, Event, LogWork, Message, MsgKind, Retry, Txn, TxnH};

/// Accumulates per-station observations into one [`ResourceStats`] for
/// a resource class *within one site* (utilizations/queue depths
/// averaged across the class's stations, max depth taken over them,
/// occupancy histograms merged — valid because each is a time
/// integral).
#[derive(Default)]
struct ResourceAcc {
    util: f64,
    queue: f64,
    wait_s: f64,
    max_queue: usize,
    occupancy: simkernel::stats::OccupancyHistogram,
    n: usize,
}

impl ResourceAcc {
    fn push(
        &mut self,
        util: f64,
        queue: f64,
        wait_s: f64,
        max_queue: usize,
        occupancy: &simkernel::stats::OccupancyHistogram,
    ) {
        self.util += util;
        self.queue += queue;
        self.wait_s += wait_s;
        self.max_queue = self.max_queue.max(max_queue);
        self.occupancy.merge(occupancy);
        self.n += 1;
    }

    fn stats(&self) -> ResourceStats {
        let n = self.n.max(1) as f64;
        ResourceStats {
            utilization: self.util / n,
            mean_queue_depth: self.queue / n,
            max_queue_depth: self.max_queue as u64,
            mean_wait_s: self.wait_s / n,
            queue_depth_p50: self.occupancy.p50() as f64,
            queue_depth_p90: self.occupancy.p90() as f64,
            queue_depth_p99: self.occupancy.p99() as f64,
        }
    }
}

/// One site's physical resources and lock table.
pub(crate) struct Site {
    pub cpu: Station<CpuJob>,
    pub data_disks: Vec<Station<DiskJob>>,
    pub log_disks: Vec<Station<LogWork>>,
    /// Group-commit batchers, one per log disk, when the optimization
    /// is enabled (the plain `log_disks` stations sit unused then).
    pub batched_logs: Option<Vec<glog::BatchedLog>>,
    pub locks: LockManager,
    /// Mirror of the lock table's owner registry: owner slot → cohort
    /// handle, maintained in lock-step with `register_owner` calls.
    pub owner_cohorts: Vec<CohortH>,
    next_log_disk: usize,
}

impl Site {
    /// The cohort registered at lock-owner slot `o`. Valid only while
    /// `o` is registered; the engine only resolves owners surfaced by
    /// the lock table (grants, blockers, borrow edges), which are
    /// always live or recently live — a recycled slot yields a stale
    /// cohort handle that safely misses on slab lookup.
    pub(crate) fn cohort_of(&self, o: OwnerId) -> CohortH {
        self.owner_cohorts[o.index()]
    }
}

/// A run of the simulator. Construct and execute with [`Simulation::run`].
pub struct Simulation {
    pub(crate) cfg: SystemConfig,
    pub(crate) spec: ProtocolSpec,
    /// The declarative behaviour table of `spec.base` — the engine is a
    /// generic interpreter of these columns; no code path matches on
    /// the protocol name.
    pub(crate) table: SpecTable,
    pub(crate) wl: WorkloadGenerator,
    pub(crate) cal: Calendar<Event>,
    pub(crate) rng: SimRng,
    pub(crate) sites: Vec<Site>,
    pub(crate) txns: Slab<TxnH, Txn>,
    pub(crate) cohorts: Slab<CohortH, Cohort>,
    next_txn_id: TxnId,
    next_cohort_id: CohortId,
    pub(crate) metrics: Metrics,
    /// All-time committed response times — drives the restart-delay
    /// heuristic ("the length of the delay is equal to the average
    /// transaction response time", §4). Never reset.
    pub(crate) resp_estimate: Tally,
    total_commits: u64,
    commit_target: u64,
    warmup_target: u64,
    done: bool,
    truncated: bool,
    pages_per_site_eff: u64,
    /// Per-site-pair wire latency (flattened row-major `n×n`), built
    /// once from the topology's dedicated RNG stream. `None` without a
    /// topology; zero entries take the classic instantaneous-switch
    /// path, so a degenerate all-zero matrix is byte-identical to no
    /// topology at all.
    wire_latency: Option<Vec<SimDuration>>,
    /// Deadlock pre-filter scratch: visit stamps indexed by txn slab
    /// slot, the current stamp, and a reusable DFS work stack. Kept on
    /// the simulation so the per-block reachability check allocates
    /// nothing in steady state.
    dl_seen: Vec<u32>,
    dl_stamp: u32,
    dl_stack: Vec<TxnH>,
    /// Optional trace-event consumer; events are recorded for
    /// transactions with id ≤ `trace_txn_limit`.
    sink: Option<Box<dyn TraceSink>>,
    trace_txn_limit: TxnId,
    /// Optional windowed-series recorder (the time-series sink family).
    series: Option<Box<series::SeriesRecorder>>,
    /// Cached copy of the recorder's next window boundary so the event
    /// loop pays one integer compare per event when no recorder is
    /// installed (`SimTime(u64::MAX)` then).
    series_boundary: SimTime,
    /// Optional wall-clock self-profile (see [`EngineProfile`]);
    /// enabled only by the bench harness.
    profile: Option<Box<EngineProfile>>,
}

/// Wall-clock section counters for the engine's own hot path, measured
/// with `std::time::Instant` around the main loop's sections. Wall
/// time never feeds back into simulated time, so profiling cannot
/// perturb a run — but the per-event timer reads are not free, which
/// is why only `distcommit bench` enables it (on a dedicated cell,
/// keeping the trajectory grid unprofiled and comparable).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineProfile {
    /// Events dispatched while profiling.
    pub events: u64,
    /// Nanoseconds popping the calendar.
    pub calendar_ns: u64,
    /// Nanoseconds dispatching events (everything below the calendar,
    /// minus the separately counted sections).
    pub dispatch_ns: u64,
    /// Nanoseconds in deadlock detection (the lock-table scan).
    pub locks_ns: u64,
    /// Nanoseconds closing series windows (the sink's on-path cost).
    pub series_ns: u64,
    /// Nanoseconds routing cross-shard mailboxes at window barriers
    /// (parallel engine only; zero on the serial path).
    pub mailbox_ns: u64,
    /// Nanoseconds of remaining barrier bookkeeping — window sizing,
    /// doom teardown, run control (parallel engine only).
    pub barrier_ns: u64,
}

impl EngineProfile {
    /// Total profiled wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.calendar_ns + self.dispatch_ns + self.series_ns + self.mailbox_ns + self.barrier_ns
    }
}

// The experiment runner fans independent runs out over worker threads:
// everything a worker receives (configuration, protocol spec) and
// returns (the report) must cross thread boundaries, and a whole
// `Simulation` must be constructible on a worker. Compile-time
// assertions so a non-thread-safe field can never sneak in unnoticed.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    const fn send<T: Send>() {}
    send_sync::<SystemConfig>();
    send_sync::<ProtocolSpec>();
    send_sync::<SimReport>();
    send::<Simulation>();
};

impl Simulation {
    /// Run `cfg` under `spec` with the given RNG `seed` and return the
    /// measured report.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid or the spec is
    /// meaningless (OPT over a baseline).
    pub fn run(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
    ) -> Result<SimReport, ConfigError> {
        let mut sim = Simulation::new(cfg, spec, seed)?;
        sim.execute();
        Ok(sim.report())
    }

    /// Like [`Simulation::run`], but additionally records a protocol
    /// [`Trace`] of every message, forced write and milestone for the
    /// first `traced_txns` transactions submitted. Tracing does not
    /// perturb the simulation: the report is identical to an untraced
    /// run with the same inputs.
    pub fn run_traced(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        traced_txns: u64,
    ) -> Result<(SimReport, Trace), ConfigError> {
        Self::run_with_sink(cfg, spec, seed, traced_txns, Trace::default())
    }

    /// Like [`Simulation::run`], but feeds every trace event of the
    /// first `traced_txns` transactions to `sink` as the run progresses
    /// and hands the sink back with the report. This is the streaming
    /// counterpart of [`Simulation::run_traced`]: the engine holds no
    /// event buffer of its own, so memory use is whatever the sink
    /// retains — bounded for [`chrome::ChromeStreamSink`] and
    /// [`fold::FoldSink`], the full event vector for [`Trace`].
    ///
    /// Observing a run does not perturb it: the report is identical to
    /// an untraced run with the same inputs.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid or the spec is
    /// meaningless (OPT over a baseline).
    pub fn run_with_sink<S: TraceSink>(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        traced_txns: u64,
        sink: S,
    ) -> Result<(SimReport, S), ConfigError> {
        let mut sim = Simulation::new(cfg, spec, seed)?;
        sim.sink = Some(Box::new(sink));
        sim.trace_txn_limit = traced_txns;
        sim.execute();
        let mut boxed = sim.sink.take().expect("sink installed above");
        boxed.finish();
        let any: Box<dyn std::any::Any> = boxed;
        let sink = *any.downcast::<S>().expect("sink type is preserved");
        Ok((sim.report(), sink))
    }

    /// Like [`Simulation::run`], but also collects a windowed metric
    /// time series (buffered in memory; see
    /// [`Simulation::run_with_series_stream`] for the bounded-memory
    /// variant). Recording does not perturb the run: the report is
    /// bit-identical to a plain run with the same inputs.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid or the spec is
    /// meaningless (OPT over a baseline).
    pub fn run_with_series(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        series_cfg: &SeriesConfig,
    ) -> Result<(SimReport, Series), ConfigError> {
        let mut sim = Simulation::new(cfg, spec, seed)?;
        let rec = series::SeriesRecorder::new_buffered(
            series_cfg,
            sim.series_meta(seed, series_cfg),
            sim.sites.len(),
        );
        sim.install_series(rec);
        sim.execute();
        let series = sim
            .finish_series()
            .expect("buffered series recording cannot fail");
        Ok((sim.report(), series))
    }

    /// Like [`Simulation::run_with_series`], but streams each closed
    /// window to `writer` as the run progresses instead of buffering —
    /// the series counterpart of the Chrome-JSON streamer, and
    /// byte-identical to rendering the buffered series in `format`.
    ///
    /// # Errors
    /// [`series::SeriesRunError::Config`] for an invalid configuration,
    /// [`series::SeriesRunError::Io`] when the writer fails.
    pub fn run_with_series_stream(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        series_cfg: &SeriesConfig,
        writer: Box<dyn std::io::Write + Send>,
        format: SeriesFormat,
    ) -> Result<SimReport, series::SeriesRunError> {
        let mut sim = Simulation::new(cfg, spec, seed)?;
        let rec = series::SeriesRecorder::new_streaming(
            series_cfg,
            sim.series_meta(seed, series_cfg),
            sim.sites.len(),
            writer,
            format,
        )?;
        sim.install_series(rec);
        sim.execute();
        sim.finish_series()?;
        Ok(sim.report())
    }

    /// Like [`Simulation::run`], but with wall-clock self-profiling of
    /// the engine's hot-path sections, optionally with a series
    /// recorder installed (buffered and discarded) so the sink's
    /// on-path cost shows up in the `series_ns` section. Used by
    /// `distcommit bench`.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid or the spec is
    /// meaningless (OPT over a baseline).
    pub fn run_profiled(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        series_cfg: Option<&SeriesConfig>,
    ) -> Result<(SimReport, EngineProfile), ConfigError> {
        let mut sim = Simulation::new(cfg, spec, seed)?;
        if let Some(scfg) = series_cfg {
            let rec = series::SeriesRecorder::new_buffered(
                scfg,
                sim.series_meta(seed, scfg),
                sim.sites.len(),
            );
            sim.install_series(rec);
        }
        sim.profile = Some(Box::default());
        sim.execute();
        if sim.series.is_some() {
            sim.finish_series()
                .expect("buffered series recording cannot fail");
        }
        let profile = *sim.profile.take().expect("profile installed above");
        Ok((sim.report(), profile))
    }

    /// Like [`Simulation::run`], but dispatches to the site-sharded
    /// parallel engine when `cfg.shards` requests it and the
    /// configuration is inside the parallel envelope (a WAN topology
    /// with at least two regions and a positive cross-region latency).
    /// With `shards == 0` — the default — this is exactly
    /// [`Simulation::run`]. All CLI entry points route through the
    /// `run_auto` family.
    ///
    /// # Errors
    /// Everything [`Simulation::run`] rejects, plus a typed error when
    /// `--shards` is combined with semantics the parallel interpreter
    /// cannot honour (message loss, crash-takeover protocols under
    /// master crashes, chained 2PC, DPCC).
    pub fn run_auto(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
    ) -> Result<SimReport, ConfigError> {
        if par::wants_parallel(cfg, spec, seed)? {
            par::ParSim::run(cfg, spec, seed)
        } else {
            Simulation::run(cfg, spec, seed)
        }
    }

    /// [`Simulation::run_traced`] with the [`Simulation::run_auto`]
    /// engine dispatch.
    ///
    /// # Errors
    /// As [`Simulation::run_auto`].
    pub fn run_auto_traced(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        traced_txns: u64,
    ) -> Result<(SimReport, Trace), ConfigError> {
        Self::run_auto_with_sink(cfg, spec, seed, traced_txns, Trace::default())
    }

    /// [`Simulation::run_with_sink`] with the [`Simulation::run_auto`]
    /// engine dispatch.
    ///
    /// # Errors
    /// As [`Simulation::run_auto`].
    pub fn run_auto_with_sink<S: TraceSink>(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        traced_txns: u64,
        sink: S,
    ) -> Result<(SimReport, S), ConfigError> {
        if par::wants_parallel(cfg, spec, seed)? {
            par::ParSim::run_with_sink(cfg, spec, seed, traced_txns, sink)
        } else {
            Simulation::run_with_sink(cfg, spec, seed, traced_txns, sink)
        }
    }

    /// [`Simulation::run_with_series`] with the
    /// [`Simulation::run_auto`] engine dispatch.
    ///
    /// # Errors
    /// As [`Simulation::run_auto`].
    pub fn run_auto_with_series(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        series_cfg: &SeriesConfig,
    ) -> Result<(SimReport, Series), ConfigError> {
        if par::wants_parallel(cfg, spec, seed)? {
            par::ParSim::run_with_series(cfg, spec, seed, series_cfg)
        } else {
            Simulation::run_with_series(cfg, spec, seed, series_cfg)
        }
    }

    /// [`Simulation::run_with_series_stream`] with the
    /// [`Simulation::run_auto`] engine dispatch.
    ///
    /// # Errors
    /// As [`Simulation::run_with_series_stream`], plus the parallel
    /// envelope rejections of [`Simulation::run_auto`].
    pub fn run_auto_with_series_stream(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        series_cfg: &SeriesConfig,
        writer: Box<dyn std::io::Write + Send>,
        format: SeriesFormat,
    ) -> Result<SimReport, series::SeriesRunError> {
        if par::wants_parallel(cfg, spec, seed)? {
            par::ParSim::run_with_series_stream(cfg, spec, seed, series_cfg, writer, format)
        } else {
            Simulation::run_with_series_stream(cfg, spec, seed, series_cfg, writer, format)
        }
    }

    /// [`Simulation::run_profiled`] with the [`Simulation::run_auto`]
    /// engine dispatch. On the parallel path the profile additionally
    /// fills the `mailbox_ns` and `barrier_ns` sections.
    ///
    /// # Errors
    /// As [`Simulation::run_auto`].
    pub fn run_auto_profiled(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        series_cfg: Option<&SeriesConfig>,
    ) -> Result<(SimReport, EngineProfile), ConfigError> {
        if par::wants_parallel(cfg, spec, seed)? {
            par::ParSim::run_profiled(cfg, spec, seed, series_cfg)
        } else {
            Simulation::run_profiled(cfg, spec, seed, series_cfg)
        }
    }

    fn series_meta(&self, seed: u64, scfg: &SeriesConfig) -> SeriesMeta {
        SeriesMeta {
            protocol: self.spec.name().to_string(),
            mpl: self.cfg.mpl,
            seed,
            window_s: scfg.window.as_secs_f64(),
            per_site: scfg.per_site,
        }
    }

    fn install_series(&mut self, rec: series::SeriesRecorder) {
        let mut rec = Box::new(rec);
        if self.warmup_target > 0 {
            rec.begin_warmup();
        }
        self.series_boundary = rec.next_boundary();
        self.series = Some(rec);
    }

    /// Close the final partial window and hand the series back
    /// (flushing the writer in streaming mode).
    fn finish_series(&mut self) -> std::io::Result<Series> {
        let rec = self.series.take().expect("series recorder installed");
        self.series_boundary = SimTime(u64::MAX);
        let now = self.cal.now();
        rec.finish(now, &mut self.metrics, &self.sites)
    }

    /// Record one trace event for `txn`, if tracing is active and the
    /// transaction is within the traced prefix.
    pub(crate) fn trace_event(&mut self, txn: TxnId, make: impl FnOnce(SimTime) -> TraceEvent) {
        if self.trace_txn_limit >= txn {
            let now = self.cal.now();
            if let Some(sink) = self.sink.as_mut() {
                sink.record(&make(now));
            }
        }
    }

    fn new(cfg: &SystemConfig, spec: ProtocolSpec, seed: u64) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if !spec.is_valid() {
            return Err(ConfigError::Invalid(
                "OPT cannot be combined with a baseline protocol",
            ));
        }
        let table = spec.base.table();
        if matches!(table.routing, Routing::Chain) {
            if cfg.read_only_optimization {
                return Err(ConfigError::Invalid(
                    "the read-only optimization would break the linear-2PC chain",
                ));
            }
            if cfg.failures.is_some() {
                return Err(ConfigError::Invalid(
                    "failure injection models the parallel decision point and does not \
                     support chained 2PC",
                ));
            }
        }
        if cfg.replication > 0 && !spec.is_replicated() {
            return Err(ConfigError::Invalid(
                "replication degree requires a replicated protocol (PAXOS or REP2PC)",
            ));
        }
        if spec.is_replicated() {
            if cfg.read_only_optimization {
                return Err(ConfigError::Invalid(
                    "the read-only optimization is not modeled for replicated protocols",
                ));
            }
            if 2 * cfg.replication as usize + 1 > cfg.num_sites {
                return Err(ConfigError::Invalid(
                    "2F+1 acceptors need at least 2F+1 sites",
                ));
            }
        }
        let wl = WorkloadGenerator::new(cfg, spec.base);
        let num_sites = wl.effective_sites();
        // CENT merges every site's hardware into one station pool
        // ("equivalent in terms of database size and physical
        // resources", §5.1).
        let merge = cfg.num_sites / num_sites;
        let cpus = cfg.num_cpus as usize * merge;
        let data_disks = cfg.num_data_disks as usize * merge;
        let log_disks = cfg.num_log_disks as usize * merge;
        let pages_per_site_eff = cfg.pages_per_site() * merge as u64;

        let mk_station = || match cfg.resources {
            ResourceMode::Finite => None,
            ResourceMode::Infinite => Some(()),
        };
        let sites = (0..num_sites)
            .map(|_| Site {
                cpu: match mk_station() {
                    None => Station::finite(cpus as u32),
                    Some(()) => Station::infinite(),
                },
                data_disks: (0..data_disks)
                    .map(|_| match mk_station() {
                        None => Station::finite(1),
                        Some(()) => Station::infinite(),
                    })
                    .collect(),
                log_disks: (0..log_disks)
                    .map(|_| match mk_station() {
                        None => Station::finite(1),
                        Some(()) => Station::infinite(),
                    })
                    .collect(),
                batched_logs: match (cfg.group_commit_batch, cfg.resources) {
                    (Some(k), ResourceMode::Finite) => {
                        Some((0..log_disks).map(|_| glog::BatchedLog::new(k)).collect())
                    }
                    // Nothing queues under infinite resources, so
                    // batching would never group anything.
                    _ => None,
                },
                // Page ids within one effective site are distinct
                // residues modulo `pages_per_site_eff`, so they fold
                // injectively into a dense table of that size.
                locks: LockManager::for_pages(spec.opt, pages_per_site_eff),
                owner_cohorts: Vec::new(),
                next_log_disk: 0,
            })
            .collect();

        let metrics = Metrics::new(
            SimTime::ZERO,
            cfg.run.measured_transactions,
            cfg.run.batches,
        );
        let mut sim = Simulation {
            cfg: cfg.clone(),
            spec,
            table,
            wl,
            cal: Calendar::new(),
            rng: SimRng::new(seed),
            sites,
            txns: Slab::new(),
            cohorts: Slab::new(),
            next_txn_id: 1,
            next_cohort_id: 1,
            metrics,
            resp_estimate: Tally::new(),
            total_commits: 0,
            commit_target: cfg.run.warmup_transactions + cfg.run.measured_transactions,
            warmup_target: cfg.run.warmup_transactions,
            done: false,
            truncated: false,
            pages_per_site_eff,
            // Keyed by *effective* sites: CENT's merged site pool has
            // no inter-site links, so its matrix is empty/diagonal.
            wire_latency: cfg.topology.map(|t| t.latency_matrix(num_sites, seed)),
            dl_seen: Vec::new(),
            dl_stamp: 0,
            dl_stack: Vec::new(),
            sink: None,
            trace_txn_limit: 0,
            series: None,
            series_boundary: SimTime(u64::MAX),
            profile: None,
        };
        // Closed system: MPL transactions per (effective) site. The
        // merged CENT site carries the whole population.
        let mpl_per_site = cfg.mpl as usize * merge;
        for home in 0..num_sites {
            for _ in 0..mpl_per_site {
                sim.cal.schedule_now(Event::Submit {
                    home,
                    template: None,
                    original_birth: None,
                });
            }
        }
        Ok(sim)
    }

    fn execute(&mut self) {
        if self.profile.is_some() {
            return self.execute_profiled();
        }
        while !self.done {
            let Some((now, event)) = self.cal.next() else {
                // A closed system must never drain its calendar: every
                // transaction always has a pending event, a lock wait
                // whose holder has pending events, or a scheduled
                // restart. A drain is an engine bug.
                panic!(
                    "event calendar drained — stuck state:\n{}",
                    self.dump_stuck()
                );
            };
            if let Some(cap) = self.cfg.run.max_sim_time {
                if now > cap {
                    self.truncated = true;
                    break;
                }
            }
            if now >= self.series_boundary {
                self.close_series_windows(now);
            }
            self.dispatch(event);
        }
    }

    /// [`Simulation::execute`] with wall-clock section timing. A
    /// separate copy so the unprofiled hot path carries no timer reads.
    fn execute_profiled(&mut self) {
        while !self.done {
            let t0 = std::time::Instant::now();
            let Some((now, event)) = self.cal.next() else {
                panic!(
                    "event calendar drained — stuck state:\n{}",
                    self.dump_stuck()
                );
            };
            let t1 = std::time::Instant::now();
            if let Some(cap) = self.cfg.run.max_sim_time {
                if now > cap {
                    self.truncated = true;
                    break;
                }
            }
            if now >= self.series_boundary {
                self.close_series_windows(now);
            }
            let t2 = std::time::Instant::now();
            self.dispatch(event);
            let t3 = std::time::Instant::now();
            let p = self.profile.as_mut().expect("profiled loop");
            p.events += 1;
            p.calendar_ns += (t1 - t0).as_nanos() as u64;
            p.series_ns += (t2 - t1).as_nanos() as u64;
            p.dispatch_ns += (t3 - t2).as_nanos() as u64;
        }
    }

    /// Close every series window with a boundary at or before `now`
    /// (the recorder is briefly detached to appease the borrow
    /// checker — two pointer moves, only on boundary crossings).
    fn close_series_windows(&mut self, now: SimTime) {
        if let Some(mut rec) = self.series.take() {
            rec.close_through(now, &mut self.metrics, &self.sites);
            self.series_boundary = rec.next_boundary();
            self.series = Some(rec);
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Submit {
                home,
                template,
                original_birth,
            } => {
                self.submit_txn(home, template.map(|b| *b), original_birth);
            }
            Event::CpuDone { site, job } => {
                let now = self.cal.now();
                if let Some(started) = self.sites[site].cpu.complete(now) {
                    self.cal.schedule_at(
                        started.done_at,
                        Event::CpuDone {
                            site,
                            job: started.job,
                        },
                    );
                }
                self.handle_cpu_done(site, job);
            }
            Event::DataDiskDone { site, disk, job } => {
                let now = self.cal.now();
                if let Some(started) = self.sites[site].data_disks[disk].complete(now) {
                    self.cal.schedule_at(
                        started.done_at,
                        Event::DataDiskDone {
                            site,
                            disk,
                            job: started.job,
                        },
                    );
                }
                self.handle_data_disk_done(job);
            }
            Event::LogDiskDone { site, disk, job } => {
                let now = self.cal.now();
                if let Some(started) = self.sites[site].log_disks[disk].complete(now) {
                    self.cal.schedule_at(
                        started.done_at,
                        Event::LogDiskDone {
                            site,
                            disk,
                            job: started.job,
                        },
                    );
                }
                if let Some(txn) = self.log_txn(&job) {
                    let label = job.label();
                    self.trace_event(txn, |at| TraceEvent::LogDone {
                        at,
                        txn,
                        label,
                        site,
                    });
                }
                self.handle_log_done(job);
            }
            Event::LogBatchDone { site, disk } => {
                let now = self.cal.now();
                let service = self.cfg.page_disk;
                let batcher = &mut self.sites[site]
                    .batched_logs
                    .as_mut()
                    .expect("batch event implies group commit")[disk];
                let (done, next) = batcher.complete(now, service);
                if let Some(done_at) = next {
                    self.cal
                        .schedule_at(done_at, Event::LogBatchDone { site, disk });
                }
                for work in done {
                    if let Some(txn) = self.log_txn(&work) {
                        let label = work.label();
                        self.trace_event(txn, |at| TraceEvent::LogDone {
                            at,
                            txn,
                            label,
                            site,
                        });
                    }
                    self.handle_log_done(work);
                }
            }
            Event::MasterRecovered { txn, commit } => {
                // The recovered master resumes where the crash hit.
                self.decide_now(txn, commit);
            }
            Event::CohortRecovered { cohort } => self.cohort_recovered(cohort),
            Event::MsgRetry { retry, attempt } => self.handle_msg_retry(retry, attempt),
            Event::StartTermination { txn } => self.start_termination(txn),
            Event::LocalMsg { msg } => self.handle_message(msg),
            Event::MsgArrive { msg } => {
                // Wire flight over: the transfer reaches the receiver's
                // CPU queue and pays the usual receive-side MsgCPU.
                self.cpu_arrive(
                    msg.to,
                    CpuJob::MsgRecv { msg },
                    self.cfg.msg_cpu,
                    JobClass::High,
                );
            }
        }
    }

    fn handle_cpu_done(&mut self, _site: SiteId, job: CpuJob) {
        match job {
            CpuJob::Data { cohort } => self.cohort_page_processed(cohort),
            CpuJob::MsgSend { msg } => {
                if msg.lost {
                    // Fault injection dropped this transfer in the
                    // switch: the sender paid its MsgCPU, the receiver
                    // never sees it. The sender's retransmission timer
                    // is already running.
                    return;
                }
                // Without a topology the network is an instantaneous
                // switch (§4): delivery costs only receive-side CPU.
                // Under one, the transfer additionally spends the site
                // pair's wire latency in flight — pure delay, no extra
                // CPU or messages, so the Tables 3–4 overhead counts
                // are unchanged. Zero-latency pairs take the classic
                // path so the event stream (and byte identity with
                // untopologized runs) is preserved.
                let lat = self.pair_latency(msg.from, msg.to);
                if lat.is_zero() {
                    self.cpu_arrive(
                        msg.to,
                        CpuJob::MsgRecv { msg },
                        self.cfg.msg_cpu,
                        JobClass::High,
                    );
                } else {
                    self.cal.schedule_in(lat, Event::MsgArrive { msg });
                }
            }
            CpuJob::MsgRecv { msg } => self.handle_message(msg),
        }
    }

    fn handle_data_disk_done(&mut self, job: DiskJob) {
        match job {
            DiskJob::Read { cohort } => {
                // The page is in memory; charge `PageCPU` of processing.
                let Some(c) = self.cohorts.get(cohort) else {
                    return;
                };
                let site = c.site;
                self.cpu_arrive(
                    site,
                    CpuJob::Data { cohort },
                    self.cfg.page_cpu,
                    JobClass::Low,
                );
            }
            DiskJob::AsyncWrite => {}
        }
    }

    // ------------------------------------------------------------------
    // Resource plumbing
    // ------------------------------------------------------------------

    pub(crate) fn cpu_arrive(
        &mut self,
        site: SiteId,
        job: CpuJob,
        service: SimDuration,
        class: JobClass,
    ) {
        let now = self.cal.now();
        if let Some(started) = self.sites[site].cpu.arrive(now, job, service, class) {
            self.cal.schedule_at(
                started.done_at,
                Event::CpuDone {
                    site,
                    job: started.job,
                },
            );
        }
    }

    /// Wire latency between two sites: a topology matrix lookup, or
    /// zero (the instantaneous switch) when no topology is configured.
    fn pair_latency(&self, from: SiteId, to: SiteId) -> SimDuration {
        match &self.wire_latency {
            Some(m) => m[from * self.sites.len() + to],
            None => SimDuration::ZERO,
        }
    }

    pub(crate) fn disk_for_page(&self, page: u64) -> usize {
        let local = page % self.pages_per_site_eff;
        (local % self.sites[0].data_disks.len() as u64) as usize
    }

    pub(crate) fn data_disk_arrive(&mut self, site: SiteId, page: u64, job: DiskJob) {
        let now = self.cal.now();
        let disk = self.disk_for_page(page);
        if let Some(started) =
            self.sites[site].data_disks[disk].arrive(now, job, self.cfg.page_disk, JobClass::Low)
        {
            self.cal.schedule_at(
                started.done_at,
                Event::DataDiskDone {
                    site,
                    disk,
                    job: started.job,
                },
            );
        }
    }

    /// The transaction a piece of log work belongs to, as a live
    /// handle; `None` when the owning cohort is already gone.
    pub(crate) fn log_txn_handle(&self, work: &LogWork) -> Option<TxnH> {
        match *work {
            LogWork::CohortPrepare { cohort }
            | LogWork::CohortNoVoteAbort { cohort }
            | LogWork::CohortPrecommit { cohort }
            | LogWork::CohortDecision { cohort, .. } => self.cohorts.get(cohort).map(|c| c.txn),
            LogWork::MasterCollecting { txn }
            | LogWork::MasterPrecommit { txn }
            | LogWork::MasterDecision { txn, .. }
            | LogWork::AcceptorBundle { txn, .. }
            | LogWork::ReplicaDecision { txn, .. } => Some(txn),
        }
    }

    /// The external id of the transaction a piece of log work belongs
    /// to (for tracing). Master-side work always carries a live
    /// transaction: the master's map entry outlives its last log write.
    pub(crate) fn log_txn(&self, work: &LogWork) -> Option<TxnId> {
        self.log_txn_handle(work)
            .and_then(|th| self.txns.get(th))
            .map(|t| t.id)
    }

    /// The transaction a message belongs to, as a live handle; `None`
    /// when the target cohort is already gone.
    pub(crate) fn msg_txn_handle(&self, kind: &MsgKind) -> Option<TxnH> {
        match *kind {
            MsgKind::InitCohort { cohort }
            | MsgKind::Prepare { cohort }
            | MsgKind::PreCommit { cohort }
            | MsgKind::Decision { cohort, .. }
            | MsgKind::TermStateReq { cohort }
            | MsgKind::ChainPrepare { cohort }
            | MsgKind::ChainDecision { cohort, .. } => self.cohorts.get(cohort).map(|c| c.txn),
            MsgKind::WorkDone { txn, .. }
            | MsgKind::Vote { txn, .. }
            | MsgKind::PreAck { txn, .. }
            | MsgKind::Ack { txn, .. }
            | MsgKind::TermStateRep { txn }
            | MsgKind::ChainBack { txn, .. }
            | MsgKind::PaxosVote { txn, .. }
            | MsgKind::Accepted { txn, .. }
            | MsgKind::RepDecision { txn, .. }
            | MsgKind::RepAck { txn }
            | MsgKind::AccStateReq { txn, .. }
            | MsgKind::AccStateRep { txn } => Some(txn),
        }
    }

    /// Issue a forced log write; its completion event carries `work`
    /// back into the protocol state machine. Costs one disk page write
    /// (§4.3); log disks are chosen round-robin within the site.
    pub(crate) fn force_log(&mut self, site: SiteId, work: LogWork) {
        if let Some(th) = self.log_txn_handle(&work) {
            if let Some(t) = self.txns.get_mut(th) {
                t.forced += 1;
                let txn = t.id;
                let label = work.label();
                self.trace_event(txn, |at| TraceEvent::ForceLog {
                    at,
                    txn,
                    label,
                    site,
                });
            }
        }
        self.metrics.forced_writes.bump();
        let now = self.cal.now();
        let s = &mut self.sites[site];
        let disk = s.next_log_disk;
        s.next_log_disk = (s.next_log_disk + 1) % s.log_disks.len();
        if let Some(batchers) = s.batched_logs.as_mut() {
            if let Some(done_at) = batchers[disk].arrive(now, work, self.cfg.page_disk) {
                self.cal
                    .schedule_at(done_at, Event::LogBatchDone { site, disk });
            }
            return;
        }
        if let Some(started) =
            s.log_disks[disk].arrive(now, work, self.cfg.page_disk, JobClass::Low)
        {
            self.cal.schedule_at(
                started.done_at,
                Event::LogDiskDone {
                    site,
                    disk,
                    job: started.job,
                },
            );
        }
    }

    /// Send a message. Same-site messages are free and delivered via a
    /// zero-delay event; remote messages cost `MsgCPU` at both ends and
    /// are counted in the execution/commit tallies.
    pub(crate) fn send(&mut self, from: SiteId, to: SiteId, kind: MsgKind) {
        self.send_attempt(from, to, kind, 0);
    }

    /// May fault injection drop this message class? Both directions of
    /// the commit choreography are eligible: the master→cohort requests
    /// *and* the cohort→master replies (WORKDONE, VOTE, PREACK, ACK) —
    /// a lossy network does not spare one direction. `InitCohort` and
    /// the termination-protocol exchange stay exempt: the modeled crash
    /// windows place them outside the loss model, and their loss would
    /// need recovery machinery the paper does not describe. Under
    /// quorum routing the PREPARE/vote round is likewise exempt: a
    /// retransmitted PREPARE would re-fan the vote to every acceptor
    /// and the acceptor tally has no duplicate suppression — the loss
    /// model covers the decision/ack round, where Paxos Commit's
    /// fault tolerance actually lives.
    fn loss_eligible(&self, kind: &MsgKind) -> bool {
        match *kind {
            MsgKind::Prepare { .. } => !matches!(self.table.routing, Routing::Quorum),
            MsgKind::PreCommit { .. }
            | MsgKind::Decision { .. }
            | MsgKind::WorkDone { .. }
            | MsgKind::Vote { .. }
            | MsgKind::PreAck { .. }
            | MsgKind::Ack { .. } => true,
            _ => false,
        }
    }

    /// The retransmission handle for the loss-eligible classes that
    /// carry their *own* timer: the master→cohort requests, plus
    /// WORKDONE — the one reply nothing re-solicits (the master
    /// passively collects during execution). The other replies (VOTE,
    /// PREACK, ACK) are re-elicited by the requester's timer: a
    /// repeated request is answered again, so a second timer on the
    /// reply would be redundant.
    fn loss_retry(kind: &MsgKind) -> Option<Retry> {
        match *kind {
            MsgKind::Prepare { cohort } => Some(Retry::Prepare { cohort }),
            MsgKind::PreCommit { cohort } => Some(Retry::PreCommit { cohort }),
            MsgKind::Decision { cohort, commit } => Some(Retry::Decision { cohort, commit }),
            MsgKind::WorkDone { cohort, .. } => Some(Retry::WorkDone { cohort }),
            _ => None,
        }
    }

    /// [`Simulation::send`] with an attempt count for the message-loss
    /// machinery. Attempts `0..max_retransmits` of a loss-eligible
    /// remote message may be dropped (each is watched by a `MsgRetry`
    /// timer); attempt `max_retransmits` is the escalated transfer and
    /// is delivered reliably, so the protocol always terminates.
    fn send_attempt(&mut self, from: SiteId, to: SiteId, kind: MsgKind, attempt: u32) {
        let owner = self.msg_txn_handle(&kind);
        let owner_id = owner.and_then(|th| self.txns.get(th)).map(|t| t.id);
        if let Some(txn) = owner_id {
            let label = kind.label();
            let local = from == to;
            self.trace_event(txn, |at| TraceEvent::Send {
                at,
                txn,
                label,
                from,
                to,
                local,
            });
        }
        let mut lost = false;
        if from != to {
            if let Some(f) = self.cfg.failures {
                if f.msg_loss_prob > 0.0 && attempt < f.max_retransmits && self.loss_eligible(&kind)
                {
                    self.metrics.message_loss_trials.bump();
                    if self.rng.chance(f.msg_loss_prob) {
                        lost = true;
                        self.metrics.messages_lost.bump();
                        if let Some(t) = owner.and_then(|th| self.txns.get_mut(th)) {
                            // Loss traffic is outside the analytic
                            // overhead model of Tables 3–4.
                            t.crashed = true;
                            let txn = t.id;
                            let label = kind.label();
                            self.trace_event(txn, |at| TraceEvent::MsgLost { at, txn, label });
                        }
                    }
                    // Watch timer-carrying transfers either way: the
                    // timer inspects the receiver's recorded progress
                    // and dies if the message evidently arrived. The
                    // timerless replies are re-elicited by their
                    // requester's timer instead.
                    if let Some(retry) = Self::loss_retry(&kind) {
                        self.cal
                            .schedule_in(f.msg_timeout, Event::MsgRetry { retry, attempt });
                    }
                }
            }
        }
        let msg = Message {
            from,
            to,
            kind,
            lost,
            attempt,
        };
        if from == to {
            self.cal.schedule_now(Event::LocalMsg { msg });
            return;
        }
        if kind.is_execution() {
            self.metrics.exec_messages.bump();
        } else {
            self.metrics.commit_messages.bump();
        }
        if let Some(t) = owner.and_then(|th| self.txns.get_mut(th)) {
            if kind.is_execution() {
                t.msg_exec += 1;
            } else {
                t.msg_commit += 1;
            }
        }
        self.cpu_arrive(
            from,
            CpuJob::MsgSend { msg },
            self.cfg.msg_cpu,
            JobClass::High,
        );
    }

    /// A retransmission timer fired. If the receiver's phase shows the
    /// watched transfer never arrived, repeat it (the repeat is itself
    /// loss-eligible until the retry budget runs out, after which the
    /// escalated transfer is reliable).
    fn handle_msg_retry(&mut self, retry: Retry, attempt: u32) {
        let Some(f) = self.cfg.failures else {
            return;
        };
        let cohort = match retry {
            Retry::Prepare { cohort }
            | Retry::PreCommit { cohort }
            | Retry::Decision { cohort, .. }
            | Retry::WorkDone { cohort } => cohort,
        };
        let Some(c) = self.cohorts.get(cohort) else {
            // The cohort finished: the transfer (or a duplicate of it)
            // arrived, or an abort tore the cohort down. Timer dies.
            return;
        };
        let th = c.txn;
        let kind = match retry {
            Retry::Prepare { cohort } => MsgKind::Prepare { cohort },
            Retry::PreCommit { cohort } => MsgKind::PreCommit { cohort },
            Retry::Decision { cohort, commit } => MsgKind::Decision { cohort, commit },
            Retry::WorkDone { cohort } => MsgKind::WorkDone { txn: th, cohort },
        };
        // Has the *whole round trip* evidently completed? The timer
        // watches end-to-end: it keeps firing until the master has the
        // reply, because either leg may have been the lost one — a
        // repeated request re-elicits a lost reply from a cohort that
        // already acted on the first copy. For the decision, slab
        // presence is the receipt test: the ACK's arrival (or the
        // cohort's ack-free completion) removes the entry, which the
        // miss above already caught.
        let awaited = match retry {
            Retry::Prepare { .. } => !c.vote_seen,
            Retry::PreCommit { .. } => !c.preack_seen,
            Retry::Decision { .. } => true,
            Retry::WorkDone { .. } => !c.wd_seen,
        };
        if !awaited {
            return;
        }
        // Requests travel control→cohort; the WORKDONE reply travels
        // cohort→control.
        let (from, to) = match retry {
            Retry::WorkDone { .. } => (c.site, self.txns[th].control_site()),
            _ => (self.txns[th].control_site(), c.site),
        };
        self.metrics.retransmissions.bump();
        if attempt + 1 >= f.max_retransmits {
            // Out of retries: this repeat goes over the reliable
            // out-of-band path (cooperative termination / operator
            // action in a real system).
            self.metrics.retry_escalations.bump();
        }
        let t = self.txns.get_mut(th).expect("live txn");
        // A retransmission — even a spurious one fired while the
        // original sat in a queue — puts the incarnation outside the
        // analytic overhead model.
        t.crashed = true;
        let txn_id = t.id;
        let label = kind.label();
        self.trace_event(txn_id, |at| TraceEvent::Retransmitted {
            at,
            txn: txn_id,
            label,
            attempt: attempt + 1,
        });
        self.send_attempt(from, to, kind, attempt + 1);
    }

    // ------------------------------------------------------------------
    // Identity & bookkeeping
    // ------------------------------------------------------------------

    /// Replication degree F in effect: the configured degree for the
    /// replicated protocol family, zero for the classic single-copy
    /// protocols (whose table rows never consult it).
    pub(crate) fn rep_f(&self) -> u32 {
        if self.spec.is_replicated() {
            self.cfg.replication
        } else {
            0
        }
    }

    /// Site of replica `k` (0-based, `k < 2F+1`) of the group anchored
    /// at `home`: consecutive sites wrapping around the ring, so
    /// replica 0 — the Paxos leader / the replicated coordinator's
    /// primary — is co-located with the master.
    pub(crate) fn acceptor_site(&self, home: SiteId, k: u32) -> SiteId {
        (home + k as usize) % self.sites.len()
    }

    pub(crate) fn alloc_txn_id(&mut self) -> TxnId {
        let id = self.next_txn_id;
        self.next_txn_id += 1;
        id
    }

    pub(crate) fn alloc_cohort_id(&mut self) -> CohortId {
        let id = self.next_cohort_id;
        self.next_cohort_id += 1;
        id
    }

    /// The delay before a restart. Under the paper's adaptive policy
    /// (§4) it is the running average response time of committed
    /// transactions (a service-demand estimate before any commit
    /// exists); the alternatives exist for ablation studies.
    pub(crate) fn restart_delay(&self) -> SimDuration {
        match self.cfg.restart_policy {
            crate::config::RestartPolicy::AdaptiveResponseTime => {
                if self.resp_estimate.count() > 0 {
                    SimDuration::from_millis_f64(self.resp_estimate.mean() * 1_000.0)
                } else {
                    let pages = (self.cfg.dist_degree * self.cfg.cohort_size) as u64;
                    (self.cfg.page_disk + self.cfg.page_cpu) * pages
                }
            }
            crate::config::RestartPolicy::Fixed(d) => d,
            crate::config::RestartPolicy::Immediate => SimDuration::ZERO,
        }
    }

    /// Series hook at the commit decision: attribute one commit to the
    /// transaction's home site.
    pub(crate) fn series_note_commit(&mut self, home: SiteId) {
        if let Some(rec) = self.series.as_mut() {
            rec.note_commit(home);
        }
    }

    /// Called at every commit point: advances warm-up/measurement
    /// bookkeeping and stops the run at the target.
    pub(crate) fn note_commit_for_run_control(&mut self) {
        self.total_commits += 1;
        if self.total_commits == self.warmup_target {
            let now = self.cal.now();
            // Force-close the series' partial warm-up window *before*
            // the counters reset, so measured windows tile exactly over
            // the measurement interval and their deltas sum to the
            // report aggregates.
            if let Some(mut rec) = self.series.take() {
                rec.close_warmup(now, &mut self.metrics, &self.sites);
                self.series_boundary = rec.next_boundary();
                self.series = Some(rec);
            }
            self.metrics.reset(now);
            for site in &mut self.sites {
                site.cpu.reset_stats(now);
                for d in &mut site.data_disks {
                    d.reset_stats(now);
                }
                for d in &mut site.log_disks {
                    d.reset_stats(now);
                }
                if let Some(batchers) = site.batched_logs.as_mut() {
                    for b in batchers {
                        b.reset_stats(now);
                    }
                }
            }
        }
        if self.total_commits >= self.commit_target {
            self.done = true;
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Cross-check a cleanly committed transaction's measured message
    /// and forced-write counts against the analytic model of Tables 3–4
    /// (`ProtocolSpec::committed_overheads`). The counters are
    /// per-incarnation, every send/force is issued before the
    /// transaction is forgotten, and the master/local-cohort messages
    /// are free in both model and engine — so for a commit with no
    /// master crash the two must agree *exactly*. A divergence is a
    /// simulator bug: debug builds assert, release builds report it via
    /// [`crate::metrics::OverheadCheck`].
    pub(crate) fn check_commit_overheads(&mut self, t: &Txn) {
        if t.crashed {
            // Recovery/termination traffic is outside the analytic model.
            return;
        }
        let d = t.template.sites.len() as u32;
        let predicted = if self.spec.is_replicated() {
            // Votes/ACCEPTED between co-located cohorts and acceptors
            // are free: count the remote cohorts that sit on one of the
            // 2F non-home acceptor sites (acceptor 0 shares the home).
            let f = self.rep_f();
            let mut colocated = 0u32;
            if matches!(self.table.routing, Routing::Quorum) && f > 0 {
                for &site in &t.template.sites {
                    if site != t.home && (1..=2 * f).any(|k| site == self.acceptor_site(t.home, k))
                    {
                        colocated += 1;
                    }
                }
            }
            self.spec.committed_overheads_replicated(d, f, colocated)
        } else if self.cfg.read_only_optimization && self.table.voting {
            // Which cohorts dropped out with a READ vote is a property
            // of the template: a cohort is read-only iff it updates
            // nothing.
            let mut remote_read_only = 0u32;
            let mut local_read_only = false;
            for (i, &site) in t.template.sites.iter().enumerate() {
                if t.template.accesses[i].iter().all(|a| !a.update) {
                    if site == t.home {
                        local_read_only = true;
                    } else {
                        remote_read_only += 1;
                    }
                }
            }
            self.spec
                .committed_overheads_read_only(commitproto::ReadOnlyScenario {
                    dist_degree: d,
                    remote_read_only,
                    local_read_only,
                })
        } else {
            self.spec.committed_overheads(d)
        };
        let message_delta = t.msg_exec.abs_diff(predicted.exec_messages)
            + t.msg_commit.abs_diff(predicted.commit_messages);
        let forced_write_delta = t.forced.abs_diff(predicted.forced_writes);
        debug_assert!(
            message_delta == 0 && forced_write_delta == 0,
            "overhead model mismatch for txn {} ({}, d={d}): measured exec {} / commit {} / \
             forced {}, predicted exec {} / commit {} / forced {}",
            t.id,
            self.spec.name(),
            t.msg_exec,
            t.msg_commit,
            t.forced,
            predicted.exec_messages,
            predicted.commit_messages,
            predicted.forced_writes,
        );
        self.metrics
            .overhead_check
            .record(message_delta, forced_write_delta);
    }

    fn report(&mut self) -> SimReport {
        let now = self.cal.now();
        let window = now.since(self.metrics.start).as_secs_f64();
        let committed = self.metrics.committed.get();
        let throughput = if window > 0.0 {
            committed as f64 / window
        } else {
            0.0
        };

        let mut site_resources = Vec::with_capacity(self.sites.len());
        for site in &mut self.sites {
            let mut cpu_acc = ResourceAcc::default();
            let mut dd_acc = ResourceAcc::default();
            let mut ld_acc = ResourceAcc::default();
            cpu_acc.push(
                site.cpu.utilization(now),
                site.cpu.mean_queue_depth(now),
                site.cpu.mean_wait().as_secs_f64(),
                site.cpu.max_queue_depth(),
                site.cpu.occupancy(now),
            );
            for d in &mut site.data_disks {
                dd_acc.push(
                    d.utilization(now),
                    d.mean_queue_depth(now),
                    d.mean_wait().as_secs_f64(),
                    d.max_queue_depth(),
                    d.occupancy(now),
                );
            }
            match site.batched_logs.as_mut() {
                Some(batchers) => {
                    for b in batchers {
                        // Per-record waits are not tracked under group
                        // commit; the queue-depth integral still is.
                        let util = b.utilization(now);
                        let queue = b.mean_queue_depth(now);
                        let max = b.max_queue_depth();
                        ld_acc.push(util, queue, 0.0, max, b.occupancy(now));
                    }
                }
                None => {
                    for d in &mut site.log_disks {
                        ld_acc.push(
                            d.utilization(now),
                            d.mean_queue_depth(now),
                            d.mean_wait().as_secs_f64(),
                            d.max_queue_depth(),
                            d.occupancy(now),
                        );
                    }
                }
            }
            site_resources.push(ResourceReport {
                cpu: cpu_acc.stats(),
                data_disk: dd_acc.stats(),
                log_disk: ld_acc.stats(),
            });
        }
        let averaged = ResourceReport::average(&site_resources);
        let utilizations = Utilizations {
            cpu: averaged.cpu.utilization,
            data_disk: averaged.data_disk.utilization,
            log_disk: averaged.log_disk.utilization,
        };

        let mut batches = 0u64;
        let mut batched_writes = 0u64;
        for site in &self.sites {
            match site.batched_logs.as_ref() {
                Some(bs) => {
                    for b in bs {
                        batches += b.batches_served();
                        batched_writes += b.writes_served();
                    }
                }
                None => {
                    for d in &site.log_disks {
                        batches += d.served();
                        batched_writes += d.served();
                    }
                }
            }
        }
        let mean_log_batch = if batches == 0 {
            0.0
        } else {
            batched_writes as f64 / batches as f64
        };

        let blocked_avg = self.metrics.blocked_txns.time_average(now);
        let live_avg = self.metrics.live_txns.time_average(now);
        let block_ratio = if live_avg > 0.0 {
            blocked_avg / live_avg
        } else {
            0.0
        };

        SimReport {
            protocol: self.spec.name().to_string(),
            mpl: self.cfg.mpl,
            sim_seconds: window,
            committed,
            aborted_deadlock: self.metrics.aborted_deadlock.get(),
            aborted_surprise: self.metrics.aborted_surprise.get(),
            aborted_borrower: self.metrics.aborted_borrower.get(),
            aborted_crash: self.metrics.aborted_crash.get(),
            throughput,
            throughput_ci: self.metrics.throughput_batches.confidence_interval(),
            mean_response_s: self.metrics.response.mean(),
            p50_response_s: self.metrics.response_hist.p50().as_secs_f64(),
            p95_response_s: self.metrics.response_hist.p95().as_secs_f64(),
            p99_response_s: self.metrics.response_hist.p99().as_secs_f64(),
            mean_attempt_response_s: self.metrics.attempt_response.mean(),
            block_ratio,
            borrow_ratio: self.metrics.borrowed_pages.per(committed),
            exec_messages_per_commit: self.metrics.exec_messages.per(committed),
            commit_messages_per_commit: self.metrics.commit_messages.per(committed),
            forced_writes_per_commit: self.metrics.forced_writes.per(committed),
            mean_shelf_time_s: self.metrics.shelf_time.mean(),
            mean_prepared_time_s: self.metrics.prepared_time.mean(),
            phase_latencies: PhaseLatencies {
                execution: LatencySummary::from_histogram(&self.metrics.phase_execution),
                voting: LatencySummary::from_histogram(&self.metrics.phase_voting),
                decision: LatencySummary::from_histogram(&self.metrics.phase_decision),
            },
            utilizations,
            site_resources,
            overhead_check: self.metrics.overhead_check,
            mean_log_batch,
            faults: crate::metrics::FaultCounters {
                master_crashes: self.metrics.master_crashes.get(),
                cohort_crashes: self.metrics.cohort_crashes.get(),
                messages_lost: self.metrics.messages_lost.get(),
                retransmissions: self.metrics.retransmissions.get(),
                retry_escalations: self.metrics.retry_escalations.get(),
                termination_rounds: self.metrics.termination_rounds.get(),
                master_crash_trials: self.metrics.master_crash_trials.get(),
                cohort_crash_trials: self.metrics.cohort_crash_trials.get(),
                message_loss_trials: self.metrics.message_loss_trials.get(),
                blocked_on_crash_cohorts: self.metrics.blocked_on_crash_cohorts.get(),
                mean_blocked_on_crash_s: self.metrics.crash_block_time.mean(),
            },
            convergence: self.metrics.convergence(),
            events: self.cal.dispatched_count(),
        }
    }

    /// Whether the run hit its simulated-time cap before committing the
    /// requested number of transactions.
    pub fn was_truncated(&self) -> bool {
        self.truncated
    }

    /// Render every in-flight transaction and cohort — the post-mortem
    /// attached to the calendar-drain panic.
    fn dump_stuck(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut txns: Vec<_> = self.txns.values().collect();
        txns.sort_by_key(|t| t.id);
        for t in txns {
            let _ = writeln!(
                out,
                "txn {} phase {:?} wd={} votes={} acks={} open={}",
                t.id, t.phase, t.pending_workdone, t.pending_votes, t.pending_acks, t.open_cohorts
            );
            for &ch in &t.cohorts {
                if let Some(c) = self.cohorts.get(ch) {
                    let lm = &self.sites[c.site].locks;
                    let _ = writeln!(
                        out,
                        "  cohort {} site {} phase {:?} access {}/{} wait={} shelf={} borrows={:?} blockers={:?}",
                        c.id,
                        c.site,
                        c.phase,
                        c.next_access,
                        c.n_accesses,
                        c.waiting_lock,
                        c.shelf_since.is_some(),
                        lm.lenders_of(c.lock_owner)
                            .filter_map(|o| lm.owner_seq(o))
                            .collect::<Vec<_>>(),
                        lm.blockers_of(c.lock_owner)
                            .iter()
                            .filter_map(|&o| lm.owner_seq(o))
                            .collect::<Vec<_>>(),
                    );
                }
            }
        }
        out
    }
}
