//! Chrome trace-event export: turns a recorded [`Trace`] into the JSON
//! Array Format understood by `chrome://tracing` and Perfetto.
//!
//! Mapping (see the Trace Event Format spec):
//! - `pid` = transaction id (one "process" lane per transaction),
//! - `tid` = site id (one "thread" row per site within the lane),
//! - `ts`  = simulation time in microseconds (`SimTime` is already
//!   microsecond-granular, so the conversion is the identity),
//! - forced-write issue/durable pairs become `ph:"X"` complete events
//!   with a duration (FIFO-matched per txn/label/site, mirroring the
//!   per-station FIFO log-disk queue),
//! - everything else becomes a thread-scoped instant event (`ph:"i"`,
//!   `s:"t"`),
//! - `ph:"M"` metadata events name each transaction lane and site row.
//!
//! The writer is hand-rolled on `std::fmt::Write` — no serde — because
//! the repo is dependency-free by charter. Every emitted string passes
//! through `escape_json`, although in practice labels are plain ASCII.

use super::trace::{Trace, TraceEvent};
use super::types::TxnId;
use crate::workload::SiteId;
use std::fmt::Write as _;

/// Escape a string for inclusion inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One flattened trace-event record, pre-serialization.
struct Record {
    ts: u64,
    dur: Option<u64>,
    ph: char,
    pid: TxnId,
    tid: SiteId,
    name: String,
    args: Vec<(&'static str, String)>,
}

impl Record {
    fn instant(ts: u64, pid: TxnId, tid: SiteId, name: String) -> Self {
        Record {
            ts,
            dur: None,
            ph: 'i',
            pid,
            tid,
            name,
            args: Vec::new(),
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            escape_json(&self.name),
            self.ph,
            self.ts,
            self.pid,
            self.tid
        );
        if let Some(dur) = self.dur {
            let _ = write!(out, ",\"dur\":{dur}");
        }
        if self.ph == 'i' {
            // Thread-scoped instant: renders as a tick on the row.
            out.push_str(",\"s\":\"t\"");
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// Serialize a trace to Chrome trace-event JSON (object form, with a
/// `traceEvents` array), loadable in `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut records: Vec<Record> = Vec::with_capacity(trace.events.len() + 8);

    // FIFO-match ForceLog (issue) with LogDone (durable) per
    // (txn, label, site): the log disk at each site serves records in
    // order, so the first unmatched issue is always the one completing.
    let mut open_forces: Vec<(usize, u64)> = Vec::new(); // (event idx, ts)
    for (i, e) in trace.events.iter().enumerate() {
        match e {
            TraceEvent::Send {
                at,
                label,
                from,
                to,
                local,
                ..
            } => {
                let name = if *local {
                    format!("{label:?} (local)")
                } else {
                    format!("{label:?} {from}\u{2192}{to}")
                };
                let mut r = Record::instant(at.0, e.txn(), *from, name);
                r.args = vec![
                    ("from", from.to_string()),
                    ("to", to.to_string()),
                    ("local", local.to_string()),
                ];
                records.push(r);
            }
            TraceEvent::ForceLog { at, .. } => {
                open_forces.push((i, at.0));
            }
            TraceEvent::LogDone {
                at,
                txn,
                label,
                site,
            } => {
                let matched = open_forces.iter().position(|&(j, _)| {
                    matches!(&trace.events[j],
                        TraceEvent::ForceLog { txn: t, label: l, site: s, .. }
                            if t == txn && l == label && s == site)
                });
                if let Some(p) = matched {
                    let (_, start) = open_forces.remove(p);
                    records.push(Record {
                        ts: start,
                        dur: Some(at.0.saturating_sub(start)),
                        ph: 'X',
                        pid: *txn,
                        tid: *site,
                        name: format!("force {label:?}"),
                        args: vec![("site", site.to_string())],
                    });
                } else {
                    // Durable record with no traced issue (the issue
                    // predated the trace window): keep it as an instant
                    // so the event is not silently dropped.
                    records.push(Record::instant(
                        at.0,
                        *txn,
                        *site,
                        format!("force {label:?} durable"),
                    ));
                }
            }
            TraceEvent::Prepared {
                at, cohort, site, ..
            } => {
                records.push(Record::instant(
                    at.0,
                    e.txn(),
                    *site,
                    format!("cohort {cohort} PREPARED"),
                ));
            }
            TraceEvent::Borrowed {
                at,
                cohort,
                lenders,
                ..
            } => {
                records.push(Record::instant(
                    at.0,
                    e.txn(),
                    0,
                    format!("cohort {cohort} borrowed ({lenders} lenders)"),
                ));
            }
            TraceEvent::Shelved { at, cohort, .. } => {
                records.push(Record::instant(
                    at.0,
                    e.txn(),
                    0,
                    format!("cohort {cohort} shelved"),
                ));
            }
            TraceEvent::Unshelved { at, cohort, .. } => {
                records.push(Record::instant(
                    at.0,
                    e.txn(),
                    0,
                    format!("cohort {cohort} unshelved"),
                ));
            }
            TraceEvent::Decided { at, commit, .. } => {
                let name = if *commit {
                    "GLOBAL COMMIT"
                } else {
                    "GLOBAL ABORT"
                };
                records.push(Record::instant(at.0, e.txn(), 0, name.to_string()));
            }
            TraceEvent::Aborted { at, .. } => {
                records.push(Record::instant(at.0, e.txn(), 0, "aborted".to_string()));
            }
            TraceEvent::MasterCrashed { at, .. } => {
                records.push(Record::instant(
                    at.0,
                    e.txn(),
                    0,
                    "MASTER CRASH".to_string(),
                ));
            }
            TraceEvent::CohortCrashed { at, cohort, .. } => {
                records.push(Record::instant(
                    at.0,
                    e.txn(),
                    0,
                    format!("COHORT {cohort} CRASH"),
                ));
            }
            TraceEvent::CohortRecovered { at, cohort, .. } => {
                records.push(Record::instant(
                    at.0,
                    e.txn(),
                    0,
                    format!("cohort {cohort} recovered"),
                ));
            }
            TraceEvent::MsgLost { at, label, .. } => {
                records.push(Record::instant(at.0, e.txn(), 0, format!("{label:?} lost")));
            }
            TraceEvent::Retransmitted {
                at, label, attempt, ..
            } => {
                records.push(Record::instant(
                    at.0,
                    e.txn(),
                    0,
                    format!("retransmit {label:?} #{attempt}"),
                ));
            }
            TraceEvent::TerminationStarted {
                at, coordinator, ..
            } => {
                records.push(Record::instant(
                    at.0,
                    e.txn(),
                    0,
                    format!("termination (coordinator cohort {coordinator})"),
                ));
            }
        }
    }

    // An unmatched issue at trace end (force still in the log queue)
    // becomes a zero-length complete event at its issue time.
    for (i, ts) in open_forces {
        if let TraceEvent::ForceLog {
            txn, label, site, ..
        } = &trace.events[i]
        {
            records.push(Record {
                ts,
                dur: Some(0),
                ph: 'X',
                pid: *txn,
                tid: *site,
                name: format!("force {label:?} (incomplete)"),
                args: vec![("site", site.to_string())],
            });
        }
    }

    // The viewer sorts lanes by pid; metadata events give them names.
    records.sort_by_key(|r| (r.ts, r.pid, r.tid));

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for txn in trace.txns() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{txn},\"tid\":0,\
             \"args\":{{\"name\":\"txn {txn}\"}}}}"
        );
    }
    for r in &records {
        if !first {
            out.push(',');
        }
        first = false;
        r.write_json(&mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::trace::{LogLabel, MsgLabel};
    use simkernel::SimTime;

    #[test]
    fn escapes_json_special_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn force_pairs_become_complete_events() {
        let tr = Trace {
            events: vec![
                TraceEvent::ForceLog {
                    at: SimTime(100),
                    txn: 1,
                    label: LogLabel::Prepare,
                    site: 2,
                },
                TraceEvent::LogDone {
                    at: SimTime(350),
                    txn: 1,
                    label: LogLabel::Prepare,
                    site: 2,
                },
            ],
        };
        let json = chrome_trace_json(&tr);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":250"));
    }

    #[test]
    fn unmatched_force_is_kept() {
        let tr = Trace {
            events: vec![TraceEvent::ForceLog {
                at: SimTime(7),
                txn: 4,
                label: LogLabel::MasterCommit,
                site: 0,
            }],
        };
        let json = chrome_trace_json(&tr);
        assert!(json.contains("incomplete"));
        assert!(json.contains("\"dur\":0"));
    }

    #[test]
    fn sends_map_txn_to_pid_and_site_to_tid() {
        let tr = Trace {
            events: vec![TraceEvent::Send {
                at: SimTime(42),
                txn: 9,
                label: MsgLabel::Prepare,
                from: 3,
                to: 5,
                local: false,
            }],
        };
        let json = chrome_trace_json(&tr);
        assert!(json.contains("\"pid\":9"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"ts\":42"));
        assert!(json.contains("\"s\":\"t\""));
        // Metadata names the transaction lane.
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("txn 9"));
    }
}
