//! Chrome trace-event export: serializes trace events into the JSON
//! Array Format understood by `chrome://tracing` and Perfetto.
//!
//! Mapping (see the Trace Event Format spec):
//! - `pid` = transaction id (one "process" lane per transaction),
//! - `tid` = site id (one "thread" row per site within the lane),
//! - `ts`  = simulation time in microseconds (`SimTime` is already
//!   microsecond-granular, so the conversion is the identity),
//! - forced-write issue/durable pairs become `ph:"X"` complete events
//!   with a duration (FIFO-matched per txn/label/site, mirroring the
//!   per-station FIFO log-disk queue),
//! - everything else becomes a thread-scoped instant event (`ph:"i"`,
//!   `s:"t"`),
//! - `ph:"M"` metadata events name each transaction lane, emitted the
//!   first time a transaction appears.
//!
//! The heart of the module is [`ChromeWriter`], an *incremental*
//! serializer: it emits each record as the corresponding event arrives,
//! holding back only forced writes still waiting for their durable
//! notification. That makes it usable both after the fact over a
//! buffered [`Trace`] ([`chrome_trace_json`]) and *during* a run as a
//! [`TraceSink`] ([`ChromeStreamSink`]) with memory bounded by the
//! number of in-flight forces — not the run length. Both paths share
//! every byte of serialization code, so they produce identical output
//! for the same event sequence by construction.
//!
//! Records appear in event order (a complete event is written when its
//! durable notification arrives, stamped with its issue `ts`), not
//! sorted by timestamp; the Chrome/Perfetto importers do not require
//! sorted input.
//!
//! The writer is hand-rolled on `std::io::Write` — no serde — because
//! the repo is dependency-free by charter. Every emitted string passes
//! through `escape_json`, although in practice labels are plain ASCII.

use super::trace::{LogLabel, Trace, TraceEvent, TraceSink};
use super::types::TxnId;
use crate::workload::SiteId;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escape a string for inclusion inside a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One flattened trace-event record, pre-serialization.
struct Record {
    ts: u64,
    dur: Option<u64>,
    ph: char,
    pid: TxnId,
    tid: SiteId,
    name: String,
    args: Vec<(&'static str, String)>,
}

impl Record {
    fn instant(ts: u64, pid: TxnId, tid: SiteId, name: String) -> Self {
        Record {
            ts,
            dur: None,
            ph: 'i',
            pid,
            tid,
            name,
            args: Vec::new(),
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            escape_json(&self.name),
            self.ph,
            self.ts,
            self.pid,
            self.tid
        );
        if let Some(dur) = self.dur {
            let _ = write!(out, ",\"dur\":{dur}");
        }
        if self.ph == 'i' {
            // Thread-scoped instant: renders as a tick on the row.
            out.push_str(",\"s\":\"t\"");
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// A forced write whose durable notification has not arrived yet.
struct OpenForce {
    txn: TxnId,
    label: LogLabel,
    site: SiteId,
    ts: u64,
}

/// Incremental Chrome trace-event JSON serializer.
///
/// Feed it events with [`ChromeWriter::event`] and close the stream
/// with [`ChromeWriter::finish`]. State kept between events is bounded
/// by the simulation, not the run length: the list of forced writes
/// still awaiting their durable notification (at most the number of
/// in-flight log records, ~MPL per site) plus one id per transaction
/// seen (for lane-naming metadata).
pub struct ChromeWriter<W: io::Write> {
    out: W,
    first: bool,
    open_forces: Vec<OpenForce>,
    max_open_forces: usize,
    seen_txns: HashSet<TxnId>,
    /// Reused serialization buffer for one record.
    buf: String,
}

impl<W: io::Write> ChromeWriter<W> {
    /// Start a trace stream on `out`, writing the JSON preamble.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        Ok(ChromeWriter {
            out,
            first: true,
            open_forces: Vec::new(),
            max_open_forces: 0,
            seen_txns: HashSet::new(),
            buf: String::new(),
        })
    }

    /// High-water mark of forced writes held awaiting their durable
    /// notification — the only event-derived buffering the writer does.
    pub fn max_open_forces(&self) -> usize {
        self.max_open_forces
    }

    fn write_record(&mut self, r: &Record) -> io::Result<()> {
        self.buf.clear();
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        r.write_json(&mut self.buf);
        self.out.write_all(self.buf.as_bytes())
    }

    /// Name the transaction's lane the first time it appears.
    fn ensure_metadata(&mut self, txn: TxnId) -> io::Result<()> {
        if !self.seen_txns.insert(txn) {
            return Ok(());
        }
        self.buf.clear();
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(
            self.buf,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{txn},\"tid\":0,\
             \"args\":{{\"name\":\"txn {txn}\"}}}}"
        );
        self.out.write_all(self.buf.as_bytes())
    }

    /// Serialize one trace event.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    pub fn event(&mut self, e: &TraceEvent) -> io::Result<()> {
        self.ensure_metadata(e.txn())?;
        let record = match e {
            TraceEvent::Send {
                at,
                label,
                from,
                to,
                local,
                ..
            } => {
                let name = if *local {
                    format!("{label:?} (local)")
                } else {
                    format!("{label:?} {from}\u{2192}{to}")
                };
                let mut r = Record::instant(at.0, e.txn(), *from, name);
                r.args = vec![
                    ("from", from.to_string()),
                    ("to", to.to_string()),
                    ("local", local.to_string()),
                ];
                r
            }
            TraceEvent::ForceLog {
                at,
                txn,
                label,
                site,
            } => {
                // FIFO-match issue with the durable notification per
                // (txn, label, site): the log disk at each site serves
                // records in order, so the first unmatched issue is
                // always the one completing.
                self.open_forces.push(OpenForce {
                    txn: *txn,
                    label: *label,
                    site: *site,
                    ts: at.0,
                });
                self.max_open_forces = self.max_open_forces.max(self.open_forces.len());
                return Ok(());
            }
            TraceEvent::LogDone {
                at,
                txn,
                label,
                site,
            } => {
                let matched = self
                    .open_forces
                    .iter()
                    .position(|o| o.txn == *txn && o.label == *label && o.site == *site);
                if let Some(p) = matched {
                    let open = self.open_forces.remove(p);
                    Record {
                        ts: open.ts,
                        dur: Some(at.0.saturating_sub(open.ts)),
                        ph: 'X',
                        pid: *txn,
                        tid: *site,
                        name: format!("force {label:?}"),
                        args: vec![("site", site.to_string())],
                    }
                } else {
                    // Durable record with no traced issue (the issue
                    // predated the trace window): keep it as an instant
                    // so the event is not silently dropped.
                    Record::instant(at.0, *txn, *site, format!("force {label:?} durable"))
                }
            }
            TraceEvent::Prepared {
                at, cohort, site, ..
            } => Record::instant(at.0, e.txn(), *site, format!("cohort {cohort} PREPARED")),
            TraceEvent::Borrowed {
                at,
                cohort,
                lenders,
                ..
            } => Record::instant(
                at.0,
                e.txn(),
                0,
                format!("cohort {cohort} borrowed ({lenders} lenders)"),
            ),
            TraceEvent::Shelved { at, cohort, .. } => {
                Record::instant(at.0, e.txn(), 0, format!("cohort {cohort} shelved"))
            }
            TraceEvent::Unshelved { at, cohort, .. } => {
                Record::instant(at.0, e.txn(), 0, format!("cohort {cohort} unshelved"))
            }
            TraceEvent::Decided { at, commit, .. } => {
                let name = if *commit {
                    "GLOBAL COMMIT"
                } else {
                    "GLOBAL ABORT"
                };
                Record::instant(at.0, e.txn(), 0, name.to_string())
            }
            TraceEvent::Aborted { at, .. } => {
                Record::instant(at.0, e.txn(), 0, "aborted".to_string())
            }
            TraceEvent::MasterCrashed { at, .. } => {
                Record::instant(at.0, e.txn(), 0, "MASTER CRASH".to_string())
            }
            TraceEvent::CohortCrashed { at, cohort, .. } => {
                Record::instant(at.0, e.txn(), 0, format!("COHORT {cohort} CRASH"))
            }
            TraceEvent::CohortRecovered { at, cohort, .. } => {
                Record::instant(at.0, e.txn(), 0, format!("cohort {cohort} recovered"))
            }
            TraceEvent::MsgLost { at, label, .. } => {
                Record::instant(at.0, e.txn(), 0, format!("{label:?} lost"))
            }
            TraceEvent::Retransmitted {
                at, label, attempt, ..
            } => Record::instant(at.0, e.txn(), 0, format!("retransmit {label:?} #{attempt}")),
            TraceEvent::TerminationStarted {
                at, coordinator, ..
            } => Record::instant(
                at.0,
                e.txn(),
                0,
                format!("termination (coordinator cohort {coordinator})"),
            ),
            TraceEvent::FailoverStarted { at, leader, .. } => Record::instant(
                at.0,
                e.txn(),
                *leader,
                format!("leader failover (new leader site {leader})"),
            ),
        };
        self.write_record(&record)
    }

    /// Close the stream: an unmatched issue at trace end (force still
    /// in the log queue) becomes a zero-length complete event at its
    /// issue time, then the JSON footer is written. Returns the
    /// underlying writer.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        let leftover = std::mem::take(&mut self.open_forces);
        for o in leftover {
            let r = Record {
                ts: o.ts,
                dur: Some(0),
                ph: 'X',
                pid: o.txn,
                tid: o.site,
                name: format!("force {:?} (incomplete)", o.label),
                args: vec![("site", o.site.to_string())],
            };
            self.write_record(&r)?;
        }
        self.out.write_all(b"]}")?;
        Ok(self.out)
    }
}

/// Serialize a buffered trace to Chrome trace-event JSON (object form,
/// with a `traceEvents` array), loadable in `chrome://tracing` or
/// Perfetto. Delegates to [`ChromeWriter`], so the output is
/// byte-identical to what [`ChromeStreamSink`] writes for the same
/// event sequence.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut w = ChromeWriter::new(Vec::new()).expect("writing to a Vec cannot fail");
    for e in &trace.events {
        w.event(e).expect("writing to a Vec cannot fail");
    }
    let bytes = w.finish().expect("writing to a Vec cannot fail");
    String::from_utf8(bytes).expect("the writer emits UTF-8")
}

/// A [`TraceSink`] that streams Chrome trace-event JSON to a file as
/// the run progresses, with memory bounded by the number of in-flight
/// forced writes rather than the run length.
///
/// I/O errors are latched on first occurrence (the sink goes quiet) and
/// surfaced by [`ChromeStreamSink::into_result`]; a sink cannot return
/// errors from inside the engine's event loop without perturbing the
/// simulation it is observing.
pub struct ChromeStreamSink {
    writer: Option<ChromeWriter<io::BufWriter<std::fs::File>>>,
    events: u64,
    max_open_forces: usize,
    error: Option<io::Error>,
}

impl ChromeStreamSink {
    /// Create (truncating) `path` and write the JSON preamble.
    ///
    /// # Errors
    /// Returns the error if the file cannot be created or written.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let writer = ChromeWriter::new(io::BufWriter::new(file))?;
        Ok(ChromeStreamSink {
            writer: Some(writer),
            events: 0,
            max_open_forces: 0,
            error: None,
        })
    }

    /// Events successfully serialized so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Consume the sink: the number of events written, or the first
    /// I/O error encountered.
    ///
    /// # Errors
    /// Returns the first write error hit during the run, if any.
    pub fn into_result(self) -> io::Result<u64> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.events),
        }
    }
}

impl TraceSink for ChromeStreamSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            match w.event(event) {
                Ok(()) => {
                    self.events += 1;
                    self.max_open_forces = self.max_open_forces.max(w.max_open_forces());
                }
                Err(e) => self.error = Some(e),
            }
        }
    }

    fn finish(&mut self) {
        if let Some(w) = self.writer.take() {
            self.max_open_forces = self.max_open_forces.max(w.max_open_forces());
            let flushed = w.finish().and_then(|mut out| io::Write::flush(&mut out));
            if let (Err(e), None) = (flushed, self.error.as_ref()) {
                self.error = Some(e);
            }
        }
    }
}

impl ChromeStreamSink {
    /// High-water mark of forced writes buffered while streaming — the
    /// sink's only event-derived memory (see [`ChromeWriter`]).
    pub fn max_open_forces(&self) -> usize {
        self.max_open_forces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::trace::{LogLabel, MsgLabel};
    use simkernel::SimTime;

    #[test]
    fn escapes_json_special_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn force_pairs_become_complete_events() {
        let tr = Trace {
            events: vec![
                TraceEvent::ForceLog {
                    at: SimTime(100),
                    txn: 1,
                    label: LogLabel::Prepare,
                    site: 2,
                },
                TraceEvent::LogDone {
                    at: SimTime(350),
                    txn: 1,
                    label: LogLabel::Prepare,
                    site: 2,
                },
            ],
        };
        let json = chrome_trace_json(&tr);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":250"));
    }

    #[test]
    fn unmatched_force_is_kept() {
        let tr = Trace {
            events: vec![TraceEvent::ForceLog {
                at: SimTime(7),
                txn: 4,
                label: LogLabel::MasterCommit,
                site: 0,
            }],
        };
        let json = chrome_trace_json(&tr);
        assert!(json.contains("incomplete"));
        assert!(json.contains("\"dur\":0"));
    }

    #[test]
    fn sends_map_txn_to_pid_and_site_to_tid() {
        let tr = Trace {
            events: vec![TraceEvent::Send {
                at: SimTime(42),
                txn: 9,
                label: MsgLabel::Prepare,
                from: 3,
                to: 5,
                local: false,
            }],
        };
        let json = chrome_trace_json(&tr);
        assert!(json.contains("\"pid\":9"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"ts\":42"));
        assert!(json.contains("\"s\":\"t\""));
        // Metadata names the transaction lane.
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("txn 9"));
    }

    #[test]
    fn metadata_is_emitted_once_per_txn_at_first_sight() {
        let send = |ts: u64, txn: TxnId| TraceEvent::Send {
            at: SimTime(ts),
            txn,
            label: MsgLabel::Prepare,
            from: 0,
            to: 1,
            local: false,
        };
        let tr = Trace {
            events: vec![send(1, 7), send(2, 3), send(3, 7)],
        };
        let json = chrome_trace_json(&tr);
        assert_eq!(json.matches("\"txn 7\"").count(), 1);
        assert_eq!(json.matches("\"txn 3\"").count(), 1);
        // First sight order: txn 7's lane is named before txn 3's.
        assert!(json.find("\"txn 7\"").unwrap() < json.find("\"txn 3\"").unwrap());
    }

    #[test]
    fn incremental_writer_matches_batch_function() {
        let tr = Trace {
            events: vec![
                TraceEvent::ForceLog {
                    at: SimTime(10),
                    txn: 1,
                    label: LogLabel::Prepare,
                    site: 0,
                },
                TraceEvent::Send {
                    at: SimTime(15),
                    txn: 2,
                    label: MsgLabel::VoteYes,
                    from: 1,
                    to: 0,
                    local: false,
                },
                TraceEvent::LogDone {
                    at: SimTime(20),
                    txn: 1,
                    label: LogLabel::Prepare,
                    site: 0,
                },
                TraceEvent::Decided {
                    at: SimTime(25),
                    txn: 1,
                    commit: true,
                },
            ],
        };
        let mut w = ChromeWriter::new(Vec::new()).unwrap();
        for e in &tr.events {
            w.event(e).unwrap();
        }
        let incremental = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(incremental, chrome_trace_json(&tr));
        // The X record for the force is stamped with its issue time
        // even though it is written at durable time.
        assert!(incremental.contains("\"ts\":10"));
        assert!(incremental.contains("\"dur\":10"));
    }

    #[test]
    fn open_force_high_water_mark_is_tracked() {
        let mut w = ChromeWriter::new(Vec::new()).unwrap();
        for site in 0..4 {
            w.event(&TraceEvent::ForceLog {
                at: SimTime(site as u64),
                txn: 1,
                label: LogLabel::Prepare,
                site,
            })
            .unwrap();
        }
        for site in 0..4 {
            w.event(&TraceEvent::LogDone {
                at: SimTime(10 + site as u64),
                txn: 1,
                label: LogLabel::Prepare,
                site,
            })
            .unwrap();
        }
        assert_eq!(w.max_open_forces(), 4);
        w.finish().unwrap();
    }
}
