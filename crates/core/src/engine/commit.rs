//! Commit-phase state machines: master and cohort sides of every
//! protocol (2PC, PA, PC, 3PC, linear 2PC, their OPT variants, the
//! CENT/DPCC baselines, and the replicated family).
//!
//! This file is a generic *interpreter* of the declarative protocol
//! table ([`commitproto::SpecTable`]): every protocol-specific
//! difference — which records are forced, who acknowledges what, how
//! phase-1 messages are routed, who takes over on a crash — is a
//! column of the table, never a `match` on the protocol name.

use super::types::{CohortH, CohortId, CohortPhase, LogWork, MsgKind, TxnH, TxnPhase, Vote};
use super::Simulation;
use crate::config::TransType;
use crate::metrics::AbortReason;
use commitproto::{Routing, Takeover};

impl Simulation {
    // ------------------------------------------------------------------
    // Master: execution-phase completion
    // ------------------------------------------------------------------

    /// A WORKDONE arrived (possibly stale if the transaction aborted
    /// while the message was in flight, or a duplicate — WORKDONE rides
    /// its own retransmission timer under message loss, so a late
    /// resend can trail the copy that got through).
    pub(crate) fn master_workdone(&mut self, txn: TxnH, cohort: CohortH) {
        if !self.txns.contains(txn) {
            return;
        }
        let Some(c) = self.cohorts.get_mut(cohort) else {
            debug_assert!(
                self.cfg.failures.is_some(),
                "WORKDONE from a dead cohort without faults"
            );
            return;
        };
        if c.wd_seen {
            debug_assert!(
                self.cfg.failures.is_some(),
                "duplicate WORKDONE without faults"
            );
            return;
        }
        c.wd_seen = true;
        let t = self.txns.get_mut(txn).expect("checked above");
        debug_assert_eq!(t.phase, TxnPhase::Executing);
        t.pending_workdone -= 1;
        // Sequential transactions chain the next cohort off each
        // WORKDONE (§4.1).
        if self.cfg.trans_type == TransType::Sequential && t.next_seq_cohort < t.cohorts.len() {
            let next = t.cohorts[t.next_seq_cohort];
            t.next_seq_cohort += 1;
            let home = t.home;
            self.start_cohort(next, home);
            return;
        }
        if t.pending_workdone == 0 {
            self.begin_commit(txn);
        }
    }

    /// All cohorts reported: start commit processing.
    fn begin_commit(&mut self, txn: TxnH) {
        let now = self.cal.now();
        let t = self.txns.get_mut(txn).expect("live txn");
        t.commit_started = Some(now);
        let home = t.home;
        if !self.table.voting {
            // Baselines: the whole commit is one forced decision record
            // at the master (§5.1).
            t.phase = TxnPhase::LoggingDecision { commit: true };
            self.force_log(home, LogWork::MasterDecision { txn, commit: true });
        } else if self.table.init_record {
            // Presumed Commit force-writes the collecting record before
            // the first phase (§2.3).
            t.phase = TxnPhase::Collecting;
            self.force_log(home, LogWork::MasterCollecting { txn });
        } else if self.table.routing == Routing::Chain {
            // Linear 2PC: start the chain at the first (local) cohort.
            t.phase = TxnPhase::Voting;
            let first = t.cohorts[0];
            let site = self.cohorts[first].site;
            self.send(home, site, MsgKind::ChainPrepare { cohort: first });
        } else {
            self.send_prepares(txn);
        }
    }

    // ------------------------------------------------------------------
    // Linear 2PC chain plumbing
    // ------------------------------------------------------------------

    /// The chain neighbours of a cohort: `(predecessor, successor)`
    /// cohorts in the transaction's chain order.
    fn chain_neighbours(&self, cohort: CohortH) -> (Option<CohortH>, Option<CohortH>) {
        let txn = &self.txns[self.cohorts[cohort].txn];
        let pos = txn
            .cohorts
            .iter()
            .position(|&c| c == cohort)
            .expect("cohort in its txn");
        let pred = if pos > 0 {
            Some(txn.cohorts[pos - 1])
        } else {
            None
        };
        let succ = txn.cohorts.get(pos + 1).copied();
        (pred, succ)
    }

    /// A freshly prepared linear cohort: pass PREPARE down the chain,
    /// or — at the chain's end with every cohort prepared — turn the
    /// message flow around with the commit decision.
    fn linear_forward(&mut self, cohort: CohortH) {
        let (_, succ) = self.chain_neighbours(cohort);
        let site = self.cohorts[cohort].site;
        match succ {
            Some(next) => {
                let next_site = self.cohorts[next].site;
                self.send(site, next_site, MsgKind::ChainPrepare { cohort: next });
            }
            None => {
                // Everyone upstream (and this cohort) is prepared: the
                // global decision is commit; this cohort implements it
                // first and the decision rides the chain back.
                self.cohort_decision(cohort, true, 0);
            }
        }
    }

    /// A linear cohort finished implementing the decision: pass it
    /// backward, or hand it to the master at the chain's head.
    fn linear_backward(&mut self, cohort: CohortH, txn: TxnH, site: usize, commit: bool) {
        let (pred, _) = self.chain_neighbours(cohort);
        match pred {
            Some(prev) => {
                let prev_site = self.cohorts[prev].site;
                self.send(
                    site,
                    prev_site,
                    MsgKind::ChainDecision {
                        cohort: prev,
                        commit,
                    },
                );
            }
            None => {
                let home = self.txns[txn].home;
                self.send(site, home, MsgKind::ChainBack { txn, commit });
            }
        }
    }

    /// The decision reached the master at the end of the backward pass:
    /// force the master record; `master_decided` then completes the
    /// transaction (commit) or aborts the cohorts the forward chain
    /// never reached (abort).
    pub(crate) fn master_chain_back(&mut self, txn: TxnH, commit: bool) {
        self.decide_now(txn, commit);
    }

    /// PC's collecting record hit the disk: now run the vote.
    pub(crate) fn master_collected(&mut self, txn: TxnH) {
        self.send_prepares(txn);
    }

    fn send_prepares(&mut self, txn: TxnH) {
        let group = 2 * self.rep_f() as usize + 1;
        let quorum = self.table.routing == Routing::Quorum;
        let t = self.txns.get_mut(txn).expect("live txn");
        t.phase = TxnPhase::Voting;
        t.pending_votes = t.cohorts.len();
        if quorum {
            // Quorum routing: votes bypass the master and fan out to
            // the `2F+1` acceptors of the home shard's replica group.
            // Each acceptor waits for every cohort's vote, forces its
            // bundle, and reports ACCEPTED to the leader (the master,
            // co-located with acceptor 0).
            t.acc_pending = vec![t.cohorts.len() as u32; group];
            t.accepts_outstanding = group;
        }
        let home = t.home;
        let targets: Vec<(CohortH, usize)> = t
            .cohorts
            .iter()
            .map(|&c| (c, self.cohorts[c].site))
            .collect();
        for (cohort, site) in targets {
            self.send(home, site, MsgKind::Prepare { cohort });
        }
    }

    // ------------------------------------------------------------------
    // Cohort: voting phase
    // ------------------------------------------------------------------

    /// PREPARE arrived at a cohort: release read locks, then vote.
    /// With probability `cohort_abort_prob` the vote is a surprise NO
    /// (§5.7); otherwise the cohort force-writes its prepare record.
    pub(crate) fn cohort_prepare(&mut self, cohort: CohortH, attempt: u32) {
        // Under message loss PREPAREs are retransmitted on a timer, so a
        // duplicate can reach a cohort that already acted on the first
        // copy (or finished entirely). Without fault injection a stale
        // PREPARE is still an engine bug.
        let Some(c) = self.cohorts.get_mut(cohort) else {
            debug_assert!(self.cfg.failures.is_some(), "stale PREPARE without faults");
            return;
        };
        if attempt > c.req_attempt {
            c.req_attempt = attempt;
        }
        if c.down {
            // Crashed: the request reached the site (req_attempt above
            // is on record), but the answer waits for recovery.
            return;
        }
        if c.phase != CohortPhase::WorkDone {
            debug_assert!(
                self.cfg.failures.is_some(),
                "PREPARE in {:?} without faults",
                c.phase
            );
            // A duplicate of a PREPARE that already arrived — the timer
            // keeps firing until the master holds the vote, so the lost
            // leg may have been the *reply*: re-elicit it.
            match c.phase {
                CohortPhase::Parted => self.resend_parting_reply(cohort),
                CohortPhase::Prepared => {
                    let (site, txn, req) = (c.site, c.txn, c.req_attempt);
                    let control = self.txns[txn].control_site();
                    self.send_attempt(
                        site,
                        control,
                        MsgKind::Vote {
                            txn,
                            cohort,
                            vote: Vote::Yes,
                        },
                        req,
                    );
                }
                // Preparing: the vote follows once the prepare record
                // is durable (stamped with the updated req_attempt).
                // Later phases need no first-phase reply at all.
                _ => {}
            }
            return;
        }
        let (site, txn, owner, acc_index) = (c.site, c.txn, c.lock_owner, c.acc_index);
        let req = c.req_attempt;

        // Read-Only optimization (§3.2): a cohort with no updates has
        // nothing to make durable — it releases everything, answers
        // READ, and is finished with the protocol.
        if self.cfg.read_only_optimization
            && self.txns[txn].template.accesses[acc_index]
                .iter()
                .all(|a| !a.update)
        {
            let home = self.txns[txn].home;
            let locks = &mut self.sites[site].locks;
            debug_assert!(!locks.has_live_borrows(owner), "shelf rule was bypassed");
            locks.drop_borrower(owner);
            let grants = locks.release_all(owner);
            self.process_grants(site, grants);
            let reply = MsgKind::Vote {
                txn,
                cohort,
                vote: Vote::ReadOnly,
            };
            self.send_attempt(site, home, reply, req);
            self.part_or_done(cohort, reply);
            return;
        }

        // "the cohort releases all its read locks but retains its update
        // locks until it receives and implements the global decision"
        let grants = self.sites[site].locks.release_read_locks(owner);
        self.process_grants(site, grants);

        let votes_no =
            self.cfg.cohort_abort_prob > 0.0 && self.rng.chance(self.cfg.cohort_abort_prob);
        let c = self.cohorts.get_mut(cohort).expect("exists");
        if votes_no {
            c.phase = CohortPhase::Deciding { commit: false };
            if self.table.no_vote_abort_forced {
                self.force_log(site, LogWork::CohortNoVoteAbort { cohort });
            } else {
                self.cohort_no_vote_finish(cohort);
            }
        } else {
            c.phase = CohortPhase::Preparing;
            self.force_log(site, LogWork::CohortPrepare { cohort });
        }
    }

    /// A NO voter's unilateral abort is complete (after its forced abort
    /// record, if the protocol requires one): vote NO and vanish.
    pub(crate) fn cohort_no_vote_finish(&mut self, cohort: CohortH) {
        let c = self.cohorts.get(cohort).expect("live cohort");
        let (site, txn, owner, req) = (c.site, c.txn, c.lock_owner, c.req_attempt);
        let home = self.txns[txn].home;
        // A NO voter was never prepared, so it cannot have lent data;
        // it may itself have borrowed (all lenders committed, or it
        // could not have sent WORKDONE).
        let locks = &mut self.sites[site].locks;
        assert!(
            locks.borrowers_of(owner).next().is_none(),
            "NO voter lent data"
        );
        locks.drop_borrower(owner);
        let grants = locks.release_all(owner);
        self.process_grants(site, grants);
        match self.table.routing {
            Routing::Chain => {
                // The veto turns the chain around: predecessors (all
                // prepared) abort one by one; the master aborts whoever
                // the forward pass never reached. (Chain routing rejects
                // fault injection, so there is no parting to consider.)
                self.linear_backward(cohort, txn, site, false);
                self.cohort_done(cohort);
            }
            Routing::Quorum => {
                // The NO goes to every acceptor; the abort decision
                // comes out of the accept round, so the NO voter is
                // finished (its vote legs are loss-exempt — see
                // `loss_eligible` — hence no parting).
                self.quorum_vote(cohort, txn, false);
                self.cohort_done(cohort);
            }
            Routing::Direct => {
                let reply = MsgKind::Vote {
                    txn,
                    cohort,
                    vote: Vote::No,
                };
                self.send_attempt(site, home, reply, req);
                self.part_or_done(cohort, reply);
            }
        }
    }

    /// The prepare record is on disk: the cohort is now *prepared* —
    /// under OPT its update locks become lendable — and votes YES.
    pub(crate) fn cohort_prepared(&mut self, cohort: CohortH) {
        let now = self.cal.now();
        let c = self.cohorts.get_mut(cohort).expect("live cohort");
        debug_assert_eq!(c.phase, CohortPhase::Preparing);
        c.phase = CohortPhase::Prepared;
        c.prepared_since = Some(now);
        let (site, txn, owner, cid) = (c.site, c.txn, c.lock_owner, c.id);
        let txn_ext = self.txns[txn].id;
        self.trace_event(txn_ext, |at| super::trace::TraceEvent::Prepared {
            at,
            txn: txn_ext,
            cohort: cid,
            site,
        });
        // Cohort-crash injection point #1: the prepare record is
        // durable, but the cohort dies before lending its locks or
        // voting. The master cannot decide with the vote outstanding,
        // so it waits; recovery replays the record and re-votes.
        if self.cohort_crash_roll(cohort, txn) {
            return;
        }
        let home = self.txns[txn].home;
        let grants = self.sites[site].locks.mark_prepared(owner);
        self.process_grants(site, grants);
        match self.table.routing {
            Routing::Chain => self.linear_forward(cohort),
            Routing::Quorum => self.quorum_vote(cohort, txn, true),
            Routing::Direct => {
                let req = self.cohorts[cohort].req_attempt;
                self.send_attempt(
                    site,
                    home,
                    MsgKind::Vote {
                        txn,
                        cohort,
                        vote: Vote::Yes,
                    },
                    req,
                );
            }
        }
    }

    /// Quorum routing: fan this cohort's vote out to every acceptor of
    /// the home shard's replica group (acceptor 0 is the leader's own
    /// site, so that leg is a free local transfer for the home cohort).
    fn quorum_vote(&mut self, cohort: CohortH, txn: TxnH, yes: bool) {
        let site = self.cohorts[cohort].site;
        let home = self.txns[txn].home;
        for acc in 0..(2 * self.rep_f() + 1) {
            let acc_site = self.acceptor_site(home, acc);
            self.send(site, acc_site, MsgKind::PaxosVote { txn, acc, yes });
        }
    }

    /// Roll for a cohort crash at one of the replay points (work
    /// finished in the execution phase / prepare record durable /
    /// precommit record durable). On a hit the cohort goes silent —
    /// locks held, nothing lent, no answer to the master — and a
    /// restart is scheduled `cohort_recovery_time` later.
    pub(crate) fn cohort_crash_roll(&mut self, cohort: CohortH, txn: TxnH) -> bool {
        let Some(f) = self.cfg.failures else {
            return false;
        };
        self.cohort_crash_roll_p(cohort, txn, f.cohort_crash_prob)
    }

    /// The execution-phase crash window (cohort dies before its
    /// WORKDONE leaves). Same machinery as the replay points, but the
    /// probability can be tuned — or switched off — independently via
    /// [`crate::config::FailureConfig::exec_crash_prob`].
    pub(crate) fn exec_crash_roll(&mut self, cohort: CohortH, txn: TxnH) -> bool {
        let Some(f) = self.cfg.failures else {
            return false;
        };
        let p = f.exec_crash_prob.unwrap_or(f.cohort_crash_prob);
        self.cohort_crash_roll_p(cohort, txn, p)
    }

    fn cohort_crash_roll_p(&mut self, cohort: CohortH, txn: TxnH, p: f64) -> bool {
        let f = self.cfg.failures.expect("caller checked");
        if p == 0.0 {
            return false;
        }
        // Correlated-failure scope: with `crash-region=R`, only cohorts
        // at sites of topology region R may crash. The gate sits before
        // the trial bump *and* the RNG roll, so the trial counter
        // reflects eligible rolls only and the random stream is exactly
        // the eligible subsequence — a run with every site in region R
        // is bit-identical to an unscoped one.
        if let Some(r) = f.crash_region {
            let t = self.cfg.topology.expect("validate() requires a topology");
            let site = self.cohorts[cohort].site;
            if t.region_of(site, self.sites.len()) != r {
                return false;
            }
        }
        self.metrics.cohort_crash_trials.bump();
        if !self.rng.chance(p) {
            return false;
        }
        let now = self.cal.now();
        self.metrics.cohort_crashes.bump();
        let c = self.cohorts.get_mut(cohort).expect("live cohort");
        c.down = true;
        let (cid, site) = (c.id, c.site);
        let t = self.txns.get_mut(txn).expect("live txn");
        t.crashed = true;
        t.crashed_at.get_or_insert(now);
        let txn_ext = t.id;
        self.trace_event(txn_ext, |at| super::trace::TraceEvent::CohortCrashed {
            at,
            txn: txn_ext,
            cohort: cid,
            site,
        });
        self.cal.schedule_in(
            f.cohort_recovery_time,
            super::types::Event::CohortRecovered { cohort },
        );
        true
    }

    /// A crashed cohort restarted: re-read the last forced log record
    /// and rejoin the protocol per the presumption rules
    /// ([`commitproto::BaseProtocol::recovery_action`]). A cohort that
    /// crashed past its prepare record is guaranteed to still exist —
    /// the master cannot have decided with its vote (or precommit ack)
    /// outstanding — but one that crashed in the *execution* phase may
    /// be gone: its transaction can be aborted meanwhile (deadlock
    /// victim, borrower cascade), tearing the cohort down.
    pub(crate) fn cohort_recovered(&mut self, cohort: CohortH) {
        let Some(c) = self.cohorts.get_mut(cohort) else {
            debug_assert!(
                self.cfg.failures.is_some(),
                "stale cohort recovery without faults"
            );
            return;
        };
        c.down = false;
        let (site, txn, phase, owner, cid, req) =
            (c.site, c.txn, c.phase, c.lock_owner, c.id, c.req_attempt);
        let txn_ext = self.txns[txn].id;
        self.trace_event(txn_ext, |at| super::trace::TraceEvent::CohortRecovered {
            at,
            txn: txn_ext,
            cohort: cid,
        });
        let record = match phase {
            CohortPhase::Prepared => commitproto::RecoveryRecord::Prepared,
            CohortPhase::Precommitted => commitproto::RecoveryRecord::Precommitted,
            _ => commitproto::RecoveryRecord::None,
        };
        let home = self.txns[txn].home;
        match self.spec.base.recovery_action(record) {
            commitproto::RecoveryAction::ResendVote => {
                // The replayed prepare record re-enters the prepared
                // state: only now do the locks become lendable (a down
                // site cannot serve borrow requests).
                let grants = self.sites[site].locks.mark_prepared(owner);
                self.process_grants(site, grants);
                if self.table.routing == Routing::Quorum {
                    // The crash hit before the vote fan-out left (the
                    // roll precedes the sends), so the acceptors are
                    // still waiting: run the fan-out now, once.
                    self.quorum_vote(cohort, txn, true);
                } else {
                    self.send_attempt(
                        site,
                        home,
                        MsgKind::Vote {
                            txn,
                            cohort,
                            vote: Vote::Yes,
                        },
                        req,
                    );
                }
            }
            commitproto::RecoveryAction::ResendPreAck => {
                self.send_attempt(site, home, MsgKind::PreAck { txn, cohort }, req);
            }
            commitproto::RecoveryAction::PresumeAbort => {
                // No forced record to replay: the crash hit in the
                // execution phase, the cohort's volatile state is gone,
                // and the presumption rules abort the transaction. The
                // master could not have started voting with this
                // cohort's WORKDONE outstanding, so the incarnation is
                // still abortable; it restarts with its template.
                debug_assert_eq!(phase, CohortPhase::Executing);
                self.abort_txn(txn, crate::metrics::AbortReason::CohortCrash);
            }
        }
    }

    // ------------------------------------------------------------------
    // Master: vote collection and decision
    // ------------------------------------------------------------------

    pub(crate) fn master_vote(&mut self, txn: TxnH, cohort: CohortH, vote: Vote) {
        if self.lossy() {
            // Dedup under message loss: a re-elicited vote can trail
            // the copy that got through. The receipt flag screens
            // duplicates regardless of phase — a parted YES voter is
            // awaiting its ACK receipt, so a trailing stale vote must
            // NOT retire (or re-count) it. READ/NO voters part *when*
            // they vote, so their first receipt retires the slab entry
            // and later duplicates miss it.
            match self.cohorts.get_mut(cohort) {
                None => return,
                Some(c) => {
                    if c.vote_seen {
                        return;
                    }
                    c.vote_seen = true;
                    if c.phase == CohortPhase::Parted {
                        self.cohorts.remove(cohort);
                    }
                }
            }
        }
        let t = self.txns.get_mut(txn).expect("no stale votes");
        debug_assert_eq!(t.phase, TxnPhase::Voting);
        if vote == Vote::No {
            t.no_vote = true;
        }
        t.pending_votes -= 1;
        if t.pending_votes > 0 {
            return;
        }
        let no_vote = t.no_vote;
        let cohort_hs = t.cohorts.clone();
        // Phase-two participants: cohorts still alive (READ voters
        // already left the slab — via `cohort_done`, or via parting
        // once their vote was received above).
        let participants = cohort_hs
            .iter()
            .filter(|&&c| {
                self.cohorts
                    .get(c)
                    .is_some_and(|x| x.phase != CohortPhase::Parted)
            })
            .count();
        if no_vote {
            self.decide(txn, false);
        } else if participants == 0 {
            // Fully read-only transaction under the Read-Only
            // optimization: one-phase commit, no decision record.
            self.master_decided(txn, true);
        } else if self.table.precommit {
            let t = self.txns.get_mut(txn).expect("live txn");
            let home = t.home;
            t.phase = TxnPhase::Precommitting;
            self.force_log(home, LogWork::MasterPrecommit { txn });
        } else {
            self.decide(txn, true);
        }
    }

    /// 3PC: the master's precommit record is on disk — run the
    /// precommit round (participants only; READ voters dropped out).
    pub(crate) fn master_precommit_logged(&mut self, txn: TxnH) {
        let t = self.txns.get_mut(txn).expect("live txn");
        let home = t.home;
        let targets: Vec<(CohortH, usize)> = t
            .cohorts
            .iter()
            .filter_map(|&c| {
                self.cohorts
                    .get(c)
                    .filter(|x| x.phase != CohortPhase::Parted)
                    .map(|x| (c, x.site))
            })
            .collect();
        let t = self.txns.get_mut(txn).expect("live txn");
        t.pending_preacks = targets.len();
        for (cohort, site) in targets {
            self.send(home, site, MsgKind::PreCommit { cohort });
        }
    }

    pub(crate) fn cohort_precommit(&mut self, cohort: CohortH, attempt: u32) {
        let Some(c) = self.cohorts.get_mut(cohort) else {
            debug_assert!(
                self.cfg.failures.is_some(),
                "stale PRECOMMIT without faults"
            );
            return;
        };
        if attempt > c.req_attempt {
            c.req_attempt = attempt;
        }
        if c.down {
            return;
        }
        if c.phase != CohortPhase::Prepared {
            // A retransmitted PRECOMMIT reached a cohort already past
            // the prepared state — a duplicate. The timer keeps firing
            // until the master holds the PREACK, so if the cohort is
            // already precommitted the lost leg was the reply:
            // re-elicit it.
            debug_assert!(
                self.cfg.failures.is_some(),
                "PRECOMMIT in {:?} without faults",
                c.phase
            );
            if c.phase == CohortPhase::Precommitted {
                let (site, txn, req) = (c.site, c.txn, c.req_attempt);
                let home = self.txns[txn].home;
                self.send_attempt(site, home, MsgKind::PreAck { txn, cohort }, req);
            }
            return;
        }
        c.phase = CohortPhase::Precommitting;
        let site = c.site;
        self.force_log(site, LogWork::CohortPrecommit { cohort });
    }

    pub(crate) fn cohort_precommitted(&mut self, cohort: CohortH) {
        let c = self.cohorts.get_mut(cohort).expect("live cohort");
        c.phase = CohortPhase::Precommitted;
        let (site, txn, req) = (c.site, c.txn, c.req_attempt);
        // Cohort-crash injection point #2: the precommit record is
        // durable but the ack never leaves. Recovery re-announces the
        // precommitted state.
        if self.cohort_crash_roll(cohort, txn) {
            return;
        }
        let home = self.txns[txn].home;
        self.send_attempt(site, home, MsgKind::PreAck { txn, cohort }, req);
    }

    pub(crate) fn master_preack(&mut self, txn: TxnH, cohort: CohortH) {
        if self.lossy() {
            // Dedup: re-elicited PREACKs can trail the original.
            let Some(c) = self.cohorts.get_mut(cohort) else {
                return;
            };
            if c.preack_seen {
                return;
            }
            c.preack_seen = true;
        }
        let t = self.txns.get_mut(txn).expect("live txn");
        t.pending_preacks -= 1;
        if t.pending_preacks == 0 {
            self.decide(txn, true);
        }
    }

    /// Take the global decision. When failure injection is active, a
    /// committing master may crash here — the classic blocking window:
    /// votes (and, for 3PC, preacks) collected, decision not yet
    /// announced. Blocking protocols stall until the master recovers;
    /// 3PC's cohorts detect the crash and terminate on their own.
    fn decide(&mut self, txn: TxnH, commit: bool) {
        if commit {
            if let Some(f) = self.cfg.failures {
                if f.master_crash_prob > 0.0 && self.table.voting {
                    self.metrics.master_crash_trials.bump();
                    if self.rng.chance(f.master_crash_prob) {
                        let now = self.cal.now();
                        self.metrics.master_crashes.bump();
                        let t = self.txns.get_mut(txn).expect("live txn");
                        t.crashed = true;
                        t.crashed_at.get_or_insert(now);
                        let txn_ext = t.id;
                        self.trace_event(txn_ext, |at| super::trace::TraceEvent::MasterCrashed {
                            at,
                            txn: txn_ext,
                        });
                        // Can the survivors finish without the crashed
                        // coordinator? Leader failover needs a live
                        // backup acceptor — the F=0 degenerate case
                        // blocks exactly like 2PC.
                        let survivors_take_over = match self.table.takeover {
                            Takeover::Block => false,
                            Takeover::CohortTermination => true,
                            Takeover::LeaderFailover => self.rep_f() > 0,
                        };
                        if survivors_take_over {
                            self.cal.schedule_in(
                                f.detection_timeout,
                                super::types::Event::StartTermination { txn },
                            );
                        } else {
                            self.cal.schedule_in(
                                f.recovery_time,
                                super::types::Event::MasterRecovered { txn, commit },
                            );
                        }
                        return;
                    }
                }
            }
        }
        self.decide_now(txn, commit);
    }

    /// The crash-free decision path: force the decision record first
    /// when the protocol requires it (PA skips the forced write on
    /// abort). Also the resumption point after a master recovery.
    pub(crate) fn decide_now(&mut self, txn: TxnH, commit: bool) {
        if self.table.master_decision_forced.on(commit) {
            let t = self.txns.get_mut(txn).expect("live txn");
            t.phase = TxnPhase::LoggingDecision { commit };
            let control = t.control_site();
            self.force_log(control, LogWork::MasterDecision { txn, commit });
        } else {
            self.master_decided(txn, commit);
        }
    }

    // ------------------------------------------------------------------
    // Failure handling: recovery and 3PC termination
    // ------------------------------------------------------------------

    /// The survivors detected the coordinator crash: run the takeover
    /// round the table prescribes — cohort termination (3PC) or leader
    /// failover (Paxos Commit). Both count as termination rounds in the
    /// fault report.
    pub(crate) fn start_termination(&mut self, txn: TxnH) {
        self.metrics.termination_rounds.bump();
        if self.table.takeover == Takeover::LeaderFailover {
            self.start_leader_failover(txn);
        } else {
            self.start_cohort_termination(txn);
        }
    }

    /// The 3PC termination protocol (§2.4's non-blocking guarantee):
    /// the surviving cohorts elect the lowest-site cohort as
    /// coordinator; it collects everyone's state and decides. At the
    /// modeled crash point every cohort is precommitted, so the
    /// termination rule decides commit.
    fn start_cohort_termination(&mut self, txn: TxnH) {
        let t = self.txns.get(txn).expect("live txn");
        debug_assert!(self.table.precommit);
        let txn_ext = t.id;
        let mut live: Vec<(CohortH, usize, CohortId)> = t
            .cohorts
            .iter()
            .filter_map(|&c| {
                self.cohorts
                    .get(c)
                    .filter(|x| x.phase != CohortPhase::Parted)
                    .map(|x| (c, x.site, x.id))
            })
            .collect();
        live.sort_by_key(|&(_, site, cid)| (site, cid));
        let (_, coord_site, coordinator) = live[0];
        self.trace_event(txn_ext, |at| super::trace::TraceEvent::TerminationStarted {
            at,
            txn: txn_ext,
            coordinator,
        });
        let t = self.txns.get_mut(txn).expect("live txn");
        t.coordinator_site = Some(coord_site);
        t.pending_term_reps = live.len() - 1;
        if t.pending_term_reps == 0 {
            self.coordinator_decides(txn);
            return;
        }
        for &(cohort, site, _) in &live[1..] {
            self.send(coord_site, site, MsgKind::TermStateReq { cohort });
        }
    }

    /// A cohort answers the termination coordinator's state request.
    pub(crate) fn cohort_term_state_req(&mut self, cohort: CohortH) {
        let c = self.cohorts.get(cohort).expect("live cohort");
        debug_assert_eq!(c.phase, CohortPhase::Precommitted);
        let (site, txn) = (c.site, c.txn);
        let control = self.txns[txn].control_site();
        self.send(site, control, MsgKind::TermStateRep { txn });
    }

    /// The coordinator collected a state report.
    pub(crate) fn coordinator_term_state_rep(&mut self, txn: TxnH) {
        let t = self.txns.get_mut(txn).expect("live txn");
        debug_assert!(t.pending_term_reps > 0);
        t.pending_term_reps -= 1;
        if t.pending_term_reps == 0 {
            self.coordinator_decides(txn);
        }
    }

    /// All states collected (everyone precommitted): the coordinator
    /// force-writes the commit record at its own site and takes over
    /// the rest of the protocol.
    fn coordinator_decides(&mut self, txn: TxnH) {
        self.decide_now(txn, true);
    }

    /// Paxos Commit's leader failover (Gray & Lamport §5): the first
    /// backup acceptor becomes leader after the detection timeout,
    /// reads the accepted states of a majority (its own bundle plus `F`
    /// of the remaining `2F-1` acceptors), and completes the protocol.
    /// The crash point is past the accept quorum, so the outcome the
    /// new leader reads is commit. Protocol control — decision fan-out,
    /// ACK collection — moves to the new leader's site.
    fn start_leader_failover(&mut self, txn: TxnH) {
        let f = self.rep_f();
        debug_assert!(f > 0, "F=0 blocks; the crash path never gets here");
        let t = self.txns.get(txn).expect("live txn");
        let (txn_ext, home) = (t.id, t.home);
        let leader = self.acceptor_site(home, 1);
        self.trace_event(txn_ext, |at| super::trace::TraceEvent::FailoverStarted {
            at,
            txn: txn_ext,
            leader,
        });
        let t = self.txns.get_mut(txn).expect("live txn");
        t.coordinator_site = Some(leader);
        t.pending_term_reps = f as usize;
        // Query every remaining acceptor (the new leader cannot know
        // which are alive); the first F replies complete the majority
        // and the surplus is ignored on arrival.
        for acc in 2..(2 * f + 1) {
            let site = self.acceptor_site(home, acc);
            self.send(leader, site, MsgKind::AccStateReq { txn, acc });
        }
    }

    /// An acceptor answers the new leader's state query. Every vote
    /// reached every acceptor before the accept quorum formed, so the
    /// report is immediate — its content (all YES at the modeled crash
    /// point) is implied and the message itself is what costs.
    pub(crate) fn acceptor_state_req(&mut self, txn: TxnH, acc: u32) {
        let Some(t) = self.txns.get(txn) else {
            debug_assert!(self.cfg.failures.is_some(), "stale state query");
            return;
        };
        let home = t.home;
        let control = t.control_site();
        let site = self.acceptor_site(home, acc);
        self.send(site, control, MsgKind::AccStateRep { txn });
    }

    /// The new leader collected an acceptor's state report; at a
    /// majority it decides. Surplus reports (the queries went to all
    /// `2F-1` remaining acceptors) arrive after the decision and are
    /// dropped here.
    pub(crate) fn leader_acc_state_rep(&mut self, txn: TxnH) {
        let Some(t) = self.txns.get_mut(txn) else {
            return;
        };
        if t.pending_term_reps == 0 {
            return;
        }
        t.pending_term_reps -= 1;
        if t.pending_term_reps == 0 {
            self.decide_now(txn, true);
        }
    }

    /// **The decision point.** On commit this is where throughput is
    /// counted and the closed loop submits the next transaction; on
    /// abort the transaction is rescheduled after the adaptive delay.
    pub(crate) fn master_decided(&mut self, txn: TxnH, commit: bool) {
        let now = self.cal.now();
        let txn_ext = self.txns[txn].id;
        self.trace_event(txn_ext, |at| super::trace::TraceEvent::Decided {
            at,
            txn: txn_ext,
            commit,
        });
        let t = self.txns.get_mut(txn).expect("live txn");
        t.phase = TxnPhase::Decided { commit };
        t.decided_at = Some(now);
        let home = t.home;
        let control = t.control_site();
        let commit_started = t.commit_started;
        self.metrics.live_txns.add(now, -1.0);

        if commit {
            let response = now.since(t.original_birth);
            let attempt = now.since(t.birth);
            let birth = t.birth;
            self.resp_estimate.record(response.as_secs_f64());
            self.metrics.record_commit(now, response, attempt);
            self.series_note_commit(home);
            // Phase split: execution runs from (re)submission to the
            // start of commit processing; voting from there to the
            // decision. Baselines without a voting phase start commit
            // processing at the decision point itself.
            let started = commit_started.unwrap_or(now);
            self.metrics.phase_execution.record(started.since(birth));
            self.metrics.phase_voting.record(now.since(started));
            self.cal.schedule_now(super::types::Event::Submit {
                home,
                template: None,
                original_birth: None,
            });
            self.note_commit_for_run_control();
        } else {
            self.metrics.record_abort(AbortReason::SurpriseVote);
            self.trace_event(txn_ext, |at| super::trace::TraceEvent::Aborted {
                at,
                txn: txn_ext,
            });
            let t = self.txns.get(txn).expect("live txn");
            let template = t.template.clone();
            let original_birth = t.original_birth;
            let delay = self.restart_delay();
            self.cal.schedule_in(
                delay,
                super::types::Event::Submit {
                    home,
                    template: Some(Box::new(template)),
                    original_birth: Some(original_birth),
                },
            );
        }

        if !self.table.voting {
            // Baselines: commit processing is the single decision
            // record — every cohort completes instantly, no messages
            // (§5.1).
            debug_assert!(commit);
            let cohort_hs = self.txns[txn].cohorts.clone();
            for ch in cohort_hs {
                self.baseline_finish_cohort(ch);
            }
            let t = self.txns.get_mut(txn).expect("live txn");
            t.master_done = true;
            self.try_cleanup(txn);
        } else {
            // Send the decision to the surviving (prepared /
            // precommitted) cohorts; NO voters aborted unilaterally.
            let t = &self.txns[txn];
            let targets: Vec<(CohortH, usize)> = t
                .cohorts
                .iter()
                .filter_map(|&ch| {
                    self.cohorts
                        .get(ch)
                        .filter(|c| c.phase != CohortPhase::Parted)
                        .map(|c| (ch, c.site))
                })
                .collect();
            let acks = if self.table.cohort_ack.on(commit) {
                targets.len()
            } else {
                0
            };
            let t = self.txns.get_mut(txn).expect("live txn");
            t.pending_acks = acks;
            t.master_done = acks == 0;
            for (cohort, site) in targets {
                self.send(control, site, MsgKind::Decision { cohort, commit });
            }
            self.try_cleanup(txn);
        }
    }

    /// CENT/DPCC: a cohort's instant completion at the decision point.
    fn baseline_finish_cohort(&mut self, cohort: CohortH) {
        let c = self.cohorts.get(cohort).expect("live cohort");
        let (site, txn, owner, acc_index) = (c.site, c.txn, c.lock_owner, c.acc_index);
        let writes: Vec<(usize, u64)> = self.txns[txn].template.accesses[acc_index]
            .iter()
            .filter(|a| a.update)
            .map(|a| (site, a.page))
            .collect();
        let grants = self.sites[site].locks.release_all(owner);
        self.process_grants(site, grants);
        self.enqueue_deferred_writes(&writes);
        self.cohort_done(cohort);
    }

    // ------------------------------------------------------------------
    // Cohort: decision phase
    // ------------------------------------------------------------------

    /// The global decision arrived at a prepared (or precommitted)
    /// cohort.
    pub(crate) fn cohort_decision(&mut self, cohort: CohortH, commit: bool, attempt: u32) {
        let now = self.cal.now();
        // Under message loss the decision is retransmitted on a timer:
        // a duplicate can arrive after the first copy finished the
        // cohort (gone from the slab) or while its decision record is
        // being forced (`Deciding`). Without faults both are bugs.
        let Some(c) = self.cohorts.get_mut(cohort) else {
            debug_assert!(self.cfg.failures.is_some(), "stale decision without faults");
            return;
        };
        if attempt > c.req_attempt {
            c.req_attempt = attempt;
        }
        if c.phase == CohortPhase::Parted {
            // The decision evidently arrived once already and the ACK
            // was the lost leg: repeat it.
            debug_assert!(self.cfg.failures.is_some());
            self.resend_parting_reply(cohort);
            return;
        }
        // Linear 2PC only: a cohort the forward chain never reached
        // (still WorkDone) learns of the abort from the master. It was
        // never prepared, so it aborts like an active cohort: no log
        // record, no acknowledgement, no backward hop.
        if c.phase == CohortPhase::WorkDone {
            debug_assert!(self.table.routing == Routing::Chain && !commit);
            let (site, owner) = (c.site, c.lock_owner);
            let locks = &mut self.sites[site].locks;
            locks.drop_borrower(owner);
            let grants = locks.release_all(owner);
            self.process_grants(site, grants);
            self.cohort_done(cohort);
            return;
        }
        if !matches!(c.phase, CohortPhase::Prepared | CohortPhase::Precommitted) {
            debug_assert!(
                self.cfg.failures.is_some(),
                "decision in {:?} without faults",
                c.phase
            );
            return;
        }
        let txn = c.txn;
        if let Some(since) = c.prepared_since.take() {
            self.metrics.prepared_time.record_duration(now.since(since));
            // Blocked-on-crash lock-hold time: the part of this
            // cohort's prepared window spent with a crash outstanding
            // somewhere in its transaction.
            if let Some(crashed_at) = self.txns[txn].crashed_at {
                let from = if crashed_at > since {
                    crashed_at
                } else {
                    since
                };
                self.metrics.blocked_on_crash_cohorts.bump();
                self.metrics
                    .crash_block_time
                    .record(now.since(from).as_secs_f64());
            }
        }
        let c = self.cohorts.get_mut(cohort).expect("checked above");
        let site = c.site;
        if self.table.cohort_decision_forced.on(commit) {
            c.phase = CohortPhase::Deciding { commit };
            self.force_log(site, LogWork::CohortDecision { cohort, commit });
        } else {
            self.cohort_finish_decision(cohort, commit);
        }
    }

    /// Implement the decision at the cohort: settle OPT borrow edges
    /// (commit unshelves borrowers; abort kills them — the length-one
    /// abort chain of §3.1), release the update locks, write back, and
    /// acknowledge if the protocol wants it.
    pub(crate) fn cohort_finish_decision(&mut self, cohort: CohortH, commit: bool) {
        let c = self.cohorts.get(cohort).expect("live cohort");
        let (site, txn, owner, acc_index) = (c.site, c.txn, c.lock_owner, c.acc_index);
        // ACKs go wherever protocol control lives (the termination
        // coordinator after a 3PC master crash).
        let home = self.txns[txn].control_site();
        let writes: Vec<(usize, u64)> = if commit {
            self.txns[txn].template.accesses[acc_index]
                .iter()
                .filter(|a| a.update)
                .map(|a| (site, a.page))
                .collect()
        } else {
            Vec::new()
        };

        // Order matters: the cohort's borrow edges are settled and its
        // locks released *before* any borrower is unshelved or aborted.
        // Handling borrowers first would let their own lock releases
        // drain queues and grant fresh borrows against this cohort —
        // which is still marked prepared until `release_all` — leaving
        // dangling borrow edges to a dead lender (a shelf hang).
        let sref = &mut self.sites[site];
        let borrower_owners = sref.locks.settle_borrows(owner);
        debug_assert!(
            !sref.locks.has_live_borrows(owner),
            "a deciding cohort cannot be borrowing"
        );
        sref.locks.drop_borrower(owner);
        let grants = sref.locks.release_all(owner);
        // Resolve borrower owner slots to cohorts before any teardown
        // below can unregister (and recycle) them.
        let borrowers: Vec<CohortH> = borrower_owners.iter().map(|&o| sref.cohort_of(o)).collect();
        self.process_grants(site, grants);
        self.enqueue_deferred_writes(&writes);

        if commit {
            for b in borrowers {
                let unshelve = match self.cohorts.get(b) {
                    Some(bc) if bc.phase == CohortPhase::OnShelf => {
                        !self.sites[site].locks.has_live_borrows(bc.lock_owner)
                    }
                    _ => false,
                };
                if unshelve {
                    // "taken off the shelf and allowed to send its
                    // WORKDONE message" (§3)
                    self.cohort_send_workdone(b);
                }
            }
        } else {
            for b in borrowers {
                if let Some(bc) = self.cohorts.get(b) {
                    // "the borrower is also aborted since it has utilized
                    // inconsistent data" (§3)
                    let btxn = bc.txn;
                    self.abort_txn(btxn, AbortReason::BorrowerCascade);
                }
            }
        }

        if self.table.cohort_ack.on(commit) {
            let req = self.cohorts[cohort].req_attempt;
            let reply = MsgKind::Ack { txn, cohort };
            self.send_attempt(site, home, reply, req);
            self.part_or_done(cohort, reply);
            return;
        }
        if self.table.routing == Routing::Chain {
            // The implemented decision continues up the chain (this is
            // also the acknowledgement; there are no separate ACKs).
            self.linear_backward(cohort, txn, site, commit);
        }
        self.cohort_done(cohort);
    }

    pub(crate) fn master_ack(&mut self, txn: TxnH, cohort: CohortH) {
        if self.lossy() {
            // An ACK sender always parts: the first receipt finds the
            // parted entry and retires it; duplicates miss the slab.
            if self
                .cohorts
                .get(cohort)
                .is_some_and(|c| c.phase == CohortPhase::Parted)
            {
                self.cohorts.remove(cohort);
            } else {
                debug_assert!(self.cohorts.get(cohort).is_none(), "ACK from a live cohort");
                return;
            }
        }
        let t = self.txns.get_mut(txn).expect("no stale acks");
        debug_assert!(t.pending_acks > 0);
        t.pending_acks -= 1;
        if t.pending_acks == 0 {
            // The master writes a (non-forced, hence free) end record
            // and forgets the transaction.
            t.master_done = true;
            self.try_cleanup(txn);
        }
    }

    // ------------------------------------------------------------------
    // Teardown bookkeeping
    // ------------------------------------------------------------------

    /// Whether duplicate deliveries are possible at all. Only message
    /// loss schedules retransmission timers, so without it every
    /// message arrives exactly once and the parting/dedup machinery
    /// must stay inert — crash-only runs keep the original teardown
    /// and accounting paths bit-for-bit.
    fn lossy(&self) -> bool {
        self.cfg
            .failures
            .as_ref()
            .is_some_and(|f| f.msg_loss_prob > 0.0)
    }

    /// A cohort just sent its *final* reply (READ vote, NO vote, or
    /// ACK). Without message loss it is torn down outright; under loss
    /// that reply may vanish, so the cohort lingers as
    /// [`CohortPhase::Parted`] — locks released, lock-table
    /// registration retired, refcount dropped, exactly the
    /// [`Simulation::cohort_done`] teardown minus the slab removal —
    /// purely to answer duplicate requests with the stored reply until
    /// the master's receipt retires the entry.
    fn part_or_done(&mut self, cohort: CohortH, reply: MsgKind) {
        if !self.lossy() {
            self.cohort_done(cohort);
            return;
        }
        let c = self.cohorts.get_mut(cohort).expect("live cohort");
        c.phase = CohortPhase::Parted;
        c.parting_reply = Some(reply);
        let (site, owner, th, cid) = (c.site, c.lock_owner, c.txn, c.id);
        let locks = &mut self.sites[site].locks;
        debug_assert!(
            locks.borrowers_of(owner).next().is_none(),
            "cohort {cid} parting with live lends"
        );
        debug_assert!(
            !locks.has_live_borrows(owner),
            "cohort {cid} parting with live borrows"
        );
        locks.unregister(owner);
        let t = self.txns.get_mut(th).expect("txn outlives cohorts");
        debug_assert!(t.open_cohorts > 0);
        t.open_cohorts -= 1;
        // The master is provably not done while this entry exists (a
        // pending vote or ACK references it), so this cannot retire the
        // transaction out from under the parted cohort.
        self.try_cleanup(th);
    }

    /// A duplicate request reached a parted cohort: the stored final
    /// reply was evidently lost — repeat it.
    fn resend_parting_reply(&mut self, cohort: CohortH) {
        let c = self.cohorts.get(cohort).expect("parted cohort");
        debug_assert_eq!(c.phase, CohortPhase::Parted);
        let reply = c.parting_reply.expect("parted cohorts store their reply");
        let (site, th, req) = (c.site, c.txn, c.req_attempt);
        let control = self.txns[th].control_site();
        self.send_attempt(site, control, reply, req);
    }

    /// A cohort reached its final state: drop it, retire its lock-table
    /// registration, and update the transaction's refcount.
    pub(crate) fn cohort_done(&mut self, cohort: CohortH) {
        let c = self.cohorts.remove(cohort).expect("cohort finishes once");
        let locks = &mut self.sites[c.site].locks;
        debug_assert!(
            locks.borrowers_of(c.lock_owner).next().is_none(),
            "cohort {} torn down with live lends",
            c.id
        );
        debug_assert!(
            !locks.has_live_borrows(c.lock_owner),
            "cohort {} torn down with live borrows",
            c.id
        );
        locks.unregister(c.lock_owner);
        let t = self.txns.get_mut(c.txn).expect("txn outlives cohorts");
        debug_assert!(t.open_cohorts > 0);
        t.open_cohorts -= 1;
        self.try_cleanup(c.txn);
    }

    /// Forget the transaction once the master is done, every cohort has
    /// finished, and all ACKs are in. Replicated runs additionally wait
    /// for straggler acceptor bundles (the leader decides at a
    /// majority, but the overhead check counts all `2F+1`) and for the
    /// backup copies of the decision record.
    fn try_cleanup(&mut self, txn: TxnH) {
        let Some(t) = self.txns.get(txn) else {
            return;
        };
        if t.master_done
            && t.open_cohorts == 0
            && t.pending_acks == 0
            && t.accepts_outstanding == 0
            && t.pending_rep_acks == 0
        {
            let t = self.txns.remove(txn).expect("live txn");
            if let (TxnPhase::Decided { commit: true }, Some(decided)) = (&t.phase, t.decided_at) {
                let now = self.cal.now();
                self.metrics.phase_decision.record(now.since(decided));
                self.check_commit_overheads(&t);
            }
        }
    }

    // ------------------------------------------------------------------
    // Quorum routing: the acceptor and leader sides of Paxos Commit
    // ------------------------------------------------------------------

    /// A cohort's vote reached acceptor `acc`. The acceptor tallies it;
    /// once every cohort's vote is in, it forces its vote bundle — one
    /// record covering the whole transaction, replacing the master
    /// decision record. Straggler tallies can complete after the leader
    /// has already decided at a majority of the other acceptors, so no
    /// phase is asserted here.
    pub(crate) fn acceptor_vote(&mut self, txn: TxnH, acc: u32, yes: bool) {
        let t = self.txns.get_mut(txn).expect("cleanup waits for accepts");
        if !yes {
            t.no_vote = true;
        }
        let k = acc as usize;
        debug_assert!(t.acc_pending[k] > 0, "vote after the bundle closed");
        t.acc_pending[k] -= 1;
        if t.acc_pending[k] == 0 {
            let home = t.home;
            let site = self.acceptor_site(home, acc);
            self.force_log(site, LogWork::AcceptorBundle { txn, acc });
        }
    }

    /// Acceptor `acc`'s bundle is durable: report the outcome it
    /// accepted to the leader. A bundle holds every vote, so the
    /// outcome is abort iff any vote in it was NO.
    pub(crate) fn acceptor_bundle_logged(&mut self, txn: TxnH, acc: u32) {
        let t = self.txns.get(txn).expect("cleanup waits for accepts");
        let commit = !t.no_vote;
        let home = t.home;
        let site = self.acceptor_site(home, acc);
        self.send(site, home, MsgKind::Accepted { txn, commit });
    }

    /// The leader collected an ACCEPTED report. At a majority (`F+1`)
    /// the outcome is decided — this is Paxos Commit's shortened
    /// critical path; the remaining reports drain afterwards and only
    /// gate cleanup.
    pub(crate) fn master_accepted(&mut self, txn: TxnH, commit: bool) {
        let t = self.txns.get_mut(txn).expect("cleanup waits for accepts");
        debug_assert!(t.accepts_outstanding > 0);
        t.accepts_outstanding -= 1;
        let group = t.acc_pending.len();
        let received = group - t.accepts_outstanding;
        let majority = group / 2 + 1;
        if received == majority {
            self.decide(txn, commit);
        } else if t.accepts_outstanding == 0 {
            self.try_cleanup(txn);
        }
    }

    // ------------------------------------------------------------------
    // Replicated decision record: 2PC over a replicated coordinator
    // ------------------------------------------------------------------

    /// The master's decision record hit the disk. For the replicated-
    /// coordinator baseline the record must additionally be copied to
    /// the `2F` backup replicas — and forced there — before the
    /// decision may be announced; everyone else announces immediately.
    pub(crate) fn master_decision_logged(&mut self, txn: TxnH, commit: bool) {
        let f = self.rep_f();
        if self.table.replicated_decision && f > 0 {
            let t = self.txns.get(txn).expect("live txn");
            debug_assert_eq!(t.phase, TxnPhase::LoggingDecision { commit });
            let home = t.home;
            let t = self.txns.get_mut(txn).expect("live txn");
            t.pending_rep_acks = 2 * f as usize;
            for rep in 1..(2 * f + 1) {
                let site = self.acceptor_site(home, rep);
                self.send(home, site, MsgKind::RepDecision { txn, rep });
            }
        } else {
            self.master_decided(txn, commit);
        }
    }

    /// A backup replica received its copy of the decision record:
    /// force it locally.
    pub(crate) fn replica_decision(&mut self, txn: TxnH, rep: u32) {
        let t = self.txns.get(txn).expect("cleanup waits for rep acks");
        let site = self.acceptor_site(t.home, rep);
        self.force_log(site, LogWork::ReplicaDecision { txn, rep });
    }

    /// A backup replica's copy is durable: acknowledge to the master.
    pub(crate) fn replica_decision_logged(&mut self, txn: TxnH, rep: u32) {
        let t = self.txns.get(txn).expect("cleanup waits for rep acks");
        let home = t.home;
        let site = self.acceptor_site(home, rep);
        self.send(site, home, MsgKind::RepAck { txn });
    }

    /// The master collected a backup's acknowledgement; once all `2F`
    /// copies are durable the decision is announced.
    pub(crate) fn master_rep_ack(&mut self, txn: TxnH) {
        let t = self.txns.get_mut(txn).expect("cleanup waits for rep acks");
        debug_assert!(t.pending_rep_acks > 0);
        t.pending_rep_acks -= 1;
        if t.pending_rep_acks == 0 {
            let TxnPhase::LoggingDecision { commit } = t.phase else {
                unreachable!("replication runs inside the logging phase")
            };
            self.master_decided(txn, commit);
        }
    }
}
