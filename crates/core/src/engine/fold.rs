//! Flamegraph folding: aggregate per-transaction timelines into a
//! weighted phase → station → activity call-tree, rendered in the
//! collapsed-stack format (`frame;frame;frame weight`) consumed by
//! `flamegraph.pl`, inferno, speedscope and friends.
//!
//! [`FoldSink`] is a [`TraceSink`]: instead of buffering events it
//! attributes the interval between each pair of consecutive events of a
//! transaction to the *earlier* event — the activity the transaction
//! was engaged in during that interval — and accumulates the µs into a
//! stack of the form
//!
//! ```text
//! <root>;<phase>;<station>;<activity>
//! ```
//!
//! where `<phase>` is the commit-processing phase the transaction was
//! in (`exec` until its first commit-protocol event, `vote` until the
//! global decision, `ack` afterwards, resetting to `exec` when an abort
//! restarts the transaction) and `<station>` is the site the opening
//! event ran at (`global` for events without a site, such as the
//! decision milestone). Aggregated over thousands of transactions this
//! shows at a glance where commit latency goes — e.g. 3PC's extra
//! forced write and round trip show up as wide `vote` frames that 2PC
//! simply does not have.
//!
//! Memory is bounded by the number of live traced transactions (one
//! open interval each) plus one counter per distinct stack — not the
//! run length.

use super::trace::{MsgLabel, TraceEvent, TraceSink};
use super::types::TxnId;
use simkernel::SimTime;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Commit-processing phase of one transaction, in trace order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Exec,
    Vote,
    Ack,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Exec => "exec",
            Phase::Vote => "vote",
            Phase::Ack => "ack",
        }
    }
}

/// The open interval of one transaction: the stack its time is
/// accruing to and when that interval began.
struct OpenInterval {
    since: SimTime,
    phase: Phase,
    station: String,
    activity: String,
}

/// A [`TraceSink`] that folds per-transaction timelines into weighted
/// collapsed stacks. See the module docs for the stack shape.
pub struct FoldSink {
    root: String,
    /// stack → accumulated µs. BTreeMap so rendering is sorted and
    /// deterministic.
    stacks: BTreeMap<String, u64>,
    open: HashMap<TxnId, OpenInterval>,
}

impl FoldSink {
    /// A fold rooted at `root` (conventionally the protocol label, so
    /// folds from different runs can be diffed frame by frame).
    pub fn new(root: impl Into<String>) -> Self {
        FoldSink {
            root: root.into(),
            stacks: BTreeMap::new(),
            open: HashMap::new(),
        }
    }

    /// True when an event belongs to transaction execution rather than
    /// commit processing: cohort setup and the work-done report.
    fn is_exec_event(e: &TraceEvent) -> bool {
        matches!(
            e,
            TraceEvent::Send {
                label: MsgLabel::InitCohort | MsgLabel::WorkDone,
                ..
            }
        )
    }

    /// The station and activity frames an event opens.
    fn frames(e: &TraceEvent) -> (String, String) {
        match e {
            TraceEvent::Send { label, from, .. } => {
                (format!("site {from}"), format!("send {label:?}"))
            }
            TraceEvent::ForceLog { label, site, .. } => {
                (format!("site {site}"), format!("force {label:?}"))
            }
            TraceEvent::LogDone { label, site, .. } => {
                (format!("site {site}"), format!("forced {label:?}"))
            }
            TraceEvent::Prepared { site, .. } => (format!("site {site}"), "prepared".to_string()),
            TraceEvent::Borrowed { .. } => ("global".to_string(), "borrowed".to_string()),
            TraceEvent::Shelved { .. } => ("global".to_string(), "shelved".to_string()),
            TraceEvent::Unshelved { .. } => ("global".to_string(), "unshelved".to_string()),
            TraceEvent::Decided { commit, .. } => (
                "global".to_string(),
                if *commit {
                    "decided commit".to_string()
                } else {
                    "decided abort".to_string()
                },
            ),
            TraceEvent::Aborted { .. } => ("global".to_string(), "aborted".to_string()),
            TraceEvent::MasterCrashed { .. } => {
                ("global".to_string(), "master crashed".to_string())
            }
            TraceEvent::CohortCrashed { .. } => {
                ("global".to_string(), "cohort crashed".to_string())
            }
            TraceEvent::CohortRecovered { .. } => {
                ("global".to_string(), "cohort recovered".to_string())
            }
            TraceEvent::MsgLost { label, .. } => ("global".to_string(), format!("{label:?} lost")),
            TraceEvent::Retransmitted { label, .. } => {
                ("global".to_string(), format!("retransmit {label:?}"))
            }
            TraceEvent::TerminationStarted { .. } => {
                ("global".to_string(), "termination".to_string())
            }
            TraceEvent::FailoverStarted { .. } => {
                ("global".to_string(), "leader failover".to_string())
            }
        }
    }

    fn close_interval(&mut self, txn: TxnId, now: SimTime) -> Option<Phase> {
        let open = self.open.remove(&txn)?;
        let weight = now.since(open.since).as_micros();
        if weight > 0 {
            let stack = format!(
                "{};{};{};{}",
                self.root,
                open.phase.name(),
                open.station,
                open.activity
            );
            *self.stacks.entry(stack).or_insert(0) += weight;
        }
        Some(open.phase)
    }

    /// Accumulated stacks (stack → µs), sorted by stack.
    pub fn stacks(&self) -> &BTreeMap<String, u64> {
        &self.stacks
    }

    /// Render the fold in collapsed-stack format: one
    /// `frame;frame;frame weight` line per stack, sorted by stack,
    /// weights in µs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (stack, weight) in &self.stacks {
            let _ = writeln!(out, "{stack} {weight}");
        }
        out
    }
}

impl TraceSink for FoldSink {
    fn record(&mut self, event: &TraceEvent) {
        let txn = event.txn();
        let at = event.at();
        let prev_phase = self.close_interval(txn, at);
        let phase = match event {
            // The restart that follows an abort begins a fresh
            // execution phase.
            TraceEvent::Aborted { .. } => Phase::Exec,
            TraceEvent::Decided { .. } => Phase::Ack,
            e => {
                let prev = prev_phase.unwrap_or(Phase::Exec);
                if prev == Phase::Exec && !Self::is_exec_event(e) {
                    Phase::Vote
                } else {
                    prev
                }
            }
        };
        let (station, activity) = Self::frames(event);
        self.open.insert(
            txn,
            OpenInterval {
                since: at,
                phase,
                station,
                activity,
            },
        );
    }

    fn finish(&mut self) {
        // Open tails have no end point; drop them so the fold only
        // contains fully-delimited intervals.
        self.open.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::trace::LogLabel;

    fn send(ts: u64, txn: TxnId, label: MsgLabel) -> TraceEvent {
        TraceEvent::Send {
            at: SimTime(ts),
            txn,
            label,
            from: 0,
            to: 1,
            local: false,
        }
    }

    #[test]
    fn intervals_attribute_to_the_earlier_event() {
        let mut f = FoldSink::new("2PC");
        f.record(&send(0, 1, MsgLabel::InitCohort));
        f.record(&send(100, 1, MsgLabel::WorkDone));
        f.finish();
        // [0,100) belongs to the InitCohort send, in the exec phase;
        // the WorkDone tail is open and dropped.
        let rendered = f.render();
        assert_eq!(rendered, "2PC;exec;site 0;send InitCohort 100\n");
    }

    #[test]
    fn phases_progress_exec_vote_ack() {
        let mut f = FoldSink::new("p");
        f.record(&send(0, 1, MsgLabel::WorkDone)); // exec
        f.record(&send(10, 1, MsgLabel::Prepare)); // vote starts
        f.record(&TraceEvent::Decided {
            at: SimTime(30),
            txn: 1,
            commit: true,
        }); // ack starts
        f.record(&send(60, 1, MsgLabel::Ack));
        f.record(&send(100, 1, MsgLabel::Ack));
        f.finish();
        let stacks = f.stacks();
        assert_eq!(stacks["p;exec;site 0;send WorkDone"], 10);
        assert_eq!(stacks["p;vote;site 0;send Prepare"], 20);
        assert_eq!(stacks["p;ack;global;decided commit"], 30);
        assert_eq!(stacks["p;ack;site 0;send Ack"], 40);
    }

    #[test]
    fn abort_resets_to_exec_phase() {
        let mut f = FoldSink::new("p");
        f.record(&send(0, 1, MsgLabel::Prepare)); // vote (first commit event)
        f.record(&TraceEvent::Aborted {
            at: SimTime(10),
            txn: 1,
        });
        f.record(&send(30, 1, MsgLabel::InitCohort)); // restart: exec again
        f.record(&send(70, 1, MsgLabel::WorkDone));
        f.finish();
        let stacks = f.stacks();
        assert_eq!(stacks["p;vote;site 0;send Prepare"], 10);
        assert_eq!(stacks["p;exec;global;aborted"], 20);
        assert_eq!(stacks["p;exec;site 0;send InitCohort"], 40);
    }

    #[test]
    fn forced_writes_fold_under_their_site() {
        let mut f = FoldSink::new("p");
        f.record(&TraceEvent::ForceLog {
            at: SimTime(0),
            txn: 1,
            label: LogLabel::Prepare,
            site: 3,
        });
        f.record(&TraceEvent::LogDone {
            at: SimTime(25),
            txn: 1,
            label: LogLabel::Prepare,
            site: 3,
        });
        f.record(&TraceEvent::Decided {
            at: SimTime(40),
            txn: 1,
            commit: true,
        });
        f.finish();
        let stacks = f.stacks();
        assert_eq!(stacks["p;vote;site 3;force Prepare"], 25);
        assert_eq!(stacks["p;vote;site 3;forced Prepare"], 15);
    }

    #[test]
    fn zero_width_intervals_add_no_stack() {
        let mut f = FoldSink::new("p");
        f.record(&send(5, 1, MsgLabel::Prepare));
        f.record(&send(5, 1, MsgLabel::VoteYes));
        f.record(&send(9, 1, MsgLabel::DecisionCommit));
        f.finish();
        // The Prepare interval is zero-width and must not appear.
        assert!(!f.render().contains("send Prepare"));
        assert_eq!(f.stacks()["p;vote;site 0;send VoteYes"], 4);
    }

    #[test]
    fn render_is_sorted_and_parseable() {
        let mut f = FoldSink::new("p");
        f.record(&send(0, 2, MsgLabel::WorkDone));
        f.record(&send(7, 2, MsgLabel::Prepare));
        f.record(&send(9, 2, MsgLabel::VoteYes));
        f.finish();
        let rendered = f.render();
        let lines: Vec<&str> = rendered.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        for line in lines {
            let (stack, weight) = line.rsplit_once(' ').expect("stack <weight>");
            assert!(stack.split(';').count() >= 3, "stack {stack}");
            weight.parse::<u64>().expect("numeric weight");
        }
    }
}
