//! Group commit (§3.2): a log disk that serves queued forced writes in
//! batches — up to `max_batch` records per `PageDisk` service.
//!
//! Like [`simkernel::Station`], the batcher is an engine passive: the
//! caller schedules the completion event for the instant the batcher
//! reports and hands the finished batch back via
//! [`BatchedLog::complete`].

use super::types::LogWork;
use simkernel::stats::OccupancyHistogram;
use simkernel::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One log disk running group commit, generic over the record type so
/// both the serial engine (`LogWork`) and the sharded parallel engine
/// can batch their own log representations.
#[derive(Debug)]
pub(crate) struct BatchedLog<W = LogWork> {
    max_batch: usize,
    queue: VecDeque<W>,
    in_flight: Vec<W>,
    // --- statistics ---
    last_change: SimTime,
    stats_origin: SimTime,
    busy_time: u64,
    queue_unit_time: u64,
    occupancy: OccupancyHistogram,
    max_queue: usize,
    batches_served: u64,
    writes_served: u64,
}

impl<W> BatchedLog<W> {
    /// A batcher grouping up to `max_batch` forced writes per service.
    pub fn new(max_batch: u32) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        BatchedLog {
            max_batch: max_batch as usize,
            queue: VecDeque::new(),
            in_flight: Vec::new(),
            last_change: SimTime::ZERO,
            stats_origin: SimTime::ZERO,
            busy_time: 0,
            queue_unit_time: 0,
            occupancy: OccupancyHistogram::new(),
            max_queue: 0,
            batches_served: 0,
            writes_served: 0,
        }
    }

    fn accumulate(&mut self, now: SimTime) {
        let dt = now.since(self.last_change);
        if !self.in_flight.is_empty() {
            self.busy_time += dt.as_micros();
        }
        self.queue_unit_time += self.queue.len() as u64 * dt.as_micros();
        self.occupancy.record_span(self.queue.len() as u64, dt);
        self.last_change = now;
    }

    /// A forced write arrives. If the disk is idle a batch starts
    /// immediately (containing just this write) and its completion time
    /// is returned; otherwise the write queues for the next batch.
    pub fn arrive(&mut self, now: SimTime, work: W, service: SimDuration) -> Option<SimTime> {
        self.accumulate(now);
        if self.in_flight.is_empty() {
            self.in_flight.push(work);
            Some(now + service)
        } else {
            self.queue.push_back(work);
            self.max_queue = self.max_queue.max(self.queue.len());
            None
        }
    }

    /// The in-flight batch finished: return its records and, if writes
    /// are queued, start the next batch (up to `max_batch` records) and
    /// return its completion time.
    pub fn complete(&mut self, now: SimTime, service: SimDuration) -> (Vec<W>, Option<SimTime>) {
        assert!(
            !self.in_flight.is_empty(),
            "complete() with no batch in flight"
        );
        self.accumulate(now);
        self.batches_served += 1;
        self.writes_served += self.in_flight.len() as u64;
        let done = std::mem::take(&mut self.in_flight);
        let next = if self.queue.is_empty() {
            None
        } else {
            let take = self.queue.len().min(self.max_batch);
            self.in_flight.extend(self.queue.drain(..take));
            Some(now + service)
        };
        (done, next)
    }

    /// Records waiting for a batch slot.
    #[allow(dead_code)] // exercised by unit tests
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// True while a batch is being written.
    #[allow(dead_code)] // exercised by unit tests
    pub fn busy(&self) -> bool {
        !self.in_flight.is_empty()
    }

    /// Batches completed so far.
    pub fn batches_served(&self) -> u64 {
        self.batches_served
    }

    /// Individual records completed so far.
    pub fn writes_served(&self) -> u64 {
        self.writes_served
    }

    /// Mean records per completed batch (the group-commit win).
    #[allow(dead_code)] // exercised by unit tests; the engine aggregates manually
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_served == 0 {
            0.0
        } else {
            self.writes_served as f64 / self.batches_served as f64
        }
    }

    /// Fraction of the statistics window (last reset to `now`) spent
    /// writing.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.accumulate(now);
        let elapsed = now.since(self.stats_origin).as_micros();
        if elapsed == 0 {
            0.0
        } else {
            self.busy_time as f64 / elapsed as f64
        }
    }

    /// Time-averaged number of records waiting for a batch slot over
    /// the statistics window ending at `now`.
    pub fn mean_queue_depth(&mut self, now: SimTime) -> f64 {
        self.accumulate(now);
        let elapsed = now.since(self.stats_origin).as_micros();
        if elapsed == 0 {
            0.0
        } else {
            self.queue_unit_time as f64 / elapsed as f64
        }
    }

    /// Largest queue length observed in the statistics window.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue
    }

    /// Time-weighted queue-depth histogram over the statistics window,
    /// with the final open interval flushed up to `now`.
    pub fn occupancy(&mut self, now: SimTime) -> &OccupancyHistogram {
        self.accumulate(now);
        &self.occupancy
    }

    /// Reset statistics at the end of warm-up.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.accumulate(now);
        self.busy_time = 0;
        self.queue_unit_time = 0;
        self.occupancy = OccupancyHistogram::new();
        self.max_queue = self.queue.len();
        self.batches_served = 0;
        self.writes_served = 0;
        self.last_change = now;
        self.stats_origin = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u32) -> LogWork {
        use simkernel::slab::Handle;
        use simkernel::SlabKey;
        LogWork::MasterDecision {
            txn: super::super::types::TxnH::from_handle(Handle::new(n, 0)),
            commit: true,
        }
    }

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }
    fn at(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut b = BatchedLog::new(4);
        let done = b.arrive(at(0), work(1), ms(20));
        assert_eq!(done, Some(at(20)));
        assert!(b.busy());
        assert_eq!(b.queued(), 0);
    }

    #[test]
    fn arrivals_batch_behind_the_in_flight_write() {
        let mut b = BatchedLog::new(4);
        b.arrive(at(0), work(1), ms(20));
        assert_eq!(b.arrive(at(5), work(2), ms(20)), None);
        assert_eq!(b.arrive(at(6), work(3), ms(20)), None);
        assert_eq!(b.queued(), 2);
        let (done, next) = b.complete(at(20), ms(20));
        assert_eq!(done.len(), 1);
        // Both queued writes go out together in one service.
        assert_eq!(next, Some(at(40)));
        assert_eq!(b.queued(), 0);
        let (done, next) = b.complete(at(40), ms(20));
        assert_eq!(done.len(), 2);
        assert_eq!(next, None);
        assert!(!b.busy());
        assert_eq!(b.writes_served(), 3);
        assert_eq!(b.batches_served(), 2);
        assert!((b.mean_batch_size() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn batch_size_is_capped() {
        let mut b = BatchedLog::new(2);
        b.arrive(at(0), work(0), ms(10));
        for i in 1..=5 {
            b.arrive(at(1), work(i), ms(10));
        }
        let (_, next) = b.complete(at(10), ms(10));
        assert_eq!(next, Some(at(20)));
        assert_eq!(b.queued(), 3); // 2 taken, 3 remain
        let (done, _) = b.complete(at(20), ms(10));
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn utilization_counts_only_busy_time() {
        let mut b = BatchedLog::new(8);
        b.arrive(at(0), work(1), ms(10));
        b.complete(at(10), ms(10));
        assert!((b.utilization(at(20)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn queue_depth_integrates_waiting_records() {
        let mut b = BatchedLog::new(4);
        b.arrive(at(0), work(1), ms(10));
        b.arrive(at(0), work(2), ms(10)); // queued [0,10)
        b.arrive(at(5), work(3), ms(10)); // queued [5,10)
        b.complete(at(10), ms(10)); // both queued records start
        b.complete(at(20), ms(10));
        // queue length: 1 on [0,5), 2 on [5,10), 0 after.
        // integral = 5 + 10 = 15 record-ms over 20ms.
        assert!((b.mean_queue_depth(at(20)) - 15.0 / 20.0).abs() < 1e-9);
        assert_eq!(b.max_queue_depth(), 2);
        // The occupancy histogram sees the same spans: depth 0 on
        // [10,20) dominates, depth 2 only on [5,10).
        assert_eq!(b.occupancy(at(20)).p50(), 0);
        assert_eq!(b.occupancy(at(20)).quantile(1.0), 2);
        assert!((b.occupancy(at(20)).mean() - 15.0 / 20.0).abs() < 1e-9);
        b.reset_stats(at(20));
        assert_eq!(b.max_queue_depth(), 0);
        assert_eq!(b.occupancy(at(20)).total_time(), SimDuration::ZERO);
    }

    #[test]
    fn reset_stats_keeps_state() {
        let mut b = BatchedLog::new(8);
        b.arrive(at(0), work(1), ms(10));
        b.reset_stats(at(5));
        assert!(b.busy());
        assert_eq!(b.batches_served(), 0);
        let (done, _) = b.complete(at(10), ms(10));
        assert_eq!(done.len(), 1);
        // busy throughout the post-reset window [5,10] => 1.0
        assert!((b.utilization(at(10)) - 1.0).abs() < 1e-9);
        assert!((b.utilization(at(15)) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no batch in flight")]
    fn complete_when_idle_panics() {
        let mut b = BatchedLog::<LogWork>::new(2);
        b.complete(at(0), ms(10));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        BatchedLog::<LogWork>::new(0);
    }
}
