//! The site-sharded conservative parallel engine.
//!
//! A run partitions the (effective) sites into shards along
//! [`crate::config::Topology`] region blocks and advances simulated
//! time in windows of length `D`, the minimum cross-region wire
//! latency: within `[base, base + D)` no shard can affect another, so
//! every shard interprets its own calendar independently (one worker
//! thread per shard), and cross-shard messages are exchanged at the
//! window barrier — the classic conservative (lookahead) scheme.
//!
//! The parallel engine is its *own* deterministic family, not a
//! byte-for-byte reimplementation of the serial engine: deadlock
//! detection and doomed-transaction teardown run at window barriers
//! instead of instantly, every site draws from a private RNG stream,
//! and run control (warm-up edge, commit target) is evaluated at
//! barriers. What it guarantees — checked by `tests/shards.rs` — is
//! that its output is **independent of the shard count**: `--shards 1`
//! and `--shards 8` produce identical reports, series and traces,
//! because windows, event keys and barrier bookkeeping are all derived
//! from the configuration, never from the layout. Configurations
//! outside the envelope (no topology, a single region, zero lookahead,
//! CENT) silently keep the serial engine; configurations whose
//! semantics the parallel interpreter cannot honour (message loss,
//! takeover protocols under master crashes, chained 2PC, DPCC) are
//! rejected with a typed error so `--shards` never silently changes
//! meaning.

mod shard;
mod types;

use super::series::{
    self, Series, SeriesConfig, SeriesFormat, SeriesMeta, SeriesSnapshot, SiteRow,
};
use super::trace::{TraceEvent, TraceSink};
use super::types::TxnId;
use super::{EngineProfile, ResourceAcc};
use crate::config::{ConfigError, ResourceMode, SystemConfig};
use crate::metrics::{
    AbortReason, FaultCounters, LatencySummary, Metrics, PhaseLatencies, ResourceReport, SimReport,
    Utilizations,
};
use crate::workload::{SiteId, WorkloadGenerator};
use commitproto::{ProtocolSpec, Routing, SpecTable, Takeover};
use shard::Shard;
use simkernel::stats::{BatchMeans, DurationHistogram, Tally};
use simkernel::{mix_seed, SimDuration, SimRng, SimTime, Station};
use std::sync::mpsc;
use std::sync::Arc;
use types::{uid_home, PSite, TxnUid};

/// Stream tag of the per-site RNG streams (`mix_seed(seed, site, TAG,
/// 0)`), disjoint from the serial engine's single stream and the
/// topology's "TOPO" stream.
const SITE_RNG_TAG: u64 = 0x5053; // "PS"

/// Shared read-only context of one parallel run, cloned into every
/// shard via `Arc`.
pub(crate) struct ParCtx {
    pub cfg: SystemConfig,
    pub spec: ProtocolSpec,
    pub table: SpecTable,
    pub wl: WorkloadGenerator,
    /// Row-major `n × n` wire-latency matrix.
    pub latency: Vec<SimDuration>,
    pub n_sites: usize,
    /// Site → shard index (contiguous blocks).
    pub site_shard: Vec<usize>,
    pub pages_per_site_eff: u64,
    /// Trace events are recorded for external txn ids ≤ this.
    pub trace_limit: TxnId,
    /// Replication degree F (0 for the single-copy protocols).
    pub rep_f: u32,
    /// Acceptor/replica group size `2F + 1`.
    pub group: u32,
    /// Record wall-clock section timings (bench harness only).
    pub profiled: bool,
}

// Shards cross thread boundaries carrying an `Arc<ParCtx>`.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<ParCtx>();
};

/// Should `cfg` run on the parallel engine?
///
/// Returns `Ok(false)` when `--shards` is off or the configuration has
/// nothing to cut (no topology, one region, zero lookahead, CENT — the
/// serial engine is byte-identical and cheaper there), `Ok(true)` when
/// the parallel path applies, and a typed error for configurations the
/// parallel interpreter cannot honour.
pub(crate) fn wants_parallel(
    cfg: &SystemConfig,
    spec: ProtocolSpec,
    seed: u64,
) -> Result<bool, ConfigError> {
    if cfg.shards == 0 {
        return Ok(false);
    }
    if !spec.is_valid() {
        // Rejected identically by the serial constructor; let that
        // path produce the canonical error.
        return Ok(false);
    }
    let table = spec.base.table();
    if table.centralized {
        // CENT merges everything into one effective site.
        return Ok(false);
    }
    if !table.voting {
        return Err(ConfigError::Invalid(
            "--shards does not support the distributed pre-claiming baseline (DPCC)",
        ));
    }
    if matches!(table.routing, Routing::Chain) {
        return Err(ConfigError::Invalid(
            "--shards does not support linear (chained) 2PC",
        ));
    }
    if let Some(f) = cfg.failures {
        if f.msg_loss_prob > 0.0 {
            return Err(ConfigError::Invalid(
                "--shards does not support message loss (retransmission timers need \
                 global time); drop --shards or the loss probability",
            ));
        }
        if f.master_crash_prob > 0.0 {
            let blocks = match table.takeover {
                Takeover::Block => true,
                // With F = 0 there is no standby leader to fail over
                // to, so the protocol blocks exactly like 2PC.
                Takeover::LeaderFailover => cfg.replication == 0,
                Takeover::CohortTermination => false,
            };
            if !blocks {
                return Err(ConfigError::Invalid(
                    "--shards does not support crash-takeover protocols under master \
                     crashes; drop --shards or the master crash probability",
                ));
            }
        }
    }
    let Some(topo) = cfg.topology else {
        return Ok(false);
    };
    if topo.regions < 2 || cfg.num_sites < 2 {
        return Ok(false);
    }
    // The window length is the minimum cross-region latency of the
    // actual (seed-dependent, jittered) matrix; a zero lookahead means
    // zero-length windows, i.e. the serial engine.
    let wl = WorkloadGenerator::new(cfg, spec.base);
    let n = wl.effective_sites();
    if n < 2 {
        return Ok(false);
    }
    Ok(min_cross_region_latency(&topo, n, seed).is_some())
}

/// Minimum nonzero cross-region wire latency — the conservative
/// lookahead. `None` when no positive cross-region latency exists.
fn min_cross_region_latency(
    topo: &crate::config::Topology,
    n: usize,
    seed: u64,
) -> Option<SimDuration> {
    let m = topo.latency_matrix(n, seed);
    let mut best: Option<SimDuration> = None;
    for i in 0..n {
        for j in (i + 1)..n {
            if topo.region_of(i, n) != topo.region_of(j, n) {
                let lat = m[i * n + j];
                if lat > SimDuration::ZERO && best.is_none_or(|b| lat < b) {
                    best = Some(lat);
                }
            }
        }
    }
    // A zero entry anywhere across regions breaks the window
    // invariant (a message could arrive inside the sender's window).
    for i in 0..n {
        for j in 0..n {
            if i != j
                && topo.region_of(i, n) != topo.region_of(j, n)
                && m[i * n + j] == SimDuration::ZERO
            {
                return None;
            }
        }
    }
    best
}

/// One parallel run: the shard set plus all orchestrator-owned state
/// (run control, convergence sampling, series/trace sinks).
pub(crate) struct ParSim {
    ctx: Arc<ParCtx>,
    /// `None` only while a shard is out on a worker thread.
    shards: Vec<Option<Box<Shard>>>,
    lookahead: SimDuration,
    /// Time of the last barrier; the report closes at this instant.
    barrier_now: SimTime,
    measured_target: u64,
    warmup_target: u64,
    warmup_done: bool,
    /// All-time commit count at the warm-up reset.
    measured_base: u64,
    measure_start: SimTime,
    // --- convergence / CI sampling (owned here because per-site
    // Metrics cannot see the global commit stream) ---
    batch_size: u64,
    conv_cursor: u64,
    conv_batch_started: SimTime,
    conv_rates: Vec<f64>,
    conv_starts: Vec<SimTime>,
    bm: BatchMeans,
    bm_cursor: u64,
    bm_batch_started: SimTime,
    // --- sinks ---
    sink: Option<Box<dyn TraceSink>>,
    series: Option<Box<series::SeriesRecorder>>,
    series_per_site: bool,
    profile: Option<Box<EngineProfile>>,
}

impl ParSim {
    /// Parallel counterpart of `Simulation::run`. Callers must have
    /// routed through [`wants_parallel`] first.
    pub(crate) fn run(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
    ) -> Result<SimReport, ConfigError> {
        let mut sim = ParSim::new(cfg, spec, seed, 0, false)?;
        sim.execute();
        Ok(sim.report())
    }

    /// Parallel counterpart of `Simulation::run_with_sink`.
    pub(crate) fn run_with_sink<S: TraceSink>(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        traced_txns: u64,
        sink: S,
    ) -> Result<(SimReport, S), ConfigError> {
        let mut sim = ParSim::new(cfg, spec, seed, traced_txns, false)?;
        sim.sink = Some(Box::new(sink));
        sim.execute();
        let mut boxed = sim.sink.take().expect("sink installed above");
        boxed.finish();
        let any: Box<dyn std::any::Any> = boxed;
        let sink = *any.downcast::<S>().expect("sink type is preserved");
        Ok((sim.report(), sink))
    }

    /// Parallel counterpart of `Simulation::run_with_series`.
    pub(crate) fn run_with_series(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        series_cfg: &SeriesConfig,
    ) -> Result<(SimReport, Series), ConfigError> {
        let mut sim = ParSim::new(cfg, spec, seed, 0, false)?;
        let rec = series::SeriesRecorder::new_buffered(
            series_cfg,
            sim.series_meta(seed, series_cfg),
            sim.ctx.n_sites,
        );
        sim.install_series(rec, series_cfg);
        sim.execute();
        let series = sim
            .finish_series()
            .expect("buffered series recording cannot fail");
        Ok((sim.report(), series))
    }

    /// Parallel counterpart of `Simulation::run_with_series_stream`.
    pub(crate) fn run_with_series_stream(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        series_cfg: &SeriesConfig,
        writer: Box<dyn std::io::Write + Send>,
        format: SeriesFormat,
    ) -> Result<SimReport, series::SeriesRunError> {
        let mut sim = ParSim::new(cfg, spec, seed, 0, false)?;
        let rec = series::SeriesRecorder::new_streaming(
            series_cfg,
            sim.series_meta(seed, series_cfg),
            sim.ctx.n_sites,
            writer,
            format,
        )?;
        sim.install_series(rec, series_cfg);
        sim.execute();
        sim.finish_series()?;
        Ok(sim.report())
    }

    /// Parallel counterpart of `Simulation::run_profiled`: per-shard
    /// calendar/dispatch timings plus the orchestrator's barrier,
    /// mailbox, deadlock-scan and series sections.
    pub(crate) fn run_profiled(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        series_cfg: Option<&SeriesConfig>,
    ) -> Result<(SimReport, EngineProfile), ConfigError> {
        let mut sim = ParSim::new(cfg, spec, seed, 0, true)?;
        if let Some(scfg) = series_cfg {
            let rec = series::SeriesRecorder::new_buffered(
                scfg,
                sim.series_meta(seed, scfg),
                sim.ctx.n_sites,
            );
            sim.install_series(rec, scfg);
        }
        sim.profile = Some(Box::default());
        sim.execute();
        if sim.series.is_some() {
            sim.finish_series()
                .expect("buffered series recording cannot fail");
        }
        let mut profile = *sim.profile.take().expect("profile installed above");
        for sh in sim.shards.iter().map(|s| s.as_ref().expect("shard home")) {
            profile.events += sh.cal.dispatched_count();
            profile.calendar_ns += sh.prof_calendar_ns;
            profile.dispatch_ns += sh.prof_dispatch_ns;
        }
        Ok((sim.report(), profile))
    }

    fn new(
        cfg: &SystemConfig,
        spec: ProtocolSpec,
        seed: u64,
        trace_limit: TxnId,
        profiled: bool,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if !spec.is_valid() {
            return Err(ConfigError::Invalid(
                "OPT cannot be combined with a baseline protocol",
            ));
        }
        let table = spec.base.table();
        if cfg.replication > 0 && !spec.is_replicated() {
            return Err(ConfigError::Invalid(
                "replication degree requires a replicated protocol (PAXOS or REP2PC)",
            ));
        }
        if spec.is_replicated() {
            if cfg.read_only_optimization {
                return Err(ConfigError::Invalid(
                    "the read-only optimization is not modeled for replicated protocols",
                ));
            }
            if 2 * cfg.replication as usize + 1 > cfg.num_sites {
                return Err(ConfigError::Invalid(
                    "2F+1 acceptors need at least 2F+1 sites",
                ));
            }
        }
        let wl = WorkloadGenerator::new(cfg, spec.base);
        let n = wl.effective_sites();
        debug_assert_eq!(n, cfg.num_sites, "non-CENT configs keep every site");
        let topo = cfg.topology.expect("parallel path requires a topology");
        let latency = topo.latency_matrix(n, seed);
        let lookahead = min_cross_region_latency(&topo, n, seed)
            .expect("wants_parallel guarantees a positive lookahead");

        // Shards follow region blocks. The raw `region → floor(r·S/R)`
        // map can skip shard indices when regions are empty, so the
        // distinct values are renumbered consecutively — every shard
        // owns at least one site and sites stay contiguous.
        let s_req = (cfg.shards as usize).min(topo.regions).max(1);
        let raw: Vec<usize> = (0..n)
            .map(|i| topo.region_of(i, n) * s_req / topo.regions)
            .collect();
        let mut site_shard = Vec::with_capacity(n);
        let mut next = 0usize;
        let mut last_raw = usize::MAX;
        for &r in &raw {
            if r != last_raw {
                last_raw = r;
                site_shard.push(next);
                next += 1;
            } else {
                site_shard.push(next - 1);
            }
        }
        let n_shards = next;

        let rep_f = if spec.is_replicated() {
            cfg.replication
        } else {
            0
        };
        let pages_per_site_eff = cfg.pages_per_site();
        let ctx = Arc::new(ParCtx {
            cfg: cfg.clone(),
            spec,
            table,
            wl,
            latency,
            n_sites: n,
            site_shard,
            pages_per_site_eff,
            trace_limit,
            rep_f,
            group: 2 * rep_f + 1,
            profiled,
        });

        let mk_station = || match cfg.resources {
            ResourceMode::Finite => None,
            ResourceMode::Infinite => Some(()),
        };
        let mk_site = |idx: usize| PSite {
            idx,
            cpu: match mk_station() {
                None => Station::finite(cfg.num_cpus),
                Some(()) => Station::infinite(),
            },
            data_disks: (0..cfg.num_data_disks)
                .map(|_| match mk_station() {
                    None => Station::finite(1),
                    Some(()) => Station::infinite(),
                })
                .collect(),
            log_disks: (0..cfg.num_log_disks)
                .map(|_| match mk_station() {
                    None => Station::finite(1),
                    Some(()) => Station::infinite(),
                })
                .collect(),
            batched_logs: match (cfg.group_commit_batch, cfg.resources) {
                (Some(k), ResourceMode::Finite) => Some(
                    (0..cfg.num_log_disks)
                        .map(|_| super::glog::BatchedLog::new(k))
                        .collect(),
                ),
                _ => None,
            },
            locks: distlocks::LockManager::for_pages(ctx.spec.opt, pages_per_site_eff),
            owner_cohorts: Vec::new(),
            next_log_disk: 0,
            rng: SimRng::new(mix_seed(seed, idx as u64, SITE_RNG_TAG, 0)),
            key_seq: 0,
            txns: std::collections::HashMap::new(),
            cohorts: std::collections::HashMap::new(),
            acc_mirrors: std::collections::HashMap::new(),
            dead: std::collections::HashMap::new(),
            next_txn_seq: 0,
            next_cohort_seq: 0,
            metrics: Metrics::new(
                SimTime::ZERO,
                cfg.run.measured_transactions,
                cfg.run.batches,
            ),
            resp_estimate: Tally::new(),
            commits_total: 0,
            trace_buf: Vec::new(),
            trace_seq: 0,
        };

        let mut shards: Vec<Option<Box<Shard>>> = Vec::with_capacity(n_shards);
        let mut site = 0usize;
        for k in 0..n_shards {
            let lo = site;
            let mut sites = Vec::new();
            while site < n && ctx.site_shard[site] == k {
                sites.push(mk_site(site));
                site += 1;
            }
            debug_assert!(!sites.is_empty(), "empty shard");
            shards.push(Some(Box::new(Shard::new(k, lo, sites, Arc::clone(&ctx)))));
        }
        debug_assert_eq!(site, n);

        let mut sim = ParSim {
            lookahead,
            barrier_now: SimTime::ZERO,
            measured_target: cfg.run.measured_transactions,
            warmup_target: cfg.run.warmup_transactions,
            warmup_done: cfg.run.warmup_transactions == 0,
            measured_base: 0,
            measure_start: SimTime::ZERO,
            batch_size: (cfg.run.measured_transactions / cfg.run.batches).max(1),
            conv_cursor: 0,
            conv_batch_started: SimTime::ZERO,
            conv_rates: Vec::new(),
            conv_starts: Vec::new(),
            bm: BatchMeans::new(1),
            bm_cursor: 0,
            bm_batch_started: SimTime::ZERO,
            sink: None,
            series: None,
            series_per_site: false,
            profile: None,
            ctx,
            shards,
        };
        // Closed system: MPL transactions per site, submitted at t = 0
        // through each home site's own key stream.
        for home in 0..n {
            let k = sim.ctx.site_shard[home];
            let sh = sim.shards[k].as_mut().expect("shard home");
            for _ in 0..cfg.mpl {
                sh.sched(
                    home,
                    SimTime::ZERO,
                    types::PEvent::Submit {
                        home,
                        template: None,
                        original_birth: None,
                    },
                );
            }
        }
        Ok(sim)
    }

    fn series_meta(&self, seed: u64, scfg: &SeriesConfig) -> SeriesMeta {
        SeriesMeta {
            protocol: self.ctx.spec.name().to_string(),
            mpl: self.ctx.cfg.mpl,
            seed,
            window_s: scfg.window.as_secs_f64(),
            per_site: scfg.per_site,
        }
    }

    fn install_series(&mut self, rec: series::SeriesRecorder, scfg: &SeriesConfig) {
        let mut rec = Box::new(rec);
        if self.warmup_target > 0 {
            rec.begin_warmup();
        }
        self.series_per_site = scfg.per_site;
        self.series = Some(rec);
    }

    fn finish_series(&mut self) -> std::io::Result<Series> {
        let rec = self.series.take().expect("series recorder installed");
        let now = self.barrier_now;
        let per_site = self.series_per_site;
        rec.finish_with(now, |end| snapshot(&mut self.shards, per_site, end))
    }

    #[inline]
    fn shard_mut(&mut self, k: usize) -> &mut Shard {
        self.shards[k].as_mut().expect("shard home")
    }

    /// The main window/barrier loop.
    fn execute(&mut self) {
        let n_shards = self.shards.len();
        // Persistent worker threads, one per shard; the boxed shard
        // ping-pongs over a channel pair. With one shard everything
        // runs inline on this thread — same loop, no channels.
        type WorkerChan = (
            mpsc::Sender<(Box<Shard>, SimTime)>,
            mpsc::Receiver<Box<Shard>>,
        );
        let mut workers: Vec<WorkerChan> = Vec::new();
        let mut joins = Vec::new();
        if n_shards > 1 {
            for _ in 0..n_shards {
                let (tx_job, rx_job) = mpsc::channel::<(Box<Shard>, SimTime)>();
                let (tx_done, rx_done) = mpsc::channel::<Box<Shard>>();
                joins.push(std::thread::spawn(move || {
                    while let Ok((mut sh, horizon)) = rx_job.recv() {
                        sh.run_window(horizon);
                        if tx_done.send(sh).is_err() {
                            break;
                        }
                    }
                }));
                workers.push((tx_job, rx_done));
            }
        }
        let cap = self.ctx.cfg.run.max_sim_time;
        let mut out_idx: Vec<usize> = Vec::with_capacity(n_shards);
        loop {
            let t_sizing = self.ctx.profiled.then(std::time::Instant::now);
            // 1. The next event anywhere fixes the window base.
            let next_ev = self
                .shards
                .iter()
                .filter_map(|s| s.as_ref().expect("shard home").cal.peek_time())
                .min();
            let Some(next_ev) = next_ev else {
                panic!(
                    "event calendar drained — stuck state:\n{}",
                    self.dump_stuck()
                );
            };
            if cap.is_some_and(|cap| next_ev > cap) {
                break;
            }
            let base = self.barrier_now.max(next_ev);
            if let Some(t) = t_sizing {
                self.profile.as_mut().expect("profiled").barrier_ns +=
                    t.elapsed().as_nanos() as u64;
            }
            // 2. Series boundaries at or before the base close now
            //    (everything before `base` has been dispatched), and a
            //    boundary inside the window truncates it so windows
            //    never straddle a boundary.
            let t_series = self.ctx.profiled.then(std::time::Instant::now);
            self.close_series(base);
            let mut horizon = base + self.lookahead;
            if let Some(rec) = self.series.as_ref() {
                let b = rec.next_boundary();
                if b > base && b < horizon {
                    horizon = b;
                }
            }
            if let Some(t) = t_series {
                self.profile.as_mut().expect("profiled").series_ns += t.elapsed().as_nanos() as u64;
            }
            if let Some(cap) = cap {
                // Events exactly at the cap still run (the serial
                // engine dispatches them before noticing `now > cap`).
                let edge = SimTime(cap.as_micros() + 1);
                horizon = horizon.min(edge);
            }
            // 3. Run every shard's window.
            if n_shards == 1 {
                self.shard_mut(0).run_window(horizon);
            } else {
                out_idx.clear();
                for (k, worker) in workers.iter().enumerate() {
                    let sh = self.shards[k].as_mut().expect("shard home");
                    let busy = sh.cal.peek_time().is_some_and(|t| t < horizon);
                    if busy {
                        let sh = self.shards[k].take().expect("shard home");
                        worker.0.send((sh, horizon)).expect("worker alive");
                        out_idx.push(k);
                    } else {
                        // Nothing to run: advance the clock in place
                        // instead of paying a channel round trip.
                        sh.run_window(horizon);
                    }
                }
                for &k in &out_idx {
                    let sh = workers[k].1.recv().expect("worker returns its shard");
                    self.shards[k] = Some(sh);
                }
            }
            self.barrier_now = horizon;
            // 4. Exchange mailboxes: route every outbox event to its
            //    target shard at the same (time, key).
            let t_mail = self.ctx.profiled.then(std::time::Instant::now);
            for k in 0..n_shards {
                let outbox = std::mem::take(&mut self.shard_mut(k).outbox);
                for (at, key, ev) in outbox {
                    let target = self.ctx.site_shard[ev.site()];
                    debug_assert_ne!(target, k, "outbox event for the home shard");
                    self.shard_mut(target).cal.schedule(at, key, ev);
                }
            }
            if let Some(t) = t_mail {
                self.profile.as_mut().expect("profiled").mailbox_ns +=
                    t.elapsed().as_nanos() as u64;
            }
            // 5. Doomed incarnations (exec-phase crash recovery,
            //    borrower cascades) are torn down everywhere, in an
            //    order independent of the shard layout.
            let t_locks = self.ctx.profiled.then(std::time::Instant::now);
            let mut dooms: Vec<(TxnUid, SimTime, AbortReason, SiteId)> = Vec::new();
            for k in 0..n_shards {
                dooms.append(&mut self.shard_mut(k).doomed);
            }
            dooms.sort_by_key(|&(uid, at, reason, site)| (uid, at, reason as u8, site));
            for (uid, at, reason, _) in dooms {
                self.teardown_txn(uid, at, reason);
            }
            // 6. Global deadlock detection over the merged wait-for
            //    graph (the serial engine checks at every block; a
            //    window only defers detection, never changes the set
            //    of cycles).
            self.detect_deadlocks();
            if let Some(t) = t_locks {
                self.profile.as_mut().expect("profiled").locks_ns += t.elapsed().as_nanos() as u64;
            }
            // 7. Trace merge: per-site buffers interleave by
            //    (time, site, seq) into one globally ordered stream.
            let t_ctl = self.ctx.profiled.then(std::time::Instant::now);
            self.drain_traces();
            // 8. Run control on the never-reset global commit count.
            let done = self.run_control();
            if let Some(t) = t_ctl {
                self.profile.as_mut().expect("profiled").barrier_ns +=
                    t.elapsed().as_nanos() as u64;
            }
            if done {
                break;
            }
        }
        self.drain_traces();
        drop(workers); // closes the job channels…
        for j in joins {
            j.join().expect("worker exits cleanly"); // …and the workers drain
        }
    }

    /// Advance warm-up / completion bookkeeping at a barrier; true
    /// when the run is done.
    fn run_control(&mut self) -> bool {
        let now = self.barrier_now;
        let total: u64 = self
            .shards
            .iter()
            .flat_map(|s| &s.as_ref().expect("shard home").sites)
            .map(|ps| ps.commits_total)
            .sum();
        // Whole-run throughput samples for steady-state detection
        // (warm-up included, exactly like the serial engine's stream).
        while total - self.conv_cursor >= self.batch_size {
            let span = now.since(self.conv_batch_started).as_secs_f64();
            if span > 0.0 {
                self.conv_rates.push(self.batch_size as f64 / span);
                self.conv_starts.push(self.conv_batch_started);
            }
            self.conv_cursor += self.batch_size;
            self.conv_batch_started = now;
        }
        if !self.warmup_done && total >= self.warmup_target {
            self.warmup_done = true;
            self.measured_base = total;
            self.measure_start = now;
            self.bm_batch_started = now;
            // Close the partial warm-up window against the pre-reset
            // counters, then zero everything (recorder baselines
            // included) so measured windows tile the measurement
            // interval.
            if let Some(mut rec) = self.series.take() {
                let per_site = self.series_per_site;
                rec.close_warmup_with(now, |end| snapshot(&mut self.shards, per_site, end));
                self.series = Some(rec);
            }
            for sh in &mut self.shards {
                let sh = sh.as_mut().expect("shard home");
                for ps in &mut sh.sites {
                    ps.metrics.reset(now);
                    ps.cpu.reset_stats(now);
                    for d in &mut ps.data_disks {
                        d.reset_stats(now);
                    }
                    for d in &mut ps.log_disks {
                        d.reset_stats(now);
                    }
                    if let Some(bs) = ps.batched_logs.as_mut() {
                        for b in bs {
                            b.reset_stats(now);
                        }
                    }
                }
            }
        }
        if !self.warmup_done {
            return false;
        }
        // Measured throughput batches for the report's CI.
        let measured = total - self.measured_base;
        while measured - self.bm_cursor >= self.batch_size {
            let span = now.since(self.bm_batch_started).as_secs_f64();
            if span > 0.0 {
                self.bm.record(self.batch_size as f64 / span);
            }
            self.bm_cursor += self.batch_size;
            self.bm_batch_started = now;
        }
        // The warm-up reset lands on a barrier and may absorb commits
        // past the warm-up target, so completion counts *measured*
        // commits — the report always covers at least the requested
        // measurement interval.
        measured >= self.measured_target
    }

    fn close_series(&mut self, now: SimTime) {
        if let Some(mut rec) = self.series.take() {
            let per_site = self.series_per_site;
            rec.close_through_with(now, |end| snapshot(&mut self.shards, per_site, end));
            self.series = Some(rec);
        }
    }

    /// Tear down every remnant of a doomed incarnation and schedule
    /// its restart. Idempotent per uid: the home record is the dedup
    /// token (two cohorts of one transaction can doom it in the same
    /// window). Returns the sites whose lock/cohort state may have
    /// changed (the cohort sites plus the home) — lock releases grant
    /// only within their own site, so every other site's wait-for
    /// fragment is untouched.
    fn teardown_txn(
        &mut self,
        uid: TxnUid,
        doom_time: SimTime,
        reason: AbortReason,
    ) -> Vec<SiteId> {
        let now = self.barrier_now;
        let home = uid_home(uid);
        let home_shard = self.ctx.site_shard[home];
        let Some(t) = self.shard_mut(home_shard).site_mut(home).txns.remove(&uid) else {
            return Vec::new(); // already torn down this barrier
        };
        let sites: Vec<SiteId> = t.template.sites.clone();
        for (ord, &site) in sites.iter().enumerate() {
            let k = self.ctx.site_shard[site];
            let sh = self.shard_mut(k);
            sh.teardown_cohort(site, uid, ord as u32);
            sh.mark_dead(site, uid, doom_time);
        }
        self.shard_mut(home_shard).mark_dead(home, uid, doom_time);
        {
            let sh = self.shard_mut(home_shard);
            let ps = sh.site_mut(home);
            ps.metrics.live_txns.add(now, -1.0);
            ps.metrics.record_abort(reason);
        }
        let ext = t.ext;
        self.shard_mut(home_shard)
            .trace_at(home, ext, doom_time, |at| TraceEvent::Aborted {
                at,
                txn: ext,
            });
        let delay = self.shard_mut(home_shard).restart_delay(home);
        let at = (doom_time + delay).max(now);
        self.shard_mut(home_shard).sched(
            home,
            at,
            types::PEvent::Submit {
                home,
                template: Some(Box::new(t.template)),
                original_birth: Some(t.original_birth),
            },
        );
        let mut touched = sites;
        if !touched.contains(&home) {
            touched.push(home);
        }
        touched
    }

    /// Find and break every cycle in the global uid-level wait-for
    /// graph. Victim rule matches the serial engine: the youngest
    /// transaction in the cycle (max birth, external id as tiebreak).
    ///
    /// Tearing down a victim only releases locks at its own cohort
    /// sites, so the wait-for fragments of every *other* site are
    /// unchanged between victim rounds. The per-site fragments are
    /// cached across the loop and only the sites touched by the last
    /// teardown are re-collected; the merge walks sites in the same
    /// fixed global order as a full rebuild, so the assembled edge
    /// lists — and therefore the cycle search and victim choice — are
    /// identical.
    fn detect_deadlocks(&mut self) {
        type SiteFrag = Vec<(TxnUid, Vec<TxnUid>)>;
        let num_sites = self.ctx.site_shard.len();
        let mut frags: Vec<Option<SiteFrag>> = vec![None; num_sites];
        loop {
            // Re-collect fragments for invalidated sites: waiting
            // cohorts in sorted key order, each with its blockers.
            for sh in &self.shards {
                let sh = sh.as_ref().expect("shard home");
                for ps in &sh.sites {
                    if frags[ps.idx].is_some() {
                        continue;
                    }
                    let mut keys: Vec<(TxnUid, u32)> = ps
                        .cohorts
                        .iter()
                        .filter(|(_, c)| c.waiting_lock)
                        .map(|(&k, _)| k)
                        .collect();
                    keys.sort_unstable();
                    let mut frag: SiteFrag = Vec::with_capacity(keys.len());
                    for (uid, ord) in keys {
                        let c = &ps.cohorts[&(uid, ord)];
                        let mut out = Vec::new();
                        ps.locks.for_each_blocker(c.lock_owner, |o| {
                            let (buid, _) = ps.owner_cohorts[o.index()];
                            if buid != uid {
                                out.push(buid);
                            }
                        });
                        frag.push((uid, out));
                    }
                    frags[ps.idx] = Some(frag);
                }
            }
            // Merge in fixed global order: shards ascending, sites
            // ascending, waiting cohorts in sorted key order. A stable
            // sort by uid groups the per-cohort entries while keeping
            // each uid's blocker lists in site-visit order, so the
            // concatenated adjacency is exactly what a global
            // uid-keyed map built in the same walk would hold.
            let mut entries: Vec<(TxnUid, &[TxnUid])> = Vec::new();
            for sh in &self.shards {
                let sh = sh.as_ref().expect("shard home");
                for ps in &sh.sites {
                    let frag = frags[ps.idx].as_ref().expect("fragment filled above");
                    for (uid, blockers) in frag {
                        entries.push((*uid, blockers.as_slice()));
                    }
                }
            }
            entries.sort_by_key(|e| e.0);
            // Compressed adjacency: node i's blockers are
            // adj_dat[adj_off[i]..adj_off[i + 1]] — flat arrays, no
            // per-node allocation.
            let mut waiting: Vec<TxnUid> = Vec::new();
            let mut adj_off: Vec<usize> = Vec::new();
            let mut adj_dat: Vec<TxnUid> = Vec::new();
            for (uid, blockers) in entries {
                if waiting.last() != Some(&uid) {
                    waiting.push(uid);
                    adj_off.push(adj_dat.len());
                }
                adj_dat.extend_from_slice(blockers);
            }
            adj_off.push(adj_dat.len());
            // Under skewed access most waits are *chains* ending at a
            // running owner, not cycles, and a cycle search from every
            // waiter at every barrier dominates the whole engine. So
            // first peel the graph down to its core — the nodes that
            // could lie on a cycle (see [`cycle_core`]) — and search
            // only from those, in the same sorted order. Non-core
            // nodes can never be on a cycle and no non-core node has
            // an edge back into the core, so restricting both the
            // start set and the DFS edges cannot change which cycle
            // is found first or which victim dies.
            let (removed, tgt) = cycle_core(&waiting, &adj_off, &adj_dat);
            if removed.iter().all(|&r| r) {
                break;
            }
            // Every core node keeps at least one edge to another core
            // node (that is the peel's fixpoint condition), so walking
            // first core edges from the smallest core node must close
            // a cycle within |core| steps — no per-start search
            // needed. The walk is deterministic: nodes are sorted,
            // adjacency is in fixed global site order, and both are
            // shard-layout-invariant.
            let n = waiting.len();
            let start = (0..n).find(|&i| !removed[i]).expect("non-empty core");
            let mut pos_in_path = vec![usize::MAX; n];
            let mut path: Vec<usize> = Vec::new();
            let mut cur = start;
            let cycle: Vec<TxnUid> = loop {
                pos_in_path[cur] = path.len();
                path.push(cur);
                let next = (adj_off[cur]..adj_off[cur + 1])
                    .find_map(|e| {
                        let j = tgt[e];
                        (j != u32::MAX && !removed[j as usize]).then_some(j as usize)
                    })
                    .expect("core node has a core edge");
                if pos_in_path[next] != usize::MAX {
                    break path[pos_in_path[next]..]
                        .iter()
                        .map(|&i| waiting[i])
                        .collect();
                }
                cur = next;
            };
            let victim = self.youngest(&cycle);
            {
                let now = self.barrier_now;
                let touched = self.teardown_txn(victim, now, AbortReason::Deadlock);
                for s in touched {
                    frags[s] = None;
                }
            }
        }
    }

    /// The cycle member with the latest birth (external id breaks
    /// ties) — the serial engine's victim rule.
    fn youngest(&mut self, cycle: &[TxnUid]) -> TxnUid {
        *cycle
            .iter()
            .max_by_key(|&&uid| {
                let home = uid_home(uid);
                let k = self.ctx.site_shard[home];
                let t = &self.shards[k]
                    .as_ref()
                    .expect("shard home")
                    .site_ref(home)
                    .txns[&uid];
                (t.birth.as_micros(), t.ext)
            })
            .expect("non-empty cycle")
    }

    /// Merge per-site trace buffers into the sink, globally ordered by
    /// (time, site, per-site sequence).
    fn drain_traces(&mut self) {
        let mut staged: Vec<(SimTime, SiteId, u64, TraceEvent)> = Vec::new();
        for sh in &mut self.shards {
            let sh = sh.as_mut().expect("shard home");
            for ps in &mut sh.sites {
                let site = ps.idx;
                staged.extend(
                    ps.trace_buf
                        .drain(..)
                        .map(|(at, seq, ev)| (at, site, seq, ev)),
                );
            }
        }
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        staged.sort_by_key(|&(at, site, seq, _)| (at, site, seq));
        for (_, _, _, ev) in &staged {
            sink.record(ev);
        }
    }

    /// Assemble the report by merging per-site metrics in fixed site
    /// order — the parallel twin of `Simulation::report`.
    fn report(&mut self) -> SimReport {
        let now = self.barrier_now;
        let window = now.since(self.measure_start).as_secs_f64();

        // Merge the per-site metric stores.
        let mut committed = 0u64;
        let mut aborted_deadlock = 0u64;
        let mut aborted_surprise = 0u64;
        let mut aborted_borrower = 0u64;
        let mut aborted_crash = 0u64;
        let mut exec_messages = 0u64;
        let mut commit_messages = 0u64;
        let mut forced_writes = 0u64;
        let mut borrowed_pages = 0u64;
        let mut master_crashes = 0u64;
        let mut cohort_crashes = 0u64;
        let mut master_crash_trials = 0u64;
        let mut cohort_crash_trials = 0u64;
        let mut blocked_on_crash_cohorts = 0u64;
        let mut crash_block_time = Tally::new();
        let mut response = Tally::new();
        let mut response_hist = DurationHistogram::new();
        let mut attempt_response = Tally::new();
        let mut shelf_time = Tally::new();
        let mut prepared_time = Tally::new();
        let mut phase_execution = DurationHistogram::new();
        let mut phase_voting = DurationHistogram::new();
        let mut phase_decision = DurationHistogram::new();
        let mut blocked_area = 0.0f64;
        let mut live_area = 0.0f64;
        let mut events = 0u64;
        let mut site_resources = Vec::with_capacity(self.ctx.n_sites);
        let mut batches = 0u64;
        let mut batched_writes = 0u64;
        for sh in &mut self.shards {
            let sh = sh.as_mut().expect("shard home");
            events += sh.cal.dispatched_count();
            for ps in &mut sh.sites {
                let m = &mut ps.metrics;
                committed += m.committed.get();
                aborted_deadlock += m.aborted_deadlock.get();
                aborted_surprise += m.aborted_surprise.get();
                aborted_borrower += m.aborted_borrower.get();
                aborted_crash += m.aborted_crash.get();
                exec_messages += m.exec_messages.get();
                commit_messages += m.commit_messages.get();
                forced_writes += m.forced_writes.get();
                borrowed_pages += m.borrowed_pages.get();
                master_crashes += m.master_crashes.get();
                cohort_crashes += m.cohort_crashes.get();
                master_crash_trials += m.master_crash_trials.get();
                cohort_crash_trials += m.cohort_crash_trials.get();
                blocked_on_crash_cohorts += m.blocked_on_crash_cohorts.get();
                crash_block_time.merge(&m.crash_block_time);
                response.merge(&m.response);
                response_hist.merge(&m.response_hist);
                attempt_response.merge(&m.attempt_response);
                shelf_time.merge(&m.shelf_time);
                prepared_time.merge(&m.prepared_time);
                phase_execution.merge(&m.phase_execution);
                phase_voting.merge(&m.phase_voting);
                phase_decision.merge(&m.phase_decision);
                blocked_area += m.blocked_txns.integral_seconds(now);
                live_area += m.live_txns.integral_seconds(now);

                let mut cpu_acc = ResourceAcc::default();
                let mut dd_acc = ResourceAcc::default();
                let mut ld_acc = ResourceAcc::default();
                cpu_acc.push(
                    ps.cpu.utilization(now),
                    ps.cpu.mean_queue_depth(now),
                    ps.cpu.mean_wait().as_secs_f64(),
                    ps.cpu.max_queue_depth(),
                    ps.cpu.occupancy(now),
                );
                for d in &mut ps.data_disks {
                    dd_acc.push(
                        d.utilization(now),
                        d.mean_queue_depth(now),
                        d.mean_wait().as_secs_f64(),
                        d.max_queue_depth(),
                        d.occupancy(now),
                    );
                }
                match ps.batched_logs.as_mut() {
                    Some(bs) => {
                        for b in bs {
                            let util = b.utilization(now);
                            let queue = b.mean_queue_depth(now);
                            let max = b.max_queue_depth();
                            ld_acc.push(util, queue, 0.0, max, b.occupancy(now));
                            batches += b.batches_served();
                            batched_writes += b.writes_served();
                        }
                    }
                    None => {
                        for d in &mut ps.log_disks {
                            ld_acc.push(
                                d.utilization(now),
                                d.mean_queue_depth(now),
                                d.mean_wait().as_secs_f64(),
                                d.max_queue_depth(),
                                d.occupancy(now),
                            );
                            batches += d.served();
                            batched_writes += d.served();
                        }
                    }
                }
                site_resources.push(ResourceReport {
                    cpu: cpu_acc.stats(),
                    data_disk: dd_acc.stats(),
                    log_disk: ld_acc.stats(),
                });
            }
        }
        let averaged = ResourceReport::average(&site_resources);
        let utilizations = Utilizations {
            cpu: averaged.cpu.utilization,
            data_disk: averaged.data_disk.utilization,
            log_disk: averaged.log_disk.utilization,
        };
        let throughput = if window > 0.0 {
            committed as f64 / window
        } else {
            0.0
        };
        let mean_log_batch = if batches == 0 {
            0.0
        } else {
            batched_writes as f64 / batches as f64
        };
        let block_ratio = if live_area > 0.0 {
            blocked_area / live_area
        } else {
            0.0
        };
        let per = |count: u64| {
            if committed == 0 {
                0.0
            } else {
                count as f64 / committed as f64
            }
        };

        // Steady-state scan over the orchestrator-owned whole-run
        // throughput samples (the twin of `Metrics::convergence`).
        let ss = simkernel::stats::mser_truncation(&self.conv_rates);
        let steady_from_s = if ss.converged {
            self.conv_starts[ss.truncated].as_secs_f64()
        } else {
            f64::NAN
        };
        let warmup_ended_s = self.measure_start.as_secs_f64();
        let convergence = crate::metrics::ConvergenceReport {
            samples: ss.samples as u64,
            converged: ss.converged,
            steady_from_s,
            warmup_ended_s,
            warmup_sufficient: ss.converged && steady_from_s <= warmup_ended_s,
        };

        SimReport {
            protocol: self.ctx.spec.name().to_string(),
            mpl: self.ctx.cfg.mpl,
            sim_seconds: window,
            committed,
            aborted_deadlock,
            aborted_surprise,
            aborted_borrower,
            aborted_crash,
            throughput,
            throughput_ci: self.bm.confidence_interval(),
            mean_response_s: response.mean(),
            p50_response_s: response_hist.p50().as_secs_f64(),
            p95_response_s: response_hist.p95().as_secs_f64(),
            p99_response_s: response_hist.p99().as_secs_f64(),
            mean_attempt_response_s: attempt_response.mean(),
            block_ratio,
            borrow_ratio: per(borrowed_pages),
            exec_messages_per_commit: per(exec_messages),
            commit_messages_per_commit: per(commit_messages),
            forced_writes_per_commit: per(forced_writes),
            mean_shelf_time_s: shelf_time.mean(),
            mean_prepared_time_s: prepared_time.mean(),
            phase_latencies: PhaseLatencies {
                execution: LatencySummary::from_histogram(&phase_execution),
                voting: LatencySummary::from_histogram(&phase_voting),
                decision: LatencySummary::from_histogram(&phase_decision),
            },
            utilizations,
            site_resources,
            // The per-incarnation overhead cross-check lives in the
            // serial engine only; the parallel engine reports the
            // neutral zero-checked state.
            overhead_check: crate::metrics::OverheadCheck::default(),
            mean_log_batch,
            faults: FaultCounters {
                master_crashes,
                cohort_crashes,
                messages_lost: 0,
                retransmissions: 0,
                retry_escalations: 0,
                termination_rounds: 0,
                master_crash_trials,
                cohort_crash_trials,
                message_loss_trials: 0,
                blocked_on_crash_cohorts,
                mean_blocked_on_crash_s: crash_block_time.mean(),
            },
            convergence,
            events,
        }
    }

    /// Post-mortem for the calendar-drain panic.
    fn dump_stuck(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for sh in &self.shards {
            let sh = sh.as_ref().expect("shard home");
            for ps in &sh.sites {
                let mut uids: Vec<_> = ps.txns.keys().copied().collect();
                uids.sort_unstable();
                for uid in uids {
                    let t = &ps.txns[&uid];
                    let _ = writeln!(
                        out,
                        "txn {} home {} phase {:?} wd={} votes={} acks={}",
                        t.ext, ps.idx, t.phase, t.pending_workdone, t.pending_votes, t.pending_acks
                    );
                }
                let mut keys: Vec<_> = ps.cohorts.keys().copied().collect();
                keys.sort_unstable();
                for key in keys {
                    let c = &ps.cohorts[&key];
                    let _ = writeln!(
                        out,
                        "  cohort {} site {} phase {:?} access {}/{} wait={} down={}",
                        c.ext,
                        ps.idx,
                        c.phase,
                        c.next_access,
                        c.accesses.len(),
                        c.waiting_lock,
                        c.down,
                    );
                }
            }
        }
        out
    }
}

/// Cumulative counters since measurement start, summed over every
/// site — the snapshot the series recorder diffs per window.
/// The cycle core of the waits-for graph, in input (sorted) order:
/// restrict edges to targets that are themselves waiting (a cycle
/// node needs out-edges, and only waiting cohorts have them), then
/// peel nodes with no remaining out-edges until a fixed point. Every
/// cycle lies entirely inside the surviving core, and no peeled node
/// has an edge into it (such an edge would have kept it alive), so an
/// empty core proves there is no deadlock without running a single
/// DFS — the common case at every barrier.
/// Peel the wait-for graph down to the nodes that can lie on a cycle.
///
/// `waiting` is the sorted, deduplicated node list; node `i`'s
/// blockers are `adj_dat[adj_off[i]..adj_off[i + 1]]` (edges to
/// non-waiting owners are ignored — a runner is never blocked, so it
/// cannot be on a cycle). Kahn-style peeling repeatedly removes nodes
/// whose remaining out-degree is zero: such a node waits only on
/// runners or already-peeled nodes, so no cycle passes through it.
/// Returns the removed mask plus the edge targets resolved to node
/// indices (`u32::MAX` for non-waiting owners), parallel to
/// `adj_dat`. Every cycle of the graph lies entirely within the
/// surviving core, and no peeled node has an edge into the core (it
/// would never have been peeled), so a cycle search restricted to the
/// core is exhaustive.
fn cycle_core(waiting: &[TxnUid], adj_off: &[usize], adj_dat: &[TxnUid]) -> (Vec<bool>, Vec<u32>) {
    let n = waiting.len();
    let mut outdeg = vec![0usize; n];
    let mut indeg = vec![0usize; n];
    let mut tgt: Vec<u32> = Vec::with_capacity(adj_dat.len());
    for i in 0..n {
        for v in &adj_dat[adj_off[i]..adj_off[i + 1]] {
            match waiting.binary_search(v) {
                Ok(j) => {
                    outdeg[i] += 1;
                    indeg[j] += 1;
                    tgt.push(j as u32);
                }
                Err(_) => tgt.push(u32::MAX),
            }
        }
    }
    // Reverse adjacency, also compressed.
    let mut roff = vec![0usize; n + 1];
    for j in 0..n {
        roff[j + 1] = roff[j] + indeg[j];
    }
    let mut rdat = vec![0u32; roff[n]];
    let mut cursor = roff.clone();
    for i in 0..n {
        for &j in &tgt[adj_off[i]..adj_off[i + 1]] {
            if j != u32::MAX {
                rdat[cursor[j as usize]] = i as u32;
                cursor[j as usize] += 1;
            }
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| outdeg[i] == 0).collect();
    let mut removed = vec![false; n];
    while let Some(j) = stack.pop() {
        if removed[j] {
            continue;
        }
        removed[j] = true;
        for &i in &rdat[roff[j]..roff[j + 1]] {
            let i = i as usize;
            if !removed[i] {
                outdeg[i] -= 1;
                if outdeg[i] == 0 {
                    stack.push(i);
                }
            }
        }
    }
    (removed, tgt)
}

fn snapshot(shards: &mut [Option<Box<Shard>>], per_site: bool, end: SimTime) -> SeriesSnapshot {
    let mut s = SeriesSnapshot::default();
    for sh in shards.iter_mut() {
        let sh = sh.as_mut().expect("shard home");
        for ps in &mut sh.sites {
            let m = &mut ps.metrics;
            s.committed += m.committed.get();
            s.aborted_deadlock += m.aborted_deadlock.get();
            s.aborted_surprise += m.aborted_surprise.get();
            s.aborted_borrower += m.aborted_borrower.get();
            s.exec_messages += m.exec_messages.get();
            s.commit_messages += m.commit_messages.get();
            s.blocked_area += m.blocked_txns.integral_seconds(end);
            s.live_area += m.live_txns.integral_seconds(end);
            if per_site {
                let data_q: usize = ps.data_disks.iter().map(|d| d.queued()).sum();
                let log_q: usize = match ps.batched_logs.as_ref() {
                    Some(bs) => bs.iter().map(|b| b.queued()).sum(),
                    None => ps.log_disks.iter().map(|d| d.queued()).sum(),
                };
                s.site_rows.push(SiteRow {
                    committed: m.committed.get(),
                    cpu_q: ps.cpu.queued() as u64,
                    data_q: data_q as u64,
                    log_q: log_q as u64,
                });
            }
        }
    }
    s
}
