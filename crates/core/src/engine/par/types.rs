//! State and event types of the sharded conservative parallel engine.
//!
//! The parallel engine cannot address transactions and cohorts through
//! the serial engine's slab handles: a handle is an index into one
//! process-wide arena whose allocation order depends on global event
//! interleaving, which a sharded run must not observe. Instead every
//! transaction gets a *uid* composed from its home site and a per-home
//! sequence number — derivable at any site without coordination — and
//! cohorts are keyed `(uid, ordinal)` in per-site maps. All
//! cross-shard references travel as plain data (uids, ordinals, access
//! lists), never as pointers into another shard's state.

use super::super::glog::BatchedLog;
use super::super::trace::TraceEvent;
use super::super::types::{CohortPhase, TxnPhase, Vote};
use crate::metrics::Metrics;
use crate::workload::{Access, SiteId, TxnTemplate};
use distlocks::{LockManager, OwnerId};
use simkernel::stats::Tally;
use simkernel::{SimRng, SimTime, Station};
use std::collections::HashMap;

/// Transaction uid: `home << 40 | per-home sequence`. A fresh uid is
/// allocated for every incarnation (restarts included), so a uid never
/// names two protocol instances.
pub(crate) type TxnUid = u64;

/// Bits reserved for the per-home sequence (2^40 incarnations per
/// site; a run would take years of wall time to exhaust it).
pub(crate) const UID_HOME_SHIFT: u32 = 40;

#[inline]
pub(crate) fn make_uid(home: SiteId, seq: u64) -> TxnUid {
    debug_assert!(seq < (1 << UID_HOME_SHIFT));
    ((home as u64) << UID_HOME_SHIFT) | seq
}

#[inline]
pub(crate) fn uid_home(uid: TxnUid) -> SiteId {
    (uid >> UID_HOME_SHIFT) as SiteId
}

/// CPU work item (parallel twin of the serial `CpuJob`).
#[derive(Debug, Clone)]
pub(crate) enum PCpuJob {
    /// Process one data page for a cohort.
    Data { uid: TxnUid, ord: u32 },
    /// Sender-side cost of a remote message.
    MsgSend { msg: PMsg },
    /// Receiver-side cost of a remote message.
    MsgRecv { msg: PMsg },
}

/// Data-disk work item.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PDiskJob {
    /// Read one page for a cohort.
    Read { uid: TxnUid, ord: u32 },
    /// Deferred post-commit page write (fire and forget).
    AsyncWrite,
}

/// A forced log write: the external transaction id rides along for
/// tracing, the work payload re-enters the state machine on completion.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PLog {
    pub ext: super::super::types::TxnId,
    pub work: PLogWork,
}

/// What a forced log write means (parallel twin of `LogWork`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum PLogWork {
    CohortPrepare { uid: TxnUid, ord: u32 },
    CohortNoVoteAbort { uid: TxnUid, ord: u32 },
    CohortPrecommit { uid: TxnUid, ord: u32 },
    CohortDecision { uid: TxnUid, ord: u32, commit: bool },
    MasterCollecting { uid: TxnUid },
    MasterPrecommit { uid: TxnUid },
    MasterDecision { uid: TxnUid, commit: bool },
    AcceptorBundle { uid: TxnUid },
    ReplicaDecision { uid: TxnUid },
}

impl PLogWork {
    pub fn label(self) -> super::super::trace::LogLabel {
        use super::super::trace::LogLabel as L;
        match self {
            PLogWork::CohortPrepare { .. } => L::Prepare,
            PLogWork::CohortNoVoteAbort { .. } => L::NoVoteAbort,
            PLogWork::CohortPrecommit { .. } => L::CohortPrecommit,
            PLogWork::CohortDecision { commit: true, .. } => L::CohortCommit,
            PLogWork::CohortDecision { commit: false, .. } => L::CohortAbort,
            PLogWork::MasterCollecting { .. } => L::Collecting,
            PLogWork::MasterPrecommit { .. } => L::MasterPrecommit,
            PLogWork::MasterDecision { commit: true, .. } => L::MasterCommit,
            PLogWork::MasterDecision { commit: false, .. } => L::MasterAbort,
            PLogWork::AcceptorBundle { .. } => L::AcceptorBundle,
            PLogWork::ReplicaDecision { .. } => L::ReplicaDecision,
        }
    }
}

/// A protocol message. `ext` is the sender-known external transaction
/// id, carried for trace gating only.
#[derive(Debug, Clone)]
pub(crate) struct PMsg {
    pub from: SiteId,
    pub to: SiteId,
    pub ext: super::super::types::TxnId,
    pub kind: PMsgKind,
}

/// Message kinds of the parallel envelope: the voting-family
/// choreography over direct or quorum routing, without the loss /
/// termination machinery (configs needing those take the serial path).
///
/// Crash observability (`crashed_at`) piggybacks on the reply
/// messages: each cohort reports its own earliest crash instant, the
/// master min-merges what it hears, and the decision fans the merged
/// value back out — equivalent to the serial engine's shared-state
/// `get_or_insert` because crash instants only arrive in increasing
/// time order within one incarnation.
#[derive(Debug, Clone)]
pub(crate) enum PMsgKind {
    InitCohort {
        uid: TxnUid,
        ord: u32,
        accesses: Vec<Access>,
        n_sibs: u32,
    },
    WorkDone {
        uid: TxnUid,
        ord: u32,
    },
    Prepare {
        uid: TxnUid,
        ord: u32,
    },
    Vote {
        uid: TxnUid,
        ord: u32,
        vote: Vote,
        crashed_at: Option<SimTime>,
    },
    PreCommit {
        uid: TxnUid,
        ord: u32,
    },
    PreAck {
        uid: TxnUid,
        crashed_at: Option<SimTime>,
    },
    Decision {
        uid: TxnUid,
        ord: u32,
        commit: bool,
        crashed_at: Option<SimTime>,
    },
    Ack {
        uid: TxnUid,
    },
    PaxosVote {
        uid: TxnUid,
        ord: u32,
        yes: bool,
        /// Cohort count of the transaction — lets the acceptor size its
        /// tally lazily on the first vote it sees.
        expect: u32,
        crashed_at: Option<SimTime>,
    },
    Accepted {
        uid: TxnUid,
        commit: bool,
        /// Ordinals that voted NO, so the home can exclude them from
        /// the decision round without waiting for its own (acceptor-0)
        /// tally — the serial engine reads this from shared state.
        no_ords: Vec<u32>,
        crashed_at: Option<SimTime>,
    },
    RepDecision {
        uid: TxnUid,
    },
    RepAck {
        uid: TxnUid,
    },
}

impl PMsgKind {
    /// Execution-phase vs commit-phase messages (Tables 3–4 split).
    pub fn is_execution(&self) -> bool {
        matches!(
            self,
            PMsgKind::InitCohort { .. } | PMsgKind::WorkDone { .. }
        )
    }

    pub fn label(&self) -> super::super::trace::MsgLabel {
        use super::super::trace::MsgLabel as L;
        match self {
            PMsgKind::InitCohort { .. } => L::InitCohort,
            PMsgKind::WorkDone { .. } => L::WorkDone,
            PMsgKind::Prepare { .. } => L::Prepare,
            PMsgKind::Vote {
                vote: Vote::Yes, ..
            } => L::VoteYes,
            PMsgKind::Vote { vote: Vote::No, .. } => L::VoteNo,
            PMsgKind::Vote {
                vote: Vote::ReadOnly,
                ..
            } => L::VoteReadOnly,
            PMsgKind::PreCommit { .. } => L::PreCommit,
            PMsgKind::PreAck { .. } => L::PreAck,
            PMsgKind::Decision { commit: true, .. } => L::DecisionCommit,
            PMsgKind::Decision { commit: false, .. } => L::DecisionAbort,
            PMsgKind::Ack { .. } => L::Ack,
            PMsgKind::PaxosVote { yes: true, .. } => L::PaxosVoteYes,
            PMsgKind::PaxosVote { yes: false, .. } => L::PaxosVoteNo,
            PMsgKind::Accepted { .. } => L::Accepted,
            PMsgKind::RepDecision { .. } => L::RepDecision,
            PMsgKind::RepAck { .. } => L::RepAck,
        }
    }
}

/// Simulation event of the parallel engine. Every variant names the
/// single site whose state it touches — the routing invariant that
/// makes sharding sound (see [`PEvent::site`]).
#[derive(Debug, Clone)]
pub(crate) enum PEvent {
    Submit {
        home: SiteId,
        template: Option<Box<TxnTemplate>>,
        original_birth: Option<SimTime>,
    },
    CpuDone {
        site: SiteId,
        job: PCpuJob,
    },
    DataDiskDone {
        site: SiteId,
        disk: usize,
        job: PDiskJob,
    },
    LogDiskDone {
        site: SiteId,
        disk: usize,
        job: PLog,
    },
    LogBatchDone {
        site: SiteId,
        disk: usize,
    },
    MasterRecovered {
        home: SiteId,
        uid: TxnUid,
        commit: bool,
    },
    CohortRecovered {
        site: SiteId,
        uid: TxnUid,
        ord: u32,
    },
    LocalMsg {
        msg: PMsg,
    },
    MsgArrive {
        msg: PMsg,
    },
}

impl PEvent {
    /// The site this event executes at. Only `MsgArrive` may target a
    /// different shard than the handler that scheduled it; everything
    /// else is site-local, which is what lets a shard run a whole time
    /// window without observing its neighbours.
    pub fn site(&self) -> SiteId {
        match self {
            PEvent::Submit { home, .. } | PEvent::MasterRecovered { home, .. } => *home,
            PEvent::CpuDone { site, .. }
            | PEvent::DataDiskDone { site, .. }
            | PEvent::LogDiskDone { site, .. }
            | PEvent::LogBatchDone { site, .. }
            | PEvent::CohortRecovered { site, .. } => *site,
            PEvent::LocalMsg { msg } | PEvent::MsgArrive { msg } => msg.to,
        }
    }
}

/// Master-side transaction state, owned by the home site.
#[derive(Debug)]
pub(crate) struct PTxn {
    pub ext: super::super::types::TxnId,
    pub template: TxnTemplate,
    pub birth: SimTime,
    pub original_birth: SimTime,
    pub phase: TxnPhase,
    pub pending_workdone: usize,
    pub pending_votes: usize,
    pub pending_preacks: usize,
    pub pending_acks: usize,
    /// Cohorts that dropped out of phase two (READ voters, NO voters):
    /// indexed by ordinal; decisions only target the false entries.
    pub parted: Vec<bool>,
    pub no_vote: bool,
    pub next_seq_cohort: usize,
    pub master_done: bool,
    pub accepts_outstanding: usize,
    pub pending_rep_acks: usize,
    pub commit_started: Option<SimTime>,
    pub decided_at: Option<SimTime>,
    /// Earliest crash instant heard from any cohort (or the master's
    /// own crash), min-merged from message payloads.
    pub crashed_at: Option<SimTime>,
}

/// Cohort state, owned by the cohort's site. Unlike the serial engine
/// — which materializes all cohorts at submit time — a remote cohort
/// is created when its `InitCohort` arrives, so it carries its own
/// access list and sibling count.
#[derive(Debug)]
pub(crate) struct PCohort {
    pub ext: super::super::types::CohortId,
    pub txn_ext: super::super::types::TxnId,
    pub home: SiteId,
    pub n_sibs: u32,
    pub accesses: Vec<Access>,
    pub next_access: usize,
    pub phase: CohortPhase,
    pub lock_owner: OwnerId,
    pub waiting_lock: bool,
    pub shelf_since: Option<SimTime>,
    pub prepared_since: Option<SimTime>,
    pub down: bool,
    /// This cohort's own earliest crash instant.
    pub crashed_at: Option<SimTime>,
}

impl PCohort {
    pub fn work_complete(&self) -> bool {
        self.next_access >= self.accesses.len()
    }
}

/// An acceptor's per-transaction vote tally (Paxos Commit), created
/// lazily on the first `PaxosVote` and dropped when the forced bundle
/// record completes (its contents ride into the `Accepted` report).
#[derive(Debug)]
pub(crate) struct AccMirror {
    pub remaining: u32,
    pub no_vote: bool,
    /// Ordinals that voted NO at this acceptor (every acceptor sees
    /// every vote, so all tallies agree).
    pub no_ords: Vec<u32>,
    pub ext: super::super::types::TxnId,
    pub crashed_at: Option<SimTime>,
}

/// One site of the parallel engine: resources, lock table, protocol
/// state, metrics and RNG — everything the serial engine keeps
/// globally, split so a shard owns its sites outright.
pub(crate) struct PSite {
    pub idx: SiteId,
    pub cpu: Station<PCpuJob>,
    pub data_disks: Vec<Station<PDiskJob>>,
    pub log_disks: Vec<Station<PLog>>,
    pub batched_logs: Option<Vec<BatchedLog<PLog>>>,
    pub locks: LockManager,
    /// Lock-owner slot → cohort key, maintained in lock-step with
    /// `register_owner`.
    pub owner_cohorts: Vec<(TxnUid, u32)>,
    pub next_log_disk: usize,
    /// This site's private RNG stream (`mix_seed(seed, site, TAG, 0)`).
    pub rng: SimRng,
    /// Canonical-key sequence: every event scheduled by this site's
    /// handlers gets `site << 48 | next key_seq`.
    pub key_seq: u64,
    /// Home transactions mastered at this site.
    pub txns: HashMap<TxnUid, PTxn>,
    /// Cohorts hosted at this site, keyed `(uid, ordinal)`.
    pub cohorts: HashMap<(TxnUid, u32), PCohort>,
    /// Paxos acceptor tallies hosted at this site.
    pub acc_mirrors: HashMap<TxnUid, AccMirror>,
    /// Dead-letter map: uid → doom time, for incarnations torn down
    /// while messages to this site were still in flight. Never pruned
    /// (a u64→u64 entry per abort; aborts are rare).
    pub dead: HashMap<TxnUid, SimTime>,
    pub next_txn_seq: u64,
    pub next_cohort_seq: u64,
    /// Full per-site metrics; merged in fixed site order at the end.
    pub metrics: Metrics,
    /// Per-home-site response estimate driving the adaptive restart
    /// delay. Never reset.
    pub resp_estimate: Tally,
    /// All-time commit count (never reset) — drives run control.
    pub commits_total: u64,
    /// Trace events staged this window, merged at the barrier.
    pub trace_buf: Vec<(SimTime, u64, TraceEvent)>,
    /// Monotone per-site trace sequence (the merge tiebreak).
    pub trace_seq: u64,
}
