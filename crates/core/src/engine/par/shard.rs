//! One shard of the conservative parallel engine: a block of sites, a
//! keyed calendar, and a reimplementation of the voting-protocol state
//! machine over message-passing state (see [`super::types`]).
//!
//! A shard runs each time window `[base, horizon)` entirely locally:
//! every event it pops names a site it owns, and anything it schedules
//! for a foreign site goes to the `outbox` — sound because the window
//! length never exceeds the minimum cross-shard wire latency, so a
//! foreign-bound message can only fire in a *later* window. The window
//! loop (in [`super`]) exchanges outboxes at the barrier.
//!
//! The interpreter mirrors the serial engine handler for handler; the
//! deliberate behavioural differences (barrier-batch deadlock
//! detection and doomed-transaction teardown, per-site RNG streams,
//! per-cohort blocked-time accounting) are documented at the
//! corresponding handlers and in EXPERIMENTS.md.

use super::super::trace::TraceEvent;
use super::super::types::{CohortPhase, TxnId, TxnPhase, Vote};
use super::types::{
    make_uid, uid_home, AccMirror, PCohort, PCpuJob, PDiskJob, PEvent, PLog, PLogWork, PMsg,
    PMsgKind, PSite, PTxn, TxnUid,
};
use super::ParCtx;
use crate::config::{RestartPolicy, TransType};
use crate::metrics::AbortReason;
use crate::workload::{Access, SiteId, TxnTemplate};
use commitproto::{RecoveryAction, RecoveryRecord, Routing};
use distlocks::{Grant, LockMode, RequestOutcome};
use simkernel::{JobClass, ShardCalendar, SimDuration, SimTime};
use std::sync::Arc;

/// Min-merge a crash instant heard from a message into a local slot —
/// the message-passing equivalent of the serial engine's
/// `get_or_insert` on shared transaction state.
fn merge_crash(slot: &mut Option<SimTime>, seen: Option<SimTime>) {
    if let Some(s) = seen {
        match slot {
            Some(cur) if *cur <= s => {}
            _ => *slot = Some(s),
        }
    }
}

/// A contiguous block of sites with its own calendar and event loop.
pub(crate) struct Shard {
    /// Shard index (= position in the orchestrator's shard vector).
    pub(crate) idx: usize,
    /// First site owned by this shard; sites `lo..lo + sites.len()`.
    pub(crate) lo: SiteId,
    pub(crate) sites: Vec<PSite>,
    pub(crate) cal: ShardCalendar<PEvent>,
    /// Events bound for foreign shards, exchanged at the barrier.
    pub(crate) outbox: Vec<(SimTime, u64, PEvent)>,
    /// Transactions doomed this window (exec-phase crash recovery,
    /// borrower cascades); the barrier tears down their remains
    /// everywhere and schedules the restart.
    pub(crate) doomed: Vec<(TxnUid, SimTime, AbortReason, SiteId)>,
    /// Upper edge of the current window; cross-shard sends must not
    /// fire before it (checked in debug builds).
    pub(crate) horizon: SimTime,
    /// Self-profiling accumulators (populated when `ctx.profiled`).
    pub(crate) prof_calendar_ns: u64,
    pub(crate) prof_dispatch_ns: u64,
    pub(crate) ctx: Arc<ParCtx>,
}

impl Shard {
    pub(crate) fn new(idx: usize, lo: SiteId, sites: Vec<PSite>, ctx: Arc<ParCtx>) -> Shard {
        Shard {
            idx,
            lo,
            sites,
            cal: ShardCalendar::new(),
            outbox: Vec::new(),
            doomed: Vec::new(),
            horizon: SimTime::ZERO,
            prof_calendar_ns: 0,
            prof_dispatch_ns: 0,
            ctx,
        }
    }

    #[inline]
    fn now(&self) -> SimTime {
        self.cal.now()
    }

    #[inline]
    pub(crate) fn site_mut(&mut self, site: SiteId) -> &mut PSite {
        &mut self.sites[site - self.lo]
    }

    #[inline]
    pub(crate) fn site_ref(&self, site: SiteId) -> &PSite {
        &self.sites[site - self.lo]
    }

    /// Stamp a canonical event key from `origin`'s sequence counter.
    /// Keys order same-instant events identically at every shard
    /// count, because each site's handlers run in the same order under
    /// any layout.
    fn key_for(&mut self, origin: SiteId) -> u64 {
        let ps = self.site_mut(origin);
        ps.key_seq += 1;
        ((origin as u64) << 48) | ps.key_seq
    }

    /// Schedule `ev` at `at`, keyed by `origin` (the site whose
    /// handler is running). Foreign-shard targets go to the outbox.
    pub(crate) fn sched(&mut self, origin: SiteId, at: SimTime, ev: PEvent) {
        let key = self.key_for(origin);
        if self.ctx.site_shard[ev.site()] == self.idx {
            self.cal.schedule(at, key, ev);
        } else {
            debug_assert!(
                at >= self.horizon,
                "cross-shard event inside the window: {at} < {}",
                self.horizon
            );
            self.outbox.push((at, key, ev));
        }
    }

    /// Record a trace event at an explicit instant (the barrier uses
    /// this to stamp abort events at their doom time).
    pub(crate) fn trace_at(
        &mut self,
        site: SiteId,
        ext: TxnId,
        at: SimTime,
        make: impl FnOnce(SimTime) -> TraceEvent,
    ) {
        if ext > self.ctx.trace_limit {
            return;
        }
        let ps = self.site_mut(site);
        ps.trace_seq += 1;
        let seq = ps.trace_seq;
        ps.trace_buf.push((at, seq, make(at)));
    }

    fn trace(&mut self, site: SiteId, ext: TxnId, make: impl FnOnce(SimTime) -> TraceEvent) {
        let now = self.now();
        self.trace_at(site, ext, now, make);
    }

    // ------------------------------------------------------------------
    // Window loop
    // ------------------------------------------------------------------

    /// Process every local event firing strictly before `horizon`,
    /// then park the clock at the window edge.
    pub(crate) fn run_window(&mut self, horizon: SimTime) {
        self.horizon = horizon;
        if self.ctx.profiled {
            loop {
                let t0 = std::time::Instant::now();
                let next = self.cal.next_before(horizon);
                let t1 = std::time::Instant::now();
                self.prof_calendar_ns += (t1 - t0).as_nanos() as u64;
                let Some((_, ev)) = next else { break };
                self.dispatch(ev);
                self.prof_dispatch_ns += t1.elapsed().as_nanos() as u64;
            }
        } else {
            while let Some((_, ev)) = self.cal.next_before(horizon) {
                self.dispatch(ev);
            }
        }
        self.cal.advance_to(horizon);
    }

    fn dispatch(&mut self, ev: PEvent) {
        match ev {
            PEvent::Submit {
                home,
                template,
                original_birth,
            } => self.submit_txn(home, template.map(|b| *b), original_birth),
            PEvent::CpuDone { site, job } => {
                let now = self.now();
                if let Some(started) = self.site_mut(site).cpu.complete(now) {
                    self.sched(
                        site,
                        started.done_at,
                        PEvent::CpuDone {
                            site,
                            job: started.job,
                        },
                    );
                }
                self.handle_cpu_done(site, job);
            }
            PEvent::DataDiskDone { site, disk, job } => {
                let now = self.now();
                if let Some(started) = self.site_mut(site).data_disks[disk].complete(now) {
                    self.sched(
                        site,
                        started.done_at,
                        PEvent::DataDiskDone {
                            site,
                            disk,
                            job: started.job,
                        },
                    );
                }
                self.handle_data_disk_done(site, job);
            }
            PEvent::LogDiskDone { site, disk, job } => {
                let now = self.now();
                if let Some(started) = self.site_mut(site).log_disks[disk].complete(now) {
                    self.sched(
                        site,
                        started.done_at,
                        PEvent::LogDiskDone {
                            site,
                            disk,
                            job: started.job,
                        },
                    );
                }
                self.handle_log_done(site, job);
            }
            PEvent::LogBatchDone { site, disk } => {
                let now = self.now();
                let service = self.ctx.cfg.page_disk;
                let (done, next) = self
                    .site_mut(site)
                    .batched_logs
                    .as_mut()
                    .expect("batch completion implies group commit")[disk]
                    .complete(now, service);
                if let Some(done_at) = next {
                    self.sched(site, done_at, PEvent::LogBatchDone { site, disk });
                }
                for work in done {
                    self.handle_log_done(site, work);
                }
            }
            PEvent::MasterRecovered { home, uid, commit } => self.decide_now(home, uid, commit),
            PEvent::CohortRecovered { site, uid, ord } => self.cohort_recovered(site, uid, ord),
            PEvent::LocalMsg { msg } => self.handle_message(msg),
            PEvent::MsgArrive { msg } => {
                let service = self.ctx.cfg.msg_cpu;
                let to = msg.to;
                self.cpu_arrive(to, PCpuJob::MsgRecv { msg }, service, JobClass::High);
            }
        }
    }

    fn handle_cpu_done(&mut self, site: SiteId, job: PCpuJob) {
        match job {
            PCpuJob::Data { uid, ord } => self.cohort_page_processed(site, uid, ord),
            PCpuJob::MsgSend { msg } => {
                let lat = self.ctx.latency[msg.from * self.ctx.n_sites + msg.to];
                if lat == SimDuration::ZERO {
                    // Zero-latency pairs share a region, hence a shard:
                    // deliver without a wire hop, like the serial path.
                    debug_assert_eq!(
                        self.ctx.site_shard[msg.to], self.idx,
                        "zero-latency pair split across shards"
                    );
                    let service = self.ctx.cfg.msg_cpu;
                    let to = msg.to;
                    self.cpu_arrive(to, PCpuJob::MsgRecv { msg }, service, JobClass::High);
                } else {
                    let now = self.now();
                    let from = msg.from;
                    self.sched(from, now + lat, PEvent::MsgArrive { msg });
                }
            }
            PCpuJob::MsgRecv { msg } => self.handle_message(msg),
        }
    }

    fn handle_data_disk_done(&mut self, site: SiteId, job: PDiskJob) {
        match job {
            PDiskJob::Read { uid, ord } => {
                // The cohort may have been torn down at a barrier while
                // its read was in flight.
                if !self.site_ref(site).cohorts.contains_key(&(uid, ord)) {
                    return;
                }
                let service = self.ctx.cfg.page_cpu;
                self.cpu_arrive(site, PCpuJob::Data { uid, ord }, service, JobClass::Low);
            }
            PDiskJob::AsyncWrite => {}
        }
    }

    fn handle_log_done(&mut self, site: SiteId, log: PLog) {
        let ext = log.ext;
        let label = log.work.label();
        self.trace(site, ext, |at| TraceEvent::LogDone {
            at,
            txn: ext,
            label,
            site,
        });
        match log.work {
            PLogWork::CohortPrepare { uid, ord } => self.cohort_prepared(site, uid, ord),
            PLogWork::CohortNoVoteAbort { uid, ord } => self.cohort_no_vote_finish(site, uid, ord),
            PLogWork::CohortPrecommit { uid, ord } => self.cohort_precommitted(site, uid, ord),
            PLogWork::CohortDecision { uid, ord, commit } => {
                self.cohort_finish_decision(site, uid, ord, commit)
            }
            PLogWork::MasterCollecting { uid } => self.send_prepares(site, uid),
            PLogWork::MasterPrecommit { uid } => self.master_precommit_logged(site, uid),
            PLogWork::MasterDecision { uid, commit } => {
                self.master_decision_logged(site, uid, commit)
            }
            PLogWork::AcceptorBundle { uid } => self.acceptor_bundle_logged(site, uid),
            PLogWork::ReplicaDecision { uid, .. } => self.replica_decision_logged(site, uid, ext),
        }
    }

    fn handle_message(&mut self, msg: PMsg) {
        let PMsg { to, ext, kind, .. } = msg;
        match kind {
            PMsgKind::InitCohort {
                uid,
                ord,
                accesses,
                n_sibs,
            } => {
                // Dead-letter check: the incarnation may have been
                // doomed at a barrier while this initiation message was
                // on the wire.
                if self.site_ref(to).dead.contains_key(&uid) {
                    return;
                }
                self.create_cohort(to, uid, ord, uid_home(uid), ext, accesses, n_sibs);
            }
            PMsgKind::WorkDone { uid, ord } => self.master_workdone(to, uid, ord),
            PMsgKind::Prepare { uid, ord } => self.cohort_prepare(to, uid, ord),
            PMsgKind::Vote {
                uid,
                ord,
                vote,
                crashed_at,
            } => self.master_vote(to, uid, ord, vote, crashed_at),
            PMsgKind::PreCommit { uid, ord } => self.cohort_precommit(to, uid, ord),
            PMsgKind::PreAck { uid, crashed_at } => self.master_preack(to, uid, crashed_at),
            PMsgKind::Decision {
                uid,
                ord,
                commit,
                crashed_at,
            } => self.cohort_decision(to, uid, ord, commit, crashed_at),
            PMsgKind::Ack { uid } => self.master_ack(to, uid),
            PMsgKind::PaxosVote {
                uid,
                ord,
                yes,
                expect,
                crashed_at,
            } => self.acceptor_vote(to, uid, ord, yes, expect, ext, crashed_at),
            PMsgKind::Accepted {
                uid,
                commit,
                no_ords,
                crashed_at,
            } => self.master_accepted(to, uid, commit, no_ords, crashed_at),
            PMsgKind::RepDecision { uid } => self.replica_decision(to, uid, ext),
            PMsgKind::RepAck { uid } => self.master_rep_ack(to, uid),
        }
    }

    // ------------------------------------------------------------------
    // Plumbing: messages, CPUs, disks, logs
    // ------------------------------------------------------------------

    fn send(&mut self, from: SiteId, to: SiteId, ext: TxnId, kind: PMsgKind) {
        let label = kind.label();
        let local = from == to;
        self.trace(from, ext, |at| TraceEvent::Send {
            at,
            txn: ext,
            label,
            from,
            to,
            local,
        });
        let msg = PMsg {
            from,
            to,
            ext,
            kind,
        };
        if local {
            let now = self.now();
            self.sched(from, now, PEvent::LocalMsg { msg });
            return;
        }
        // Message counters live at the *sender*, so the attribution is
        // shard-layout invariant.
        if msg.kind.is_execution() {
            self.site_mut(from).metrics.exec_messages.bump();
        } else {
            self.site_mut(from).metrics.commit_messages.bump();
        }
        let service = self.ctx.cfg.msg_cpu;
        self.cpu_arrive(from, PCpuJob::MsgSend { msg }, service, JobClass::High);
    }

    fn cpu_arrive(&mut self, site: SiteId, job: PCpuJob, service: SimDuration, class: JobClass) {
        let now = self.now();
        if let Some(started) = self.site_mut(site).cpu.arrive(now, job, service, class) {
            self.sched(
                site,
                started.done_at,
                PEvent::CpuDone {
                    site,
                    job: started.job,
                },
            );
        }
    }

    fn data_disk_arrive(&mut self, site: SiteId, page: u64, job: PDiskJob) {
        let now = self.now();
        let service = self.ctx.cfg.page_disk;
        let local_page = page % self.ctx.pages_per_site_eff;
        let started = {
            let ps = self.site_mut(site);
            let disk = (local_page % ps.data_disks.len() as u64) as usize;
            ps.data_disks[disk]
                .arrive(now, job, service, JobClass::Low)
                .map(|s| (disk, s))
        };
        if let Some((disk, started)) = started {
            self.sched(
                site,
                started.done_at,
                PEvent::DataDiskDone {
                    site,
                    disk,
                    job: started.job,
                },
            );
        }
    }

    fn force_log(&mut self, site: SiteId, log: PLog) {
        let ext = log.ext;
        let label = log.work.label();
        self.trace(site, ext, |at| TraceEvent::ForceLog {
            at,
            txn: ext,
            label,
            site,
        });
        let now = self.now();
        let service = self.ctx.cfg.page_disk;
        let scheduled = {
            let ps = self.site_mut(site);
            ps.metrics.forced_writes.bump();
            let disk = ps.next_log_disk;
            ps.next_log_disk = (ps.next_log_disk + 1) % ps.log_disks.len();
            if let Some(batchers) = ps.batched_logs.as_mut() {
                batchers[disk]
                    .arrive(now, log, service)
                    .map(|done_at| (done_at, PEvent::LogBatchDone { site, disk }))
            } else {
                ps.log_disks[disk]
                    .arrive(now, log, service, JobClass::Low)
                    .map(|s| {
                        (
                            s.done_at,
                            PEvent::LogDiskDone {
                                site,
                                disk,
                                job: s.job,
                            },
                        )
                    })
            }
        };
        if let Some((at, ev)) = scheduled {
            self.sched(site, at, ev);
        }
    }

    /// Delay before a restarted incarnation resubmits, driven by this
    /// *home site's* response-time estimate (the serial engine keeps
    /// one global estimate; per-home keeps it layout-invariant).
    pub(crate) fn restart_delay(&self, home: SiteId) -> SimDuration {
        match self.ctx.cfg.restart_policy {
            RestartPolicy::AdaptiveResponseTime => {
                let est = &self.site_ref(home).resp_estimate;
                if est.count() > 0 {
                    SimDuration::from_millis_f64(est.mean() * 1_000.0)
                } else {
                    let pages = (self.ctx.cfg.dist_degree * self.ctx.cfg.cohort_size) as u64;
                    (self.ctx.cfg.page_disk + self.ctx.cfg.page_cpu) * pages
                }
            }
            RestartPolicy::Fixed(d) => d,
            RestartPolicy::Immediate => SimDuration::ZERO,
        }
    }

    // ------------------------------------------------------------------
    // Execution phase
    // ------------------------------------------------------------------

    fn submit_txn(
        &mut self,
        home: SiteId,
        template: Option<TxnTemplate>,
        original_birth: Option<SimTime>,
    ) {
        let now = self.now();
        let ctx = Arc::clone(&self.ctx);
        let (uid, n) = {
            let ps = self.site_mut(home);
            let template = template.unwrap_or_else(|| ctx.wl.generate(home, &mut ps.rng));
            let seq = ps.next_txn_seq;
            ps.next_txn_seq += 1;
            let uid = make_uid(home, seq);
            let ext = seq * ctx.n_sites as u64 + home as u64 + 1;
            let n = template.sites.len();
            ps.metrics.live_txns.add(now, 1.0);
            ps.txns.insert(
                uid,
                PTxn {
                    ext,
                    template,
                    birth: now,
                    original_birth: original_birth.unwrap_or(now),
                    phase: TxnPhase::Executing,
                    pending_workdone: n,
                    pending_votes: 0,
                    pending_preacks: 0,
                    pending_acks: 0,
                    parted: vec![false; n],
                    no_vote: false,
                    next_seq_cohort: 1,
                    master_done: false,
                    accepts_outstanding: 0,
                    pending_rep_acks: 0,
                    commit_started: None,
                    decided_at: None,
                    crashed_at: None,
                },
            );
            (uid, n)
        };
        match ctx.cfg.trans_type {
            TransType::Parallel => {
                for ord in 0..n {
                    self.start_cohort(home, uid, ord as u32);
                }
            }
            TransType::Sequential => self.start_cohort(home, uid, 0),
        }
    }

    fn start_cohort(&mut self, home: SiteId, uid: TxnUid, ord: u32) {
        let (site, accesses, n_sibs, ext) = {
            let t = &self.site_ref(home).txns[&uid];
            (
                t.template.sites[ord as usize],
                t.template.accesses[ord as usize].clone(),
                t.template.sites.len() as u32,
                t.ext,
            )
        };
        if site == home {
            self.create_cohort(site, uid, ord, home, ext, accesses, n_sibs);
        } else {
            self.send(
                home,
                site,
                ext,
                PMsgKind::InitCohort {
                    uid,
                    ord,
                    accesses,
                    n_sibs,
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn create_cohort(
        &mut self,
        site: SiteId,
        uid: TxnUid,
        ord: u32,
        home: SiteId,
        txn_ext: TxnId,
        accesses: Vec<Access>,
        n_sibs: u32,
    ) {
        let n_sites = self.ctx.n_sites as u64;
        {
            let ps = self.site_mut(site);
            let cseq = ps.next_cohort_seq;
            ps.next_cohort_seq += 1;
            let cext = cseq * n_sites + site as u64 + 1;
            let owner = ps.locks.register_owner(cext);
            if owner.index() >= ps.owner_cohorts.len() {
                ps.owner_cohorts.resize(owner.index() + 1, (0, 0));
            }
            ps.owner_cohorts[owner.index()] = (uid, ord);
            ps.cohorts.insert(
                (uid, ord),
                PCohort {
                    ext: cext,
                    txn_ext,
                    home,
                    n_sibs,
                    accesses,
                    next_access: 0,
                    phase: CohortPhase::Starting,
                    lock_owner: owner,
                    waiting_lock: false,
                    shelf_since: None,
                    prepared_since: None,
                    down: false,
                    crashed_at: None,
                },
            );
        }
        self.cohort_begin(site, uid, ord);
    }

    fn cohort_begin(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        {
            let Some(c) = self.site_mut(site).cohorts.get_mut(&(uid, ord)) else {
                return;
            };
            debug_assert_eq!(c.phase, CohortPhase::Starting);
            c.phase = CohortPhase::Executing;
        }
        self.cohort_continue(site, uid, ord);
    }

    fn cohort_continue(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let now = self.now();
        let (owner, cext, text, access) = {
            let Some(c) = self.site_ref(site).cohorts.get(&(uid, ord)) else {
                return;
            };
            if c.work_complete() {
                self.cohort_work_finished(site, uid, ord);
                return;
            }
            (c.lock_owner, c.ext, c.txn_ext, c.accesses[c.next_access])
        };
        let mode = if access.update {
            LockMode::Update
        } else {
            LockMode::Read
        };
        match self.site_mut(site).locks.request(owner, access.page, mode) {
            RequestOutcome::Granted { borrowed_from } => {
                if !borrowed_from.is_empty() {
                    self.site_mut(site).metrics.borrowed_pages.bump();
                    let lenders = borrowed_from.len();
                    self.trace(site, text, |at| TraceEvent::Borrowed {
                        at,
                        txn: text,
                        cohort: cext,
                        lenders,
                    });
                }
                self.data_disk_arrive(site, access.page, PDiskJob::Read { uid, ord });
            }
            RequestOutcome::AlreadyHeld => {
                self.data_disk_arrive(site, access.page, PDiskJob::Read { uid, ord });
            }
            RequestOutcome::Blocked => {
                // Deadlocks involving this wait are found at the next
                // barrier by the global detector (a documented family
                // difference from the serial engine's immediate check).
                let ps = self.site_mut(site);
                ps.cohorts.get_mut(&(uid, ord)).unwrap().waiting_lock = true;
                ps.metrics.blocked_txns.add(now, 1.0);
            }
        }
    }

    fn cohort_page_processed(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        {
            let Some(c) = self.site_mut(site).cohorts.get_mut(&(uid, ord)) else {
                return;
            };
            debug_assert_eq!(c.phase, CohortPhase::Executing);
            c.next_access += 1;
        }
        self.cohort_continue(site, uid, ord);
    }

    fn cohort_work_finished(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        // Execution-phase crash window: nothing durable exists yet, so
        // recovery presumes abort (dooming the whole incarnation).
        if let Some(f) = self.ctx.cfg.failures {
            let p = f.exec_crash_prob.unwrap_or(f.cohort_crash_prob);
            if self.cohort_crash_roll(site, uid, ord, p) {
                return;
            }
        }
        let (live_borrows, owner) = {
            let ps = self.site_ref(site);
            let c = &ps.cohorts[&(uid, ord)];
            (ps.locks.has_live_borrows(c.lock_owner), c.lock_owner)
        };
        let _ = owner;
        if self.ctx.spec.opt && live_borrows {
            // §3 OPT: borrowed from an undecided lender — withhold
            // WORKDONE ("on the shelf") until the lender decides.
            let now = self.now();
            let (cext, text) = {
                let c = self.site_mut(site).cohorts.get_mut(&(uid, ord)).unwrap();
                c.phase = CohortPhase::OnShelf;
                c.shelf_since = Some(now);
                (c.ext, c.txn_ext)
            };
            self.trace(site, text, |at| TraceEvent::Shelved {
                at,
                txn: text,
                cohort: cext,
            });
            return;
        }
        self.cohort_send_workdone(site, uid, ord);
    }

    fn cohort_send_workdone(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let now = self.now();
        let (home, text, cext, unshelved) = {
            let ps = self.site_mut(site);
            let Some(c) = ps.cohorts.get_mut(&(uid, ord)) else {
                return;
            };
            let unshelved = c.shelf_since.take();
            c.phase = CohortPhase::WorkDone;
            let out = (c.home, c.txn_ext, c.ext, unshelved.is_some());
            if let Some(since) = unshelved {
                ps.metrics.shelf_time.record_duration(now.since(since));
            }
            out
        };
        if unshelved {
            self.trace(site, text, |at| TraceEvent::Unshelved {
                at,
                txn: text,
                cohort: cext,
            });
        }
        self.send(site, home, text, PMsgKind::WorkDone { uid, ord });
    }

    fn process_grants(&mut self, site: SiteId, grants: Vec<Grant>) {
        let now = self.now();
        for g in grants {
            let (uid, ord) = self.site_ref(site).owner_cohorts[g.owner.index()];
            let (cext, text) = {
                let ps = self.site_mut(site);
                let Some(c) = ps.cohorts.get_mut(&(uid, ord)) else {
                    unreachable!("grant to a dead cohort");
                };
                debug_assert!(c.waiting_lock);
                c.waiting_lock = false;
                let out = (c.ext, c.txn_ext);
                ps.metrics.blocked_txns.add(now, -1.0);
                out
            };
            if !g.borrowed_from.is_empty() {
                self.site_mut(site).metrics.borrowed_pages.bump();
                let lenders = g.borrowed_from.len();
                self.trace(site, text, |at| TraceEvent::Borrowed {
                    at,
                    txn: text,
                    cohort: cext,
                    lenders,
                });
            }
            self.data_disk_arrive(site, g.page, PDiskJob::Read { uid, ord });
        }
    }

    // ------------------------------------------------------------------
    // Voting phase (master side)
    // ------------------------------------------------------------------

    fn master_workdone(&mut self, home: SiteId, uid: TxnUid, _ord: u32) {
        let mut chain_next = None;
        let mut begin = false;
        let sequential = matches!(self.ctx.cfg.trans_type, TransType::Sequential);
        {
            let ps = self.site_mut(home);
            let Some(t) = ps.txns.get_mut(&uid) else {
                // In-flight WORKDONE from an incarnation doomed at a
                // barrier — silently dropped, like the serial engine's
                // stale-handle miss.
                return;
            };
            debug_assert_eq!(t.phase, TxnPhase::Executing);
            debug_assert!(t.pending_workdone > 0);
            t.pending_workdone -= 1;
            if sequential && t.next_seq_cohort < t.template.sites.len() {
                chain_next = Some(t.next_seq_cohort as u32);
                t.next_seq_cohort += 1;
            } else if t.pending_workdone == 0 {
                begin = true;
            }
        }
        if let Some(ord) = chain_next {
            self.start_cohort(home, uid, ord);
            return;
        }
        if begin {
            self.begin_commit(home, uid);
        }
    }

    fn begin_commit(&mut self, home: SiteId, uid: TxnUid) {
        debug_assert!(self.ctx.table.voting, "baselines take the serial path");
        let now = self.now();
        let ext = {
            let t = self.site_mut(home).txns.get_mut(&uid).unwrap();
            t.commit_started = Some(now);
            t.ext
        };
        if self.ctx.table.init_record {
            self.site_mut(home).txns.get_mut(&uid).unwrap().phase = TxnPhase::Collecting;
            self.force_log(
                home,
                PLog {
                    ext,
                    work: PLogWork::MasterCollecting { uid },
                },
            );
        } else {
            self.send_prepares(home, uid);
        }
    }

    fn send_prepares(&mut self, home: SiteId, uid: TxnUid) {
        let quorum = matches!(self.ctx.table.routing, Routing::Quorum);
        let group = self.ctx.group as usize;
        let (ext, sites) = {
            let t = self.site_mut(home).txns.get_mut(&uid).unwrap();
            t.phase = TxnPhase::Voting;
            t.pending_votes = t.template.sites.len();
            if quorum {
                t.accepts_outstanding = group;
            }
            (t.ext, t.template.sites.clone())
        };
        for (ord, site) in sites.into_iter().enumerate() {
            self.send(
                home,
                site,
                ext,
                PMsgKind::Prepare {
                    uid,
                    ord: ord as u32,
                },
            );
        }
    }

    fn master_vote(
        &mut self,
        home: SiteId,
        uid: TxnUid,
        ord: u32,
        vote: Vote,
        ca: Option<SimTime>,
    ) {
        enum AfterVotes {
            Wait,
            Decide(bool),
            OnePhaseCommit,
            Precommit(TxnId),
        }
        let precommit = self.ctx.table.precommit;
        let after = {
            let t = self
                .site_mut(home)
                .txns
                .get_mut(&uid)
                .expect("no stale votes");
            debug_assert_eq!(t.phase, TxnPhase::Voting);
            merge_crash(&mut t.crashed_at, ca);
            match vote {
                Vote::No => {
                    t.no_vote = true;
                    t.parted[ord as usize] = true;
                }
                Vote::ReadOnly => t.parted[ord as usize] = true,
                Vote::Yes => {}
            }
            debug_assert!(t.pending_votes > 0);
            t.pending_votes -= 1;
            if t.pending_votes > 0 {
                AfterVotes::Wait
            } else if t.no_vote {
                AfterVotes::Decide(false)
            } else if t.parted.iter().all(|&p| p) {
                // Every cohort voted READ: one-phase commit, nothing to
                // log or announce beyond the master's own record.
                AfterVotes::OnePhaseCommit
            } else if precommit {
                t.phase = TxnPhase::Precommitting;
                AfterVotes::Precommit(t.ext)
            } else {
                AfterVotes::Decide(true)
            }
        };
        match after {
            AfterVotes::Wait => {}
            AfterVotes::Decide(commit) => self.decide(home, uid, commit),
            AfterVotes::OnePhaseCommit => self.master_decided(home, uid, true),
            AfterVotes::Precommit(ext) => self.force_log(
                home,
                PLog {
                    ext,
                    work: PLogWork::MasterPrecommit { uid },
                },
            ),
        }
    }

    fn master_precommit_logged(&mut self, home: SiteId, uid: TxnUid) {
        let (ext, targets) = {
            let t = self.site_mut(home).txns.get_mut(&uid).unwrap();
            let targets: Vec<(u32, SiteId)> = t
                .template
                .sites
                .iter()
                .enumerate()
                .filter(|(ord, _)| !t.parted[*ord])
                .map(|(ord, s)| (ord as u32, *s))
                .collect();
            t.pending_preacks = targets.len();
            (t.ext, targets)
        };
        for (ord, site) in targets {
            self.send(home, site, ext, PMsgKind::PreCommit { uid, ord });
        }
    }

    fn master_preack(&mut self, home: SiteId, uid: TxnUid, ca: Option<SimTime>) {
        let done = {
            let t = self
                .site_mut(home)
                .txns
                .get_mut(&uid)
                .expect("no stale preacks");
            merge_crash(&mut t.crashed_at, ca);
            debug_assert!(t.pending_preacks > 0);
            t.pending_preacks -= 1;
            t.pending_preacks == 0
        };
        if done {
            self.decide(home, uid, true);
        }
    }

    // ------------------------------------------------------------------
    // Voting phase (cohort side)
    // ------------------------------------------------------------------

    fn cohort_prepare(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let ctx = Arc::clone(&self.ctx);
        let (home, text, owner, read_only) = {
            let ps = self.site_ref(site);
            let c = &ps.cohorts[&(uid, ord)];
            debug_assert!(!c.down);
            debug_assert_eq!(c.phase, CohortPhase::WorkDone);
            let ro = ctx.cfg.read_only_optimization && c.accesses.iter().all(|a| !a.update);
            (c.home, c.txn_ext, c.lock_owner, ro)
        };
        if read_only {
            // §3.2 read-only optimization: vote READ directly to the
            // master, release everything, and drop out of phase two.
            let grants = {
                let ps = self.site_mut(site);
                debug_assert!(!ps.locks.has_live_borrows(owner));
                ps.locks.drop_borrower(owner);
                ps.locks.release_all(owner)
            };
            self.process_grants(site, grants);
            self.send(
                site,
                home,
                text,
                PMsgKind::Vote {
                    uid,
                    ord,
                    vote: Vote::ReadOnly,
                    crashed_at: None,
                },
            );
            self.cohort_done(site, uid, ord);
            return;
        }
        let grants = self.site_mut(site).locks.release_read_locks(owner);
        self.process_grants(site, grants);
        // Surprise NO vote (unilateral abort at prepare time).
        let no = {
            let p = ctx.cfg.cohort_abort_prob;
            p > 0.0 && self.site_mut(site).rng.chance(p)
        };
        if no {
            self.site_mut(site)
                .cohorts
                .get_mut(&(uid, ord))
                .unwrap()
                .phase = CohortPhase::Deciding { commit: false };
            if ctx.table.no_vote_abort_forced {
                self.force_log(
                    site,
                    PLog {
                        ext: text,
                        work: PLogWork::CohortNoVoteAbort { uid, ord },
                    },
                );
            } else {
                self.cohort_no_vote_finish(site, uid, ord);
            }
            return;
        }
        self.site_mut(site)
            .cohorts
            .get_mut(&(uid, ord))
            .unwrap()
            .phase = CohortPhase::Preparing;
        self.force_log(
            site,
            PLog {
                ext: text,
                work: PLogWork::CohortPrepare { uid, ord },
            },
        );
    }

    fn cohort_no_vote_finish(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let (home, text, owner, ca) = {
            let ps = self.site_ref(site);
            let c = &ps.cohorts[&(uid, ord)];
            assert!(
                ps.locks.borrowers_of(c.lock_owner).next().is_none(),
                "NO voter lent data"
            );
            (c.home, c.txn_ext, c.lock_owner, c.crashed_at)
        };
        let grants = {
            let ps = self.site_mut(site);
            ps.locks.drop_borrower(owner);
            ps.locks.release_all(owner)
        };
        self.process_grants(site, grants);
        if matches!(self.ctx.table.routing, Routing::Quorum) {
            self.quorum_vote(site, uid, ord, false);
        } else {
            self.send(
                site,
                home,
                text,
                PMsgKind::Vote {
                    uid,
                    ord,
                    vote: Vote::No,
                    crashed_at: ca,
                },
            );
        }
        self.cohort_done(site, uid, ord);
    }

    fn cohort_prepared(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let now = self.now();
        let (home, text, cext, owner) = {
            let Some(c) = self.site_mut(site).cohorts.get_mut(&(uid, ord)) else {
                return;
            };
            debug_assert_eq!(c.phase, CohortPhase::Preparing);
            c.phase = CohortPhase::Prepared;
            c.prepared_since = Some(now);
            (c.home, c.txn_ext, c.ext, c.lock_owner)
        };
        self.trace(site, text, |at| TraceEvent::Prepared {
            at,
            txn: text,
            cohort: cext,
            site,
        });
        // Crash window: down right after the prepare record hit disk.
        // The vote is not sent; recovery replays the record and
        // re-sends it (ResendVote).
        if let Some(f) = self.ctx.cfg.failures {
            if self.cohort_crash_roll(site, uid, ord, f.cohort_crash_prob) {
                return;
            }
        }
        let grants = self.site_mut(site).locks.mark_prepared(owner);
        self.process_grants(site, grants);
        if matches!(self.ctx.table.routing, Routing::Quorum) {
            self.quorum_vote(site, uid, ord, true);
        } else {
            let ca = self.site_ref(site).cohorts[&(uid, ord)].crashed_at;
            self.send(
                site,
                home,
                text,
                PMsgKind::Vote {
                    uid,
                    ord,
                    vote: Vote::Yes,
                    crashed_at: ca,
                },
            );
        }
    }

    /// Paxos Commit: fan this cohort's vote out to all `2F+1` acceptors
    /// of the transaction's replica group.
    fn quorum_vote(&mut self, site: SiteId, uid: TxnUid, ord: u32, yes: bool) {
        let home = uid_home(uid);
        let (text, expect, ca) = {
            let c = &self.site_ref(site).cohorts[&(uid, ord)];
            (c.txn_ext, c.n_sibs, c.crashed_at)
        };
        let n = self.ctx.n_sites;
        for acc in 0..self.ctx.group {
            let asite = (home + acc as usize) % n;
            self.send(
                site,
                asite,
                text,
                PMsgKind::PaxosVote {
                    uid,
                    ord,
                    yes,
                    expect,
                    crashed_at: ca,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Paxos acceptors and decision replication
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn acceptor_vote(
        &mut self,
        asite: SiteId,
        uid: TxnUid,
        ord: u32,
        yes: bool,
        expect: u32,
        ext: TxnId,
        ca: Option<SimTime>,
    ) {
        let bundle = {
            let ps = self.site_mut(asite);
            let m = ps.acc_mirrors.entry(uid).or_insert(AccMirror {
                remaining: expect,
                no_vote: false,
                no_ords: Vec::new(),
                ext,
                crashed_at: None,
            });
            if !yes {
                m.no_vote = true;
                m.no_ords.push(ord);
            }
            merge_crash(&mut m.crashed_at, ca);
            debug_assert!(m.remaining > 0);
            m.remaining -= 1;
            m.remaining == 0
        };
        if bundle {
            // All votes heard: force the bundled accept record, then
            // report to the leader. The mirror stays in the map so the
            // report can carry the NO ordinals.
            self.force_log(
                asite,
                PLog {
                    ext,
                    work: PLogWork::AcceptorBundle { uid },
                },
            );
        }
    }

    fn acceptor_bundle_logged(&mut self, asite: SiteId, uid: TxnUid) {
        let m = self
            .site_mut(asite)
            .acc_mirrors
            .remove(&uid)
            .expect("bundle logs once");
        self.send(
            asite,
            uid_home(uid),
            m.ext,
            PMsgKind::Accepted {
                uid,
                commit: !m.no_vote,
                no_ords: m.no_ords,
                crashed_at: m.crashed_at,
            },
        );
    }

    fn master_accepted(
        &mut self,
        home: SiteId,
        uid: TxnUid,
        commit: bool,
        no_ords: Vec<u32>,
        ca: Option<SimTime>,
    ) {
        enum AfterAccept {
            Wait,
            Decide,
            Cleanup,
        }
        let group = self.ctx.group as usize;
        let after = {
            let t = self
                .site_mut(home)
                .txns
                .get_mut(&uid)
                .expect("cleanup waits for accepts");
            merge_crash(&mut t.crashed_at, ca);
            // NO voters already released and left; exclude them from
            // the decision round (the serial engine reads this from
            // shared acceptor state).
            for ord in &no_ords {
                t.parted[*ord as usize] = true;
            }
            debug_assert!(t.accepts_outstanding > 0);
            t.accepts_outstanding -= 1;
            let received = group - t.accepts_outstanding;
            let majority = group / 2 + 1;
            if received == majority {
                AfterAccept::Decide
            } else if t.accepts_outstanding == 0 {
                AfterAccept::Cleanup
            } else {
                AfterAccept::Wait
            }
        };
        match after {
            AfterAccept::Wait => {}
            AfterAccept::Decide => self.decide(home, uid, commit),
            AfterAccept::Cleanup => self.try_cleanup(home, uid),
        }
    }

    fn master_decision_logged(&mut self, home: SiteId, uid: TxnUid, commit: bool) {
        let f = self.ctx.rep_f;
        if self.ctx.table.replicated_decision && f > 0 {
            let ext = {
                let t = self.site_mut(home).txns.get_mut(&uid).unwrap();
                debug_assert!(matches!(t.phase, TxnPhase::LoggingDecision { .. }));
                t.pending_rep_acks = 2 * f as usize;
                t.ext
            };
            let n = self.ctx.n_sites;
            for rep in 1..(2 * f + 1) {
                let rsite = (home + rep as usize) % n;
                self.send(home, rsite, ext, PMsgKind::RepDecision { uid });
            }
        } else {
            self.master_decided(home, uid, commit);
        }
    }

    fn replica_decision(&mut self, rsite: SiteId, uid: TxnUid, ext: TxnId) {
        self.force_log(
            rsite,
            PLog {
                ext,
                work: PLogWork::ReplicaDecision { uid },
            },
        );
    }

    fn replica_decision_logged(&mut self, rsite: SiteId, uid: TxnUid, ext: TxnId) {
        self.send(rsite, uid_home(uid), ext, PMsgKind::RepAck { uid });
    }

    fn master_rep_ack(&mut self, home: SiteId, uid: TxnUid) {
        let commit = {
            let t = self
                .site_mut(home)
                .txns
                .get_mut(&uid)
                .expect("no stale rep acks");
            debug_assert!(t.pending_rep_acks > 0);
            t.pending_rep_acks -= 1;
            if t.pending_rep_acks > 0 {
                return;
            }
            match t.phase {
                TxnPhase::LoggingDecision { commit } => commit,
                _ => unreachable!("replica acks only drain while logging the decision"),
            }
        };
        self.master_decided(home, uid, commit);
    }

    // ------------------------------------------------------------------
    // Decision phase
    // ------------------------------------------------------------------

    fn decide(&mut self, home: SiteId, uid: TxnUid, commit: bool) {
        let now = self.now();
        if commit && self.ctx.table.voting {
            if let Some(f) = self.ctx.cfg.failures {
                if f.master_crash_prob > 0.0 {
                    let hit = {
                        let ps = self.site_mut(home);
                        ps.metrics.master_crash_trials.bump();
                        ps.rng.chance(f.master_crash_prob)
                    };
                    if hit {
                        let text = {
                            let ps = self.site_mut(home);
                            ps.metrics.master_crashes.bump();
                            let t = ps.txns.get_mut(&uid).unwrap();
                            t.crashed_at.get_or_insert(now);
                            t.ext
                        };
                        self.trace(home, text, |at| TraceEvent::MasterCrashed { at, txn: text });
                        // The parallel envelope only admits blocking
                        // takeover (Block, or LeaderFailover at F = 0
                        // which blocks identically): cohorts hold their
                        // locks until the master recovers and resumes.
                        self.sched(
                            home,
                            now + f.recovery_time,
                            PEvent::MasterRecovered { home, uid, commit },
                        );
                        return;
                    }
                }
            }
        }
        self.decide_now(home, uid, commit);
    }

    fn decide_now(&mut self, home: SiteId, uid: TxnUid, commit: bool) {
        if self.ctx.table.master_decision_forced.on(commit) {
            let ext = {
                let t = self.site_mut(home).txns.get_mut(&uid).unwrap();
                t.phase = TxnPhase::LoggingDecision { commit };
                t.ext
            };
            self.force_log(
                home,
                PLog {
                    ext,
                    work: PLogWork::MasterDecision { uid, commit },
                },
            );
        } else {
            self.master_decided(home, uid, commit);
        }
    }

    fn master_decided(&mut self, home: SiteId, uid: TxnUid, commit: bool) {
        let now = self.now();
        let text = self.site_ref(home).txns[&uid].ext;
        self.trace(home, text, |at| TraceEvent::Decided {
            at,
            txn: text,
            commit,
        });
        let ack_on = self.ctx.table.cohort_ack.on(commit);
        let (targets, ca, birth, ob, started, template) = {
            let t = self.site_mut(home).txns.get_mut(&uid).unwrap();
            t.phase = TxnPhase::Decided { commit };
            t.decided_at = Some(now);
            let targets: Vec<(u32, SiteId)> = t
                .template
                .sites
                .iter()
                .enumerate()
                .filter(|(ord, _)| !t.parted[*ord])
                .map(|(ord, s)| (ord as u32, *s))
                .collect();
            let acks = if ack_on { targets.len() } else { 0 };
            t.pending_acks = acks;
            t.master_done = acks == 0;
            let template = if commit {
                None
            } else {
                Some(t.template.clone())
            };
            (
                targets,
                t.crashed_at,
                t.birth,
                t.original_birth,
                t.commit_started.unwrap_or(now),
                template,
            )
        };
        {
            let ps = self.site_mut(home);
            ps.metrics.live_txns.add(now, -1.0);
            if commit {
                let response = now.since(ob);
                let attempt = now.since(birth);
                ps.resp_estimate.record(response.as_secs_f64());
                ps.metrics.record_commit(now, response, attempt);
                ps.metrics.phase_execution.record(started.since(birth));
                ps.metrics.phase_voting.record(now.since(started));
                // Run control (warmup edge, target count) is evaluated
                // at the barrier from the never-reset total.
                ps.commits_total += 1;
            } else {
                ps.metrics.record_abort(AbortReason::SurpriseVote);
            }
        }
        if commit {
            // Closed system: a fresh transaction replaces the one that
            // just left.
            self.sched(
                home,
                now,
                PEvent::Submit {
                    home,
                    template: None,
                    original_birth: None,
                },
            );
        } else {
            self.trace(home, text, |at| TraceEvent::Aborted { at, txn: text });
            let at = now + self.restart_delay(home);
            self.sched(
                home,
                at,
                PEvent::Submit {
                    home,
                    template: template.map(Box::new),
                    original_birth: Some(ob),
                },
            );
        }
        for (ord, site) in targets {
            self.send(
                home,
                site,
                text,
                PMsgKind::Decision {
                    uid,
                    ord,
                    commit,
                    crashed_at: ca,
                },
            );
        }
        self.try_cleanup(home, uid);
    }

    // ------------------------------------------------------------------
    // Decision phase (cohort side)
    // ------------------------------------------------------------------

    fn cohort_precommit(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let text = {
            let c = self
                .site_mut(site)
                .cohorts
                .get_mut(&(uid, ord))
                .expect("PRECOMMIT targets a live cohort");
            debug_assert!(!c.down);
            debug_assert_eq!(c.phase, CohortPhase::Prepared);
            c.phase = CohortPhase::Precommitting;
            c.txn_ext
        };
        self.force_log(
            site,
            PLog {
                ext: text,
                work: PLogWork::CohortPrecommit { uid, ord },
            },
        );
    }

    fn cohort_precommitted(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let (home, text) = {
            let Some(c) = self.site_mut(site).cohorts.get_mut(&(uid, ord)) else {
                return;
            };
            c.phase = CohortPhase::Precommitted;
            (c.home, c.txn_ext)
        };
        // Crash window: the precommit record survived; recovery
        // re-sends the preack (ResendPreAck).
        if let Some(f) = self.ctx.cfg.failures {
            if self.cohort_crash_roll(site, uid, ord, f.cohort_crash_prob) {
                return;
            }
        }
        let ca = self.site_ref(site).cohorts[&(uid, ord)].crashed_at;
        self.send(
            site,
            home,
            text,
            PMsgKind::PreAck {
                uid,
                crashed_at: ca,
            },
        );
    }

    fn cohort_decision(
        &mut self,
        site: SiteId,
        uid: TxnUid,
        ord: u32,
        commit: bool,
        ca: Option<SimTime>,
    ) {
        let now = self.now();
        let text = {
            let ps = self.site_mut(site);
            let Some(c) = ps.cohorts.get_mut(&(uid, ord)) else {
                debug_assert!(
                    self.ctx.cfg.failures.is_some(),
                    "lost cohort without faults"
                );
                return;
            };
            if !matches!(c.phase, CohortPhase::Prepared | CohortPhase::Precommitted) {
                debug_assert!(self.ctx.cfg.failures.is_some(), "odd phase without faults");
                return;
            }
            merge_crash(&mut c.crashed_at, ca);
            let text = c.txn_ext;
            let since = c.prepared_since.take();
            let crash = c.crashed_at;
            if let Some(since) = since {
                ps.metrics.prepared_time.record_duration(now.since(since));
                if let Some(crash) = crash {
                    // Paper's blocking metric: how long this cohort sat
                    // prepared while a crash stretched the wait.
                    let from = if crash > since { crash } else { since };
                    ps.metrics.blocked_on_crash_cohorts.bump();
                    ps.metrics
                        .crash_block_time
                        .record(now.since(from).as_secs_f64());
                }
            }
            text
        };
        if self.ctx.table.cohort_decision_forced.on(commit) {
            self.site_mut(site)
                .cohorts
                .get_mut(&(uid, ord))
                .unwrap()
                .phase = CohortPhase::Deciding { commit };
            self.force_log(
                site,
                PLog {
                    ext: text,
                    work: PLogWork::CohortDecision { uid, ord, commit },
                },
            );
        } else {
            self.cohort_finish_decision(site, uid, ord, commit);
        }
    }

    fn cohort_finish_decision(&mut self, site: SiteId, uid: TxnUid, ord: u32, commit: bool) {
        let (owner, home, text, writes) = {
            let c = &self.site_ref(site).cohorts[&(uid, ord)];
            let writes: Vec<u64> = if commit {
                c.accesses
                    .iter()
                    .filter(|a| a.update)
                    .map(|a| a.page)
                    .collect()
            } else {
                Vec::new()
            };
            (c.lock_owner, c.home, c.txn_ext, writes)
        };
        let (borrower_keys, grants) = {
            let ps = self.site_mut(site);
            // Settle OPT borrows first: on commit the borrows become
            // real locks, on abort the borrowers are doomed below.
            let borrower_owners = ps.locks.settle_borrows(owner);
            debug_assert!(!ps.locks.has_live_borrows(owner));
            ps.locks.drop_borrower(owner);
            let grants = ps.locks.release_all(owner);
            let keys: Vec<(TxnUid, u32)> = borrower_owners
                .iter()
                .map(|o| ps.owner_cohorts[o.index()])
                .collect();
            (keys, grants)
        };
        self.process_grants(site, grants);
        if self.ctx.cfg.model_deferred_writes {
            for page in writes {
                self.data_disk_arrive(site, page, PDiskJob::AsyncWrite);
            }
        }
        if commit {
            for (buid, bord) in borrower_keys {
                let ready = {
                    let ps = self.site_ref(site);
                    match ps.cohorts.get(&(buid, bord)) {
                        Some(b) => {
                            b.phase == CohortPhase::OnShelf
                                && !ps.locks.has_live_borrows(b.lock_owner)
                        }
                        None => false,
                    }
                };
                if ready {
                    self.cohort_send_workdone(site, buid, bord);
                }
            }
        } else {
            // Borrower cascade: everything that borrowed from this
            // aborting lender read dirty data and must restart.
            for (buid, bord) in borrower_keys {
                if self.site_ref(site).cohorts.contains_key(&(buid, bord)) {
                    self.doom_local(site, buid, bord, AbortReason::BorrowerCascade);
                }
            }
        }
        if self.ctx.table.cohort_ack.on(commit) {
            self.send(site, home, text, PMsgKind::Ack { uid });
        }
        self.cohort_done(site, uid, ord);
    }

    fn cohort_done(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let ps = self.site_mut(site);
        let c = ps
            .cohorts
            .remove(&(uid, ord))
            .expect("cohort finishes once");
        debug_assert!(ps.locks.borrowers_of(c.lock_owner).next().is_none());
        debug_assert!(!ps.locks.has_live_borrows(c.lock_owner));
        ps.locks.unregister(c.lock_owner);
    }

    fn master_ack(&mut self, home: SiteId, uid: TxnUid) {
        let done = {
            let t = self
                .site_mut(home)
                .txns
                .get_mut(&uid)
                .expect("no stale acks");
            debug_assert!(t.pending_acks > 0);
            t.pending_acks -= 1;
            t.pending_acks == 0
        };
        if done {
            self.site_mut(home).txns.get_mut(&uid).unwrap().master_done = true;
            self.try_cleanup(home, uid);
        }
    }

    fn try_cleanup(&mut self, home: SiteId, uid: TxnUid) {
        let now = self.now();
        let remove = {
            let t = &self.site_ref(home).txns[&uid];
            t.master_done
                && t.pending_acks == 0
                && t.accepts_outstanding == 0
                && t.pending_rep_acks == 0
        };
        if !remove {
            return;
        }
        // Unlike the serial engine, cleanup does not wait for remote
        // cohort teardown (`open_cohorts`): a shard cannot observe
        // another shard's maps mid-window, and nothing downstream reads
        // the master record after the acks drain.
        let t = self.site_mut(home).txns.remove(&uid).unwrap();
        if let (TxnPhase::Decided { commit: true }, Some(decided)) = (t.phase, t.decided_at) {
            self.site_mut(home)
                .metrics
                .phase_decision
                .record(now.since(decided));
        }
    }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    /// Roll the cohort-crash die for the cohort at `site`. On a hit the
    /// cohort goes down and a recovery event is scheduled; the caller
    /// abandons whatever it was about to do (recovery replays it from
    /// the durable record, per the protocol's presumption rules).
    fn cohort_crash_roll(&mut self, site: SiteId, uid: TxnUid, ord: u32, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let Some(f) = self.ctx.cfg.failures else {
            return false;
        };
        if let Some(region) = f.crash_region {
            let topo = self
                .ctx
                .cfg
                .topology
                .expect("crash_region requires topology");
            if topo.region_of(site, self.ctx.n_sites) != region {
                return false;
            }
        }
        let now = self.now();
        let hit = {
            let ps = self.site_mut(site);
            ps.metrics.cohort_crash_trials.bump();
            ps.rng.chance(p)
        };
        if !hit {
            return false;
        }
        let (text, cext) = {
            let ps = self.site_mut(site);
            ps.metrics.cohort_crashes.bump();
            let c = ps.cohorts.get_mut(&(uid, ord)).unwrap();
            c.down = true;
            c.crashed_at.get_or_insert(now);
            (c.txn_ext, c.ext)
        };
        self.trace(site, text, |at| TraceEvent::CohortCrashed {
            at,
            txn: text,
            cohort: cext,
            site,
        });
        self.sched(
            site,
            now + f.cohort_recovery_time,
            PEvent::CohortRecovered { site, uid, ord },
        );
        true
    }

    fn cohort_recovered(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let (phase, text, cext, owner, home) = {
            let Some(c) = self.site_mut(site).cohorts.get_mut(&(uid, ord)) else {
                // Torn down at a barrier while down (the incarnation
                // was doomed); nothing to replay.
                debug_assert!(self.ctx.cfg.failures.is_some());
                return;
            };
            c.down = false;
            (c.phase, c.txn_ext, c.ext, c.lock_owner, c.home)
        };
        self.trace(site, text, |at| TraceEvent::CohortRecovered {
            at,
            txn: text,
            cohort: cext,
        });
        let record = match phase {
            CohortPhase::Prepared => RecoveryRecord::Prepared,
            CohortPhase::Precommitted => RecoveryRecord::Precommitted,
            _ => RecoveryRecord::None,
        };
        match self.ctx.spec.base.recovery_action(record) {
            RecoveryAction::ResendVote => {
                let grants = self.site_mut(site).locks.mark_prepared(owner);
                self.process_grants(site, grants);
                if matches!(self.ctx.table.routing, Routing::Quorum) {
                    self.quorum_vote(site, uid, ord, true);
                } else {
                    let ca = self.site_ref(site).cohorts[&(uid, ord)].crashed_at;
                    self.send(
                        site,
                        home,
                        text,
                        PMsgKind::Vote {
                            uid,
                            ord,
                            vote: Vote::Yes,
                            crashed_at: ca,
                        },
                    );
                }
            }
            RecoveryAction::ResendPreAck => {
                let ca = self.site_ref(site).cohorts[&(uid, ord)].crashed_at;
                self.send(
                    site,
                    home,
                    text,
                    PMsgKind::PreAck {
                        uid,
                        crashed_at: ca,
                    },
                );
            }
            RecoveryAction::PresumeAbort => {
                // Nothing durable: the cohort aborts unilaterally,
                // dooming the whole incarnation (torn down at the next
                // barrier).
                debug_assert_eq!(phase, CohortPhase::Executing);
                self.doom_local(site, uid, ord, AbortReason::CohortCrash);
            }
        }
    }

    // ------------------------------------------------------------------
    // Dooms and barrier-time teardown
    // ------------------------------------------------------------------

    /// Remove one local cohort of a doomed incarnation *inside* the
    /// window (crash recovery, borrower cascade) and queue the uid for
    /// barrier teardown of its remains on other sites.
    fn doom_local(&mut self, site: SiteId, uid: TxnUid, ord: u32, reason: AbortReason) {
        let now = self.now();
        let grants = {
            let ps = self.site_mut(site);
            let Some(c) = ps.cohorts.remove(&(uid, ord)) else {
                return;
            };
            if c.waiting_lock {
                ps.metrics.blocked_txns.add(now, -1.0);
            }
            debug_assert!(
                ps.locks.borrowers_of(c.lock_owner).next().is_none(),
                "doomed cohort still lends"
            );
            ps.locks.drop_borrower(c.lock_owner);
            let grants = ps.locks.release_all(c.lock_owner);
            ps.locks.unregister(c.lock_owner);
            let slot = ps.dead.entry(uid).or_insert(now);
            if now < *slot {
                *slot = now;
            }
            grants
        };
        self.process_grants(site, grants);
        self.doomed.push((uid, now, reason, site));
    }

    /// Barrier-time removal of one cohort of a doomed incarnation.
    /// Lenient: the cohort may never have been created (initiation
    /// message dead-lettered) or may have finished already.
    pub(crate) fn teardown_cohort(&mut self, site: SiteId, uid: TxnUid, ord: u32) {
        let now = self.now();
        let grants = {
            let ps = self.site_mut(site);
            let Some(c) = ps.cohorts.remove(&(uid, ord)) else {
                return;
            };
            if c.waiting_lock {
                ps.metrics.blocked_txns.add(now, -1.0);
            }
            debug_assert!(
                ps.locks.borrowers_of(c.lock_owner).next().is_none(),
                "doomed cohort still lends"
            );
            ps.locks.drop_borrower(c.lock_owner);
            let grants = ps.locks.release_all(c.lock_owner);
            ps.locks.unregister(c.lock_owner);
            grants
        };
        self.process_grants(site, grants);
    }

    /// Record `uid` in a site's dead-letter map so in-flight messages
    /// for the doomed incarnation are dropped on arrival.
    pub(crate) fn mark_dead(&mut self, site: SiteId, uid: TxnUid, at: SimTime) {
        let slot = self.site_mut(site).dead.entry(uid).or_insert(at);
        if at < *slot {
            *slot = at;
        }
    }
}
