//! Protocol tracing: an optional, per-run recording of every message
//! transfer, forced log write, and transaction milestone.
//!
//! Tracing exists for *verification*, not metrics: the test-suite uses
//! it to assert that each protocol's choreography matches the paper's
//! §2 descriptions step by step (e.g. a 2PC commit is PREPARE out →
//! prepare records forced → YES votes → master commit record → COMMIT
//! out → cohort commit records → ACKs, in that causal order).

use super::types::{CohortId, TxnId};
use crate::workload::SiteId;
use simkernel::SimTime;

/// The kind of message transfer, stripped of payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgLabel {
    /// Cohort initiation (execution phase).
    InitCohort,
    /// WORKDONE (execution phase).
    WorkDone,
    /// PREPARE request.
    Prepare,
    /// YES vote.
    VoteYes,
    /// NO vote.
    VoteNo,
    /// READ vote (Read-Only optimization, §3.2).
    VoteReadOnly,
    /// 3PC PRECOMMIT.
    PreCommit,
    /// 3PC precommit acknowledgement.
    PreAck,
    /// Global COMMIT decision.
    DecisionCommit,
    /// Global ABORT decision.
    DecisionAbort,
    /// Decision acknowledgement.
    Ack,
    /// Termination-protocol state request (after a 3PC master crash).
    TermStateReq,
    /// Termination-protocol state report.
    TermStateRep,
    /// Paxos Commit: a cohort's YES vote to one acceptor.
    PaxosVoteYes,
    /// Paxos Commit: a cohort's NO vote to one acceptor.
    PaxosVoteNo,
    /// Paxos Commit: an acceptor's ACCEPTED report to the leader.
    Accepted,
    /// Replicated 2PC: the decision record copy to a backup replica.
    RepDecision,
    /// Replicated 2PC: a backup replica's copy acknowledgement.
    RepAck,
}

/// The kind of forced log write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogLabel {
    /// A cohort's prepare record.
    Prepare,
    /// A NO voter's abort record.
    NoVoteAbort,
    /// A cohort's 3PC precommit record.
    CohortPrecommit,
    /// A cohort's commit record.
    CohortCommit,
    /// A cohort's abort record (after a global abort).
    CohortAbort,
    /// The master's PC collecting record.
    Collecting,
    /// The master's 3PC precommit record.
    MasterPrecommit,
    /// The master's commit record.
    MasterCommit,
    /// The master's abort record.
    MasterAbort,
    /// A Paxos acceptor's vote bundle (replaces the master record).
    AcceptorBundle,
    /// A replicated-2PC backup's copy of the master decision record.
    ReplicaDecision,
}

/// One traced step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message left its sender (same-site transfers are traced too,
    /// marked `local`, even though they are free).
    Send {
        at: SimTime,
        txn: TxnId,
        label: MsgLabel,
        from: SiteId,
        to: SiteId,
        local: bool,
    },
    /// A forced log write was *issued* at `site`.
    ForceLog {
        at: SimTime,
        txn: TxnId,
        label: LogLabel,
        site: SiteId,
    },
    /// A forced log write completed.
    LogDone {
        at: SimTime,
        txn: TxnId,
        label: LogLabel,
        site: SiteId,
    },
    /// A cohort entered the prepared state.
    Prepared {
        at: SimTime,
        txn: TxnId,
        cohort: CohortId,
        site: SiteId,
    },
    /// A cohort borrowed pages from prepared lenders.
    Borrowed {
        at: SimTime,
        txn: TxnId,
        cohort: CohortId,
        lenders: usize,
    },
    /// A cohort went on the OPT shelf.
    Shelved {
        at: SimTime,
        txn: TxnId,
        cohort: CohortId,
    },
    /// A shelved cohort was released (all lenders committed).
    Unshelved {
        at: SimTime,
        txn: TxnId,
        cohort: CohortId,
    },
    /// The master reached its global decision.
    Decided {
        at: SimTime,
        txn: TxnId,
        commit: bool,
    },
    /// The transaction incarnation was aborted (restart scheduled).
    Aborted { at: SimTime, txn: TxnId },
    /// The master crashed at its decision point (failure injection).
    MasterCrashed { at: SimTime, txn: TxnId },
    /// A cohort crashed at one of the injection points — during the
    /// execution phase, or right after forcing its prepare/precommit
    /// record (failure injection).
    CohortCrashed {
        at: SimTime,
        txn: TxnId,
        cohort: CohortId,
        site: SiteId,
    },
    /// A crashed cohort restarted and replayed its log.
    CohortRecovered {
        at: SimTime,
        txn: TxnId,
        cohort: CohortId,
    },
    /// A remote transfer was lost in-flight (failure injection).
    MsgLost {
        at: SimTime,
        txn: TxnId,
        label: MsgLabel,
    },
    /// A sender timed out and repeated a lost transfer.
    Retransmitted {
        at: SimTime,
        txn: TxnId,
        label: MsgLabel,
        attempt: u32,
    },
    /// 3PC termination began; `coordinator` is the elected cohort.
    TerminationStarted {
        at: SimTime,
        txn: TxnId,
        coordinator: CohortId,
    },
    /// Paxos leader failover began after the leader crashed; `leader`
    /// is the acceptor site that takes over.
    FailoverStarted {
        at: SimTime,
        txn: TxnId,
        leader: SiteId,
    },
}

impl TraceEvent {
    /// The transaction this event belongs to.
    pub fn txn(&self) -> TxnId {
        match *self {
            TraceEvent::Send { txn, .. }
            | TraceEvent::ForceLog { txn, .. }
            | TraceEvent::LogDone { txn, .. }
            | TraceEvent::Prepared { txn, .. }
            | TraceEvent::Borrowed { txn, .. }
            | TraceEvent::Shelved { txn, .. }
            | TraceEvent::Unshelved { txn, .. }
            | TraceEvent::Decided { txn, .. }
            | TraceEvent::Aborted { txn, .. }
            | TraceEvent::MasterCrashed { txn, .. }
            | TraceEvent::CohortCrashed { txn, .. }
            | TraceEvent::CohortRecovered { txn, .. }
            | TraceEvent::MsgLost { txn, .. }
            | TraceEvent::Retransmitted { txn, .. }
            | TraceEvent::TerminationStarted { txn, .. }
            | TraceEvent::FailoverStarted { txn, .. } => txn,
        }
    }

    /// Event time.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Send { at, .. }
            | TraceEvent::ForceLog { at, .. }
            | TraceEvent::LogDone { at, .. }
            | TraceEvent::Prepared { at, .. }
            | TraceEvent::Borrowed { at, .. }
            | TraceEvent::Shelved { at, .. }
            | TraceEvent::Unshelved { at, .. }
            | TraceEvent::Decided { at, .. }
            | TraceEvent::Aborted { at, .. }
            | TraceEvent::MasterCrashed { at, .. }
            | TraceEvent::CohortCrashed { at, .. }
            | TraceEvent::CohortRecovered { at, .. }
            | TraceEvent::MsgLost { at, .. }
            | TraceEvent::Retransmitted { at, .. }
            | TraceEvent::TerminationStarted { at, .. }
            | TraceEvent::FailoverStarted { at, .. } => at,
        }
    }
}

/// A consumer of trace events, fed by the engine as the simulation
/// runs.
///
/// The engine calls [`TraceSink::record`] for every event of a traced
/// transaction, in occurrence order, and [`TraceSink::finish`] exactly
/// once after the run completes. Implementations choose what to keep:
/// [`Trace`] buffers everything (fine for tests and short runs), while
/// streaming sinks such as [`super::ChromeStreamSink`] write each event
/// out immediately so memory stays bounded no matter how long the run
/// is, and [`super::FoldSink`] keeps only per-transaction aggregation
/// state.
///
/// `Any` is a supertrait so [`super::Simulation::run_with_sink`] can
/// hand the concrete sink back to the caller after the run; `Send` so
/// the simulation (which owns the sink) stays shippable across the
/// parallel runner's worker threads.
pub trait TraceSink: std::any::Any + Send {
    /// Observe one event. Events arrive in simulation order.
    fn record(&mut self, event: &TraceEvent);

    /// The run is over; flush any buffered state. Called exactly once.
    fn finish(&mut self) {}
}

/// A recorded trace: events in simulation order, bounded by the number
/// of transactions requested at [`super::Simulation::run_traced`].
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// All recorded events, in occurrence order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for Trace {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

impl Trace {
    /// Events belonging to one transaction, in order.
    pub fn of_txn(&self, txn: TxnId) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.txn() == txn).collect()
    }

    /// Transaction ids seen in the trace, ascending.
    pub fn txns(&self) -> Vec<TxnId> {
        let mut ids: Vec<TxnId> = self.events.iter().map(TraceEvent::txn).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Count of `Send` events with this label for a transaction,
    /// excluding free same-site transfers.
    pub fn remote_sends(&self, txn: TxnId, label: MsgLabel) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { txn: t, label: l, local: false, .. } if *t == txn && *l == label))
            .count()
    }

    /// Count of `Send` events with this label including local ones.
    pub fn all_sends(&self, txn: TxnId, label: MsgLabel) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { txn: t, label: l, .. } if *t == txn && *l == label))
            .count()
    }

    /// Count of completed forced writes with this label for a txn.
    pub fn forced_writes(&self, txn: TxnId, label: LogLabel) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::LogDone { txn: t, label: l, .. } if *t == txn && *l == label))
            .count()
    }

    /// Index of the first event matching `pred`, if any.
    pub fn position(&self, pred: impl Fn(&TraceEvent) -> bool) -> Option<usize> {
        self.events.iter().position(pred)
    }

    /// Index of the last event matching `pred`, if any.
    pub fn rposition(&self, pred: impl Fn(&TraceEvent) -> bool) -> Option<usize> {
        self.events.iter().rposition(pred)
    }

    /// Render one transaction's events as a human-readable timeline
    /// (time-ordered, one line per event) — the view the
    /// `trace_explorer` example prints.
    pub fn render_txn(&self, txn: TxnId) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let events = self.of_txn(txn);
        let t0 = events.first().map(|e| e.at()).unwrap_or(SimTime::ZERO);
        let _ = writeln!(out, "txn {txn} — {} events", events.len());
        for e in events {
            let dt = e.at().since(t0).as_millis_f64();
            let line = match e {
                TraceEvent::Send {
                    label,
                    from,
                    to,
                    local,
                    ..
                } => {
                    if *local {
                        format!("{label:?} (site {from}, local/free)")
                    } else {
                        format!("{label:?} site {from} -> site {to}")
                    }
                }
                TraceEvent::ForceLog { label, site, .. } => {
                    format!("force-write {label:?} issued at site {site}")
                }
                TraceEvent::LogDone { label, site, .. } => {
                    format!("force-write {label:?} durable at site {site}")
                }
                TraceEvent::Prepared { cohort, site, .. } => {
                    format!("cohort {cohort} PREPARED at site {site}")
                }
                TraceEvent::Borrowed {
                    cohort, lenders, ..
                } => {
                    format!("cohort {cohort} borrowed a page from {lenders} lender(s)")
                }
                TraceEvent::Shelved { cohort, .. } => {
                    format!("cohort {cohort} ON SHELF (withholding WORKDONE)")
                }
                TraceEvent::Unshelved { cohort, .. } => {
                    format!("cohort {cohort} off the shelf, WORKDONE released")
                }
                TraceEvent::Decided { commit, .. } => {
                    format!(
                        "GLOBAL DECISION: {}",
                        if *commit { "COMMIT" } else { "ABORT" }
                    )
                }
                TraceEvent::Aborted { .. } => "incarnation aborted; restart scheduled".into(),
                TraceEvent::MasterCrashed { .. } => "MASTER CRASHED at decision point".into(),
                TraceEvent::CohortCrashed { cohort, site, .. } => {
                    format!("cohort {cohort} CRASHED at site {site}")
                }
                TraceEvent::CohortRecovered { cohort, .. } => {
                    format!("cohort {cohort} recovered, log replayed")
                }
                TraceEvent::MsgLost { label, .. } => {
                    format!("{label:?} LOST in transit")
                }
                TraceEvent::Retransmitted { label, attempt, .. } => {
                    format!("{label:?} retransmitted (attempt {attempt})")
                }
                TraceEvent::TerminationStarted { coordinator, .. } => {
                    format!("termination protocol started, coordinator = cohort {coordinator}")
                }
                TraceEvent::FailoverStarted { leader, .. } => {
                    format!("leader failover started, new leader = site {leader}")
                }
            };
            let _ = writeln!(out, "  +{dt:>9.3} ms  {line}");
        }
        out
    }

    /// Assert that every event matching `before` precedes every event
    /// matching `after`; returns the violating pair's indices on
    /// failure.
    pub fn check_order(
        &self,
        before: impl Fn(&TraceEvent) -> bool,
        after: impl Fn(&TraceEvent) -> bool,
    ) -> Result<(), (usize, usize)> {
        let last_before = self.rposition(&before);
        let first_after = self.position(&after);
        match (last_before, first_after) {
            (Some(b), Some(a)) if b > a => Err((b, a)),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(txn: TxnId, label: MsgLabel, local: bool) -> TraceEvent {
        TraceEvent::Send {
            at: SimTime(0),
            txn,
            label,
            from: 0,
            to: 1,
            local,
        }
    }

    #[test]
    fn trace_filters_by_txn() {
        let tr = Trace {
            events: vec![
                send(1, MsgLabel::Prepare, false),
                send(2, MsgLabel::Prepare, false),
                send(1, MsgLabel::VoteYes, false),
            ],
        };
        assert_eq!(tr.of_txn(1).len(), 2);
        assert_eq!(tr.txns(), vec![1, 2]);
    }

    #[test]
    fn remote_vs_all_sends() {
        let tr = Trace {
            events: vec![
                send(1, MsgLabel::Prepare, false),
                send(1, MsgLabel::Prepare, false),
                send(1, MsgLabel::Prepare, true), // local: free
            ],
        };
        assert_eq!(tr.remote_sends(1, MsgLabel::Prepare), 2);
        assert_eq!(tr.all_sends(1, MsgLabel::Prepare), 3);
    }

    #[test]
    fn order_checking() {
        let tr = Trace {
            events: vec![
                send(1, MsgLabel::Prepare, false),
                send(1, MsgLabel::VoteYes, false),
            ],
        };
        assert!(tr
            .check_order(
                |e| matches!(
                    e,
                    TraceEvent::Send {
                        label: MsgLabel::Prepare,
                        ..
                    }
                ),
                |e| matches!(
                    e,
                    TraceEvent::Send {
                        label: MsgLabel::VoteYes,
                        ..
                    }
                ),
            )
            .is_ok());
        assert_eq!(
            tr.check_order(
                |e| matches!(
                    e,
                    TraceEvent::Send {
                        label: MsgLabel::VoteYes,
                        ..
                    }
                ),
                |e| matches!(
                    e,
                    TraceEvent::Send {
                        label: MsgLabel::Prepare,
                        ..
                    }
                ),
            ),
            Err((1, 0))
        );
    }

    #[test]
    fn accessors_cover_all_variants() {
        let events = vec![
            send(3, MsgLabel::Ack, false),
            TraceEvent::ForceLog {
                at: SimTime(1),
                txn: 3,
                label: LogLabel::Prepare,
                site: 0,
            },
            TraceEvent::LogDone {
                at: SimTime(2),
                txn: 3,
                label: LogLabel::Prepare,
                site: 0,
            },
            TraceEvent::Prepared {
                at: SimTime(3),
                txn: 3,
                cohort: 9,
                site: 0,
            },
            TraceEvent::Borrowed {
                at: SimTime(4),
                txn: 3,
                cohort: 9,
                lenders: 1,
            },
            TraceEvent::Shelved {
                at: SimTime(5),
                txn: 3,
                cohort: 9,
            },
            TraceEvent::Unshelved {
                at: SimTime(6),
                txn: 3,
                cohort: 9,
            },
            TraceEvent::Decided {
                at: SimTime(7),
                txn: 3,
                commit: true,
            },
            TraceEvent::Aborted {
                at: SimTime(8),
                txn: 3,
            },
            TraceEvent::MasterCrashed {
                at: SimTime(9),
                txn: 3,
            },
            TraceEvent::CohortCrashed {
                at: SimTime(10),
                txn: 3,
                cohort: 9,
                site: 2,
            },
            TraceEvent::CohortRecovered {
                at: SimTime(11),
                txn: 3,
                cohort: 9,
            },
            TraceEvent::MsgLost {
                at: SimTime(12),
                txn: 3,
                label: MsgLabel::Prepare,
            },
            TraceEvent::Retransmitted {
                at: SimTime(13),
                txn: 3,
                label: MsgLabel::Prepare,
                attempt: 1,
            },
            TraceEvent::TerminationStarted {
                at: SimTime(14),
                txn: 3,
                coordinator: 9,
            },
            TraceEvent::FailoverStarted {
                at: SimTime(15),
                txn: 3,
                leader: 1,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.txn(), 3);
            if i > 0 {
                assert_eq!(e.at(), SimTime(i as u64));
            }
        }
        let tr = Trace { events };
        assert_eq!(tr.forced_writes(3, LogLabel::Prepare), 1);
    }
}
