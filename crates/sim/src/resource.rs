//! Queueing stations for the physical-resource model.
//!
//! The paper's model (§4) has, per site, `NumCPUs` processors fed by a
//! **single common queue**, and per-disk queues for data and log disks.
//! All queues are FCFS *except* that message processing has higher
//! priority than data processing at the CPUs. The pure
//! data-contention experiments (§5.3) make every resource "infinite":
//! service times still elapse but there is never any queueing.
//!
//! [`Station`] models one such service centre. It is an *engine
//! passive*: it never schedules events itself. Instead,
//! [`Station::arrive`] and [`Station::complete`] return the job (if
//! any) whose service just started together with its completion time;
//! the caller schedules the completion event on its [`crate::Calendar`].

use crate::stats::OccupancyHistogram;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Service priority class. At the CPUs, message handling ([`JobClass::High`])
/// pre-empts queued data processing ([`JobClass::Low`]) in queue order
/// (service itself is non-preemptive, matching the paper's model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Served before any queued `Low` job (message processing).
    High,
    /// Normal FCFS work (data page processing, disk I/O).
    Low,
}

/// Whether the station queues work or admits every job immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StationKind {
    /// `units` servers, common FCFS-within-class queue.
    Finite,
    /// Infinite-server: every arrival starts service immediately.
    /// Used for the paper's pure data-contention (DC) experiments.
    Infinite,
}

/// A job whose service has just begun.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Started<J> {
    /// The caller-supplied job token.
    pub job: J,
    /// Absolute instant at which its service completes; the caller
    /// must schedule a completion event for this instant and then call
    /// [`Station::complete`].
    pub done_at: SimTime,
}

#[derive(Debug)]
struct Waiting<J> {
    job: J,
    service: SimDuration,
    arrived: SimTime,
}

/// A multi-server FCFS station with two priority classes.
#[derive(Debug)]
pub struct Station<J> {
    kind: StationKind,
    units: u32,
    busy: u32,
    high: VecDeque<Waiting<J>>,
    low: VecDeque<Waiting<J>>,
    // --- statistics ---
    last_change: SimTime,
    /// Start of the statistics window (reset at the end of warm-up).
    stats_origin: SimTime,
    busy_unit_time: u64,
    /// Time-integral of the queue length (job-µs), for mean queue depth.
    queue_unit_time: u64,
    /// Time-weighted queue-depth distribution over the same spans as
    /// `queue_unit_time`, for p50/p90/p99 occupancy.
    occupancy: OccupancyHistogram,
    /// Depth of the run of consecutive spans not yet folded into
    /// `occupancy`. Consecutive spans at the same depth coalesce here —
    /// `record_span` is additive in µs, so folding one summed span is
    /// exact — and the bucket math runs only when the depth changes.
    span_depth: u64,
    /// Accumulated µs of the open same-depth run.
    span_micros: u64,
    /// Largest queue length seen in the statistics window.
    max_queue: usize,
    served: u64,
    total_wait: u64,
    total_service: u64,
}

impl<J> Station<J> {
    /// A finite station with `units` identical servers.
    ///
    /// # Panics
    /// Panics if `units == 0`.
    pub fn finite(units: u32) -> Self {
        assert!(units > 0, "a finite station needs at least one server");
        Self::new(StationKind::Finite, units)
    }

    /// An infinite-server station (no queueing, service time still elapses).
    pub fn infinite() -> Self {
        Self::new(StationKind::Infinite, 0)
    }

    fn new(kind: StationKind, units: u32) -> Self {
        Station {
            kind,
            units,
            busy: 0,
            high: VecDeque::new(),
            low: VecDeque::new(),
            last_change: SimTime::ZERO,
            stats_origin: SimTime::ZERO,
            busy_unit_time: 0,
            queue_unit_time: 0,
            occupancy: OccupancyHistogram::new(),
            span_depth: 0,
            span_micros: 0,
            max_queue: 0,
            served: 0,
            total_wait: 0,
            total_service: 0,
        }
    }

    /// The station's queueing discipline.
    pub fn kind(&self) -> StationKind {
        self.kind
    }

    /// Jobs currently in service.
    pub fn in_service(&self) -> u32 {
        self.busy
    }

    /// Jobs currently waiting (always 0 for infinite stations).
    pub fn queued(&self) -> usize {
        self.high.len() + self.low.len()
    }

    /// Jobs whose service has completed so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    fn accumulate(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_change);
        let dt = (now - self.last_change).as_micros();
        if dt == 0 {
            // Zero-width span: every integral below adds 0 and
            // `record_span` ignores it, so skip the bucket math.
            return;
        }
        let depth = (self.high.len() + self.low.len()) as u64;
        self.busy_unit_time += self.busy as u64 * dt;
        self.queue_unit_time += depth * dt;
        if depth == self.span_depth {
            self.span_micros += dt;
        } else {
            self.flush_span();
            self.span_depth = depth;
            self.span_micros = dt;
        }
        self.last_change = now;
    }

    /// Fold the open same-depth run into the occupancy histogram.
    fn flush_span(&mut self) {
        if self.span_micros != 0 {
            self.occupancy
                .record_span(self.span_depth, SimDuration(self.span_micros));
            self.span_micros = 0;
        }
    }

    fn start(&mut self, now: SimTime, w: Waiting<J>) -> Started<J> {
        self.busy += 1;
        self.served += 1;
        self.total_wait += (now - w.arrived).as_micros();
        self.total_service += w.service.as_micros();
        Started {
            job: w.job,
            done_at: now + w.service,
        }
    }

    /// A job arrives needing `service` time. If a server is free (or
    /// the station is infinite) service starts immediately and the
    /// started job is returned; otherwise the job queues within its
    /// class and `None` is returned.
    pub fn arrive(
        &mut self,
        now: SimTime,
        job: J,
        service: SimDuration,
        class: JobClass,
    ) -> Option<Started<J>> {
        self.accumulate(now);
        let w = Waiting {
            job,
            service,
            arrived: now,
        };
        let free = match self.kind {
            StationKind::Infinite => true,
            StationKind::Finite => self.busy < self.units,
        };
        if free {
            Some(self.start(now, w))
        } else {
            match class {
                JobClass::High => self.high.push_back(w),
                JobClass::Low => self.low.push_back(w),
            }
            self.max_queue = self.max_queue.max(self.queued());
            None
        }
    }

    /// A service completed at `now`. Frees the server and, if work is
    /// queued, starts the next job (high class first, FCFS within
    /// class) and returns it.
    ///
    /// # Panics
    /// Panics if no job was in service.
    pub fn complete(&mut self, now: SimTime) -> Option<Started<J>> {
        assert!(self.busy > 0, "complete() with no job in service");
        self.accumulate(now);
        self.busy -= 1;
        if self.kind == StationKind::Infinite {
            debug_assert!(self.high.is_empty() && self.low.is_empty());
            return None;
        }
        let next = self.high.pop_front().or_else(|| self.low.pop_front())?;
        Some(self.start(now, next))
    }

    /// Mean utilization per server over the statistics window — from
    /// the last [`Station::reset_stats`] (or construction) to `now` —
    /// for finite stations, or mean concurrency for infinite stations
    /// (where `units` is 0 and the raw busy-time integral is divided by
    /// elapsed time).
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.accumulate(now);
        let elapsed = now.since(self.stats_origin).as_micros();
        if elapsed == 0 {
            return 0.0;
        }
        let denom = match self.kind {
            StationKind::Finite => elapsed as f64 * self.units as f64,
            StationKind::Infinite => elapsed as f64,
        };
        self.busy_unit_time as f64 / denom
    }

    /// Mean queueing delay (excluding service) over all served jobs.
    pub fn mean_wait(&self) -> SimDuration {
        SimDuration(self.total_wait.checked_div(self.served).unwrap_or(0))
    }

    /// Time-averaged queue length (jobs waiting, excluding those in
    /// service) over the statistics window ending at `now`.
    pub fn mean_queue_depth(&mut self, now: SimTime) -> f64 {
        self.accumulate(now);
        let elapsed = now.since(self.stats_origin).as_micros();
        if elapsed == 0 {
            0.0
        } else {
            self.queue_unit_time as f64 / elapsed as f64
        }
    }

    /// Largest queue length observed in the statistics window.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue
    }

    /// Time-weighted queue-depth histogram over the statistics window,
    /// with the final open interval flushed up to `now`.
    pub fn occupancy(&mut self, now: SimTime) -> &OccupancyHistogram {
        self.accumulate(now);
        self.flush_span();
        &self.occupancy
    }

    /// Reset statistics (not state) — used at the end of warm-up.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.accumulate(now);
        self.busy_unit_time = 0;
        self.queue_unit_time = 0;
        self.occupancy = OccupancyHistogram::new();
        self.span_depth = self.queued() as u64;
        self.span_micros = 0;
        self.max_queue = self.queued();
        self.served = 0;
        self.total_wait = 0;
        self.total_service = 0;
        self.last_change = now;
        self.stats_origin = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }
    fn at(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn single_server_serves_immediately_when_idle() {
        let mut s: Station<u32> = Station::finite(1);
        let started = s.arrive(at(0), 7, ms(5), JobClass::Low).unwrap();
        assert_eq!(started.job, 7);
        assert_eq!(started.done_at, at(5));
        assert_eq!(s.in_service(), 1);
    }

    #[test]
    fn fcfs_within_class() {
        let mut s: Station<u32> = Station::finite(1);
        s.arrive(at(0), 1, ms(5), JobClass::Low).unwrap();
        assert!(s.arrive(at(1), 2, ms(5), JobClass::Low).is_none());
        assert!(s.arrive(at(2), 3, ms(5), JobClass::Low).is_none());
        let n = s.complete(at(5)).unwrap();
        assert_eq!(n.job, 2);
        assert_eq!(n.done_at, at(10));
        let n = s.complete(at(10)).unwrap();
        assert_eq!(n.job, 3);
    }

    #[test]
    fn high_class_jumps_queue_but_not_service() {
        let mut s: Station<u32> = Station::finite(1);
        s.arrive(at(0), 1, ms(10), JobClass::Low).unwrap();
        assert!(s.arrive(at(1), 2, ms(10), JobClass::Low).is_none());
        assert!(s.arrive(at(2), 3, ms(1), JobClass::High).is_none());
        // job 1 is not preempted; at completion the High job goes first.
        let n = s.complete(at(10)).unwrap();
        assert_eq!(n.job, 3);
        let n = s.complete(at(11)).unwrap();
        assert_eq!(n.job, 2);
    }

    #[test]
    fn multi_server_uses_all_units() {
        let mut s: Station<u32> = Station::finite(2);
        assert!(s.arrive(at(0), 1, ms(5), JobClass::Low).is_some());
        assert!(s.arrive(at(0), 2, ms(5), JobClass::Low).is_some());
        assert!(s.arrive(at(0), 3, ms(5), JobClass::Low).is_none());
        assert_eq!(s.in_service(), 2);
        assert_eq!(s.queued(), 1);
        let n = s.complete(at(5)).unwrap();
        assert_eq!(n.job, 3);
    }

    #[test]
    fn infinite_station_never_queues() {
        let mut s: Station<u32> = Station::infinite();
        for i in 0..100 {
            let started = s.arrive(at(0), i, ms(20), JobClass::Low).unwrap();
            assert_eq!(started.done_at, at(20));
        }
        assert_eq!(s.in_service(), 100);
        assert_eq!(s.queued(), 0);
        for _ in 0..100 {
            assert!(s.complete(at(20)).is_none());
        }
        assert_eq!(s.in_service(), 0);
    }

    #[test]
    fn utilization_integrates_busy_time() {
        let mut s: Station<u32> = Station::finite(1);
        s.arrive(at(0), 1, ms(5), JobClass::Low).unwrap();
        s.complete(at(5));
        // busy 5ms of 10ms elapsed => 0.5
        assert!((s.utilization(at(10)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_with_two_units() {
        let mut s: Station<u32> = Station::finite(2);
        s.arrive(at(0), 1, ms(10), JobClass::Low).unwrap();
        s.arrive(at(0), 2, ms(10), JobClass::Low).unwrap();
        s.complete(at(10));
        s.complete(at(10));
        // 2 units busy for 10ms of 20ms*2 unit-time => 0.5
        assert!((s.utilization(at(20)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mean_wait_counts_only_queueing() {
        let mut s: Station<u32> = Station::finite(1);
        s.arrive(at(0), 1, ms(10), JobClass::Low).unwrap();
        s.arrive(at(0), 2, ms(10), JobClass::Low);
        s.complete(at(10));
        // job 1 waited 0, job 2 waited 10ms => mean 5ms
        assert_eq!(s.mean_wait().as_micros(), 5 * MS);
    }

    #[test]
    fn queue_depth_integrates_waiting_jobs() {
        let mut s: Station<u32> = Station::finite(1);
        s.arrive(at(0), 1, ms(10), JobClass::Low).unwrap();
        s.arrive(at(0), 2, ms(10), JobClass::Low); // queued [0,10)
        s.arrive(at(5), 3, ms(10), JobClass::Low); // queued [5,20)
        s.complete(at(10)); // job 2 starts, job 3 still queued
        s.complete(at(20)); // job 3 starts
        s.complete(at(30));
        // queue length: 1 on [0,5), 2 on [5,10), 1 on [10,20), 0 after.
        // integral = 5 + 10 + 10 = 25 job-ms over 30ms elapsed.
        assert!((s.mean_queue_depth(at(30)) - 25.0 / 30.0).abs() < 1e-9);
        assert_eq!(s.max_queue_depth(), 2);
        s.reset_stats(at(30));
        assert_eq!(s.max_queue_depth(), 0);
        assert_eq!(s.mean_queue_depth(at(40)), 0.0);
    }

    #[test]
    fn occupancy_flushes_final_interval_and_resets() {
        let mut s: Station<u32> = Station::finite(1);
        s.arrive(at(0), 1, ms(10), JobClass::Low).unwrap();
        s.arrive(at(0), 2, ms(10), JobClass::Low); // queued [0,10)
        s.arrive(at(5), 3, ms(10), JobClass::Low); // queued [5,20)
        s.complete(at(10));
        s.complete(at(20));
        s.complete(at(30));
        // Queue depth: 1 on [0,5), 2 on [5,10), 1 on [10,20), 0 on [20,30).
        // Querying at 40 must flush the still-open zero-depth interval.
        let occ = s.occupancy(at(40));
        assert_eq!(occ.total_time(), SimDuration::from_millis(40));
        // Depth 0 holds for 20 of 40 ms, depth <= 1 for 35 of 40 ms.
        assert_eq!(occ.p50(), 0);
        assert_eq!(occ.quantile(0.875), 1);
        assert_eq!(occ.p90(), 2);
        assert_eq!(occ.quantile(1.0), 2);
        assert!((occ.mean() - 25.0 / 40.0).abs() < 1e-9);
        // Mean from the histogram agrees with the queue-length integral.
        assert!((occ.mean() - s.mean_queue_depth(at(40))).abs() < 1e-9);
        s.reset_stats(at(40));
        assert_eq!(s.occupancy(at(40)).total_time(), SimDuration::ZERO);
        // Post-reset the (empty) queue keeps integrating from the origin.
        assert_eq!(
            s.occupancy(at(50)).total_time(),
            SimDuration::from_millis(10)
        );
        assert_eq!(s.occupancy(at(50)).quantile(1.0), 0);
    }

    #[test]
    fn reset_stats_clears_counters_but_not_state() {
        let mut s: Station<u32> = Station::finite(1);
        s.arrive(at(0), 1, ms(10), JobClass::Low).unwrap();
        s.reset_stats(at(5));
        assert_eq!(s.served(), 0);
        assert_eq!(s.in_service(), 1); // job still running
        s.complete(at(10));
        // busy throughout the post-reset window [5,10] => utilization 1
        assert!((s.utilization(at(10)) - 1.0).abs() < 1e-9);
        // ...and half-busy by t=15
        assert!((s.utilization(at(15)) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "complete() with no job in service")]
    fn complete_on_idle_panics() {
        let mut s: Station<u32> = Station::finite(1);
        s.complete(at(0));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_unit_station_rejected() {
        let _: Station<u32> = Station::finite(0);
    }
}

// Seeded-loop generative test (former proptest suite, rewritten as a
// deterministic randomized loop over the same input space).
#[cfg(test)]
mod generative_tests {
    use super::*;
    use crate::rng::SimRng;

    // Drive a single-server station with an arbitrary arrival pattern and
    // check conservation: every arrival is eventually served exactly once.
    #[test]
    fn conservation_and_order() {
        let mut r = SimRng::new(0x57A7_1051);
        for _ in 0..150 {
            let n = r.uniform_usize(1, 59);
            let jobs: Vec<(u64, u64, bool)> = (0..n)
                .map(|_| (r.uniform_u64(0, 49), r.uniform_u64(1, 19), r.chance(0.5)))
                .collect();
            let mut s: Station<usize> = Station::finite(1);
            let mut t = 0u64;
            let mut in_service: Option<(usize, SimTime)> = None;
            let mut completions: Vec<usize> = Vec::new();

            for (i, &(gap, svc, high)) in jobs.iter().enumerate() {
                t += gap;
                let now = SimTime(t);
                // drain completions due before now
                while let Some((job, done)) = in_service {
                    if done <= now {
                        completions.push(job);
                        in_service = s.complete(done).map(|st| (st.job, st.done_at));
                    } else {
                        break;
                    }
                }
                let class = if high { JobClass::High } else { JobClass::Low };
                if let Some(st) = s.arrive(now, i, SimDuration(svc), class) {
                    assert!(in_service.is_none());
                    in_service = Some((st.job, st.done_at));
                }
            }
            // drain everything
            while let Some((job, done)) = in_service {
                completions.push(job);
                in_service = s.complete(done).map(|st| (st.job, st.done_at));
            }
            assert_eq!(completions.len(), jobs.len());
            assert_eq!(s.served(), jobs.len() as u64);
            // every job appears exactly once
            let mut seen = completions.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..jobs.len()).collect::<Vec<_>>());
        }
    }
}
